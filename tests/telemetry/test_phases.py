"""Tests for wall-time attribution across the pipeline phases."""

import pytest

from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, SimulationRunner
from repro.telemetry import PIPELINE_PHASES, PhaseTimingObserver
from repro.workloads import KeyValueWorkload, WorkloadVariant


def config(duration_s=1.0):
    return RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=constant_profile(0.3, duration_s=duration_s),
    )


class FakeClock:
    """Monotonic counter: every read advances one 'second'."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestFakeClockAttribution:
    def test_each_phase_gets_one_unit_per_tick(self):
        timer = PhaseTimingObserver(clock=FakeClock())
        timer.on_run_start(None, None)
        for _ in range(3):
            timer.before_arrivals(0.0, 0.002)
            timer.after_arrivals(0.0, 0.002)
            timer.after_control(0.0, 0.002)
            timer.after_step(0.0, None)
            timer.after_completions(0.0)
            timer.end_tick(0.0, None)
        timer.on_run_end(None)

        timings = timer.timings
        assert timings.ticks == 3
        for phase in PIPELINE_PHASES:
            assert timings.seconds[phase] == pytest.approx(3.0)
        assert timings.measured_s == pytest.approx(15.0)
        # run_start read t=1, run_end read t=20: 19 s wall, 4 untimed.
        assert timings.wall_s == pytest.approx(19.0)
        assert timings.untimed_s == pytest.approx(4.0)
        assert timings.per_tick_us("engine") == pytest.approx(1e6)

    def test_table_renders_every_phase(self):
        timer = PhaseTimingObserver(clock=FakeClock())
        timer.on_run_start(None, None)
        timer.before_arrivals(0.0, 0.002)
        timer.after_arrivals(0.0, 0.002)
        timer.after_control(0.0, 0.002)
        timer.after_step(0.0, None)
        timer.after_completions(0.0)
        timer.end_tick(0.0, None)
        timer.on_run_end(None)
        table = timer.timings.table()
        for phase in PIPELINE_PHASES:
            assert phase in table
        assert "untimed" in table
        assert "1 ticks" in table

    def test_zero_tick_timings_are_safe(self):
        timings = PhaseTimingObserver().timings
        assert timings.ticks == 0
        assert timings.per_tick_us("engine") == 0.0
        assert "0 ticks" in timings.table()


class TestRealRun:
    def test_attributes_the_whole_run(self):
        timer = PhaseTimingObserver()
        result = SimulationRunner(config(), observers=[timer]).run()
        timings = timer.timings
        assert timings.ticks == 500  # 1.0 s at 2 ms
        assert result.queries_completed > 0
        assert all(timings.seconds[p] >= 0.0 for p in PIPELINE_PHASES)
        assert timings.measured_s > 0.0
        assert timings.measured_s <= timings.wall_s + 1e-6
        # The engine step dominates a simulation run.
        assert timings.seconds["engine"] == max(timings.seconds.values())

    def test_timing_does_not_change_the_run(self):
        plain = SimulationRunner(config()).run()
        timed = SimulationRunner(
            config(), observers=[PhaseTimingObserver()]
        ).run()
        assert timed.total_energy_j == plain.total_energy_j
        assert timed.latencies_s == plain.latencies_s
