"""Tests for the FIRESTARTER full-load analog."""

import pytest

from repro.hardware.firestarter import (
    FIRESTARTER_CHARACTERISTICS,
    apply_full_load,
    apply_idle,
)
from repro.hardware.frequency import EnergyPerformanceBias
from repro.hardware.machine import Machine


class TestFullLoad:
    def test_activates_everything(self, machine: Machine):
        apply_idle(machine)
        apply_full_load(machine)
        assert (
            len(machine.cstates.active_threads) == machine.params.total_threads
        )
        for sock in machine.topology.sockets:
            freq, halted = machine.resolve_uncore(sock.socket_id)
            assert freq == machine.params.uncore_max_ghz
            assert not halted

    def test_performance_epb(self, machine: Machine):
        apply_full_load(machine, turbo=True)
        assert machine.frequency.epb(0) is EnergyPerformanceBias.PERFORMANCE
        # Performance EPB: turbo is effective immediately.
        assert machine.frequency.effective_core_frequency(
            0, 0, machine.time_s
        ) == pytest.approx(machine.params.core_turbo_ghz)

    def test_balanced_mix_not_bandwidth_limited(self, machine: Machine):
        """FIRESTARTER balances compute and memory: neither starves."""
        apply_full_load(machine)
        result = machine.step(0.5)
        perf = result.sockets[0].performance
        assert perf.traffic_gbs > 20.0  # memory controllers genuinely busy
        assert perf.executed_ips > 0.8 * perf.capacity_ips

    def test_characteristics_shape(self):
        assert FIRESTARTER_CHARACTERISTICS.bytes_per_instr > 0
        assert FIRESTARTER_CHARACTERISTICS.atomic_ops_per_instr == 0


class TestIdle:
    def test_parks_everything(self, machine: Machine):
        apply_full_load(machine)
        apply_idle(machine)
        assert not machine.cstates.active_threads
        result = machine.step(0.5)
        for socket in result.sockets.values():
            assert socket.uncore_halted
            assert socket.executed_instructions == 0.0
