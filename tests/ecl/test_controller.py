"""Tests for the full hierarchical ECL facade."""

import pytest

from repro.dbms.engine import DatabaseEngine
from repro.ecl.controller import EnergyControlLoop
from repro.errors import ControlError
from repro.hardware.machine import Machine
from repro.workloads.micro import COMPUTE_BOUND, MEMORY_BOUND


@pytest.fixture
def system():
    machine = Machine(seed=9)
    engine = DatabaseEngine(machine)
    engine.set_workload_characteristics(COMPUTE_BOUND)
    return machine, engine, EnergyControlLoop(engine)


class TestConstruction:
    def test_one_socket_ecl_per_socket(self, system):
        _, _, ecl = system
        assert set(ecl.sockets) == {0, 1}
        assert set(ecl.profiles) == {0, 1}

    def test_profiles_unevaluated_initially(self, system):
        _, _, ecl = system
        assert ecl.profiles[0].coverage() == 0.0


class TestWarmStart:
    def test_fills_every_entry(self, system):
        _, _, ecl = system
        ecl.warm_start_from_model(chars=COMPUTE_BOUND)
        for profile in ecl.profiles.values():
            assert profile.coverage() == 1.0
            assert profile.os_idle_power_w is not None

    def test_per_socket_characteristics(self, system):
        _, _, ecl = system
        ecl.warm_start_from_model(
            chars_by_socket={0: COMPUTE_BOUND, 1: MEMORY_BOUND}
        )
        opt0 = ecl.profiles[0].most_efficient().configuration
        opt1 = ecl.profiles[1].most_efficient().configuration
        # Compute-bound prefers the lowest uncore; bandwidth-bound the max.
        assert opt0.uncore_ghz < opt1.uncore_ghz

    def test_requires_characteristics(self, system):
        _, _, ecl = system
        with pytest.raises(ControlError):
            ecl.warm_start_from_model()

    def test_applies_baseline(self, system):
        machine, _, ecl = system
        machine.cstates.set_active_threads(set())
        ecl.warm_start_from_model(chars=COMPUTE_BOUND)
        assert len(machine.cstates.active_threads) == machine.params.total_threads


class TestBootstrapMultiplexed:
    def test_everything_stale(self, system):
        _, _, ecl = system
        ecl.bootstrap_multiplexed()
        for profile in ecl.profiles.values():
            assert len(profile.stale_entries()) == len(profile)


class TestCalibrationIntegration:
    def test_calibrate_adopts_times(self):
        machine = Machine(seed=31)
        engine = DatabaseEngine(machine)
        ecl = EnergyControlLoop(engine)
        result = ecl.calibrate(0)
        assert ecl.params.apply_time_s == result.apply_time_s
        assert ecl.params.measure_time_s == result.measure_time_s
        assert ecl.calibration is result


class TestTickDispatch:
    def test_on_tick_drives_all_loops(self, system):
        machine, engine, ecl = system
        ecl.warm_start_from_model(chars=COMPUTE_BOUND)
        for _ in range(600):
            ecl.on_tick(machine.time_s, 0.002)
            engine.tick(0.002)
        assert all(s.decisions >= 1 for s in ecl.sockets.values())
