"""Analytical socket power model calibrated to the paper's measurements.

The model decomposes socket power the way the paper's Fig. 3–5 do:

``package = base + Σ core(f, V(f), activity, siblings) + uncore(f_u, traffic)``

with a separate DRAM domain (``static + traffic``) and a PSU view that adds
the ~15 % conversion/fan/board overhead RAPL cannot observe.

Key calibration targets (DESIGN.md §5):

* a full-load non-turbo socket draws ≈ 125–130 W package (135 W TDP part);
* the uncore spans ≈ 19 W (1.2 GHz) to 31 W (3.0 GHz) — the +12 W delta of
  Fig. 8 — and drops to ≈ 3 W when halted, the ≤ 30 W LLC-gating saving of
  Fig. 4/5;
* an extra physical core costs a few watts (frequency dependent), an HT
  sibling ≈ 8 % of the core's dynamic power (Fig. 4);
* socket 1 statically draws slightly less than socket 0 — an asymmetry the
  paper measured but could not explain (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.hardware.presets import HaswellEPParameters
from repro.hardware.topology import Topology
from repro.units import require_fraction, require_non_negative


@dataclass(frozen=True)
class CorePowerState:
    """Power-relevant state of one physical core for a model evaluation.

    Attributes:
        frequency_ghz: effective core clock.
        active_sibling_count: hardware threads of the core in C0 (0 = the
            core itself sleeps; the model then uses ``shallow`` to pick
            C1 residual versus C6 zero draw).
        activity: fraction of cycles spent switching (1.0 = saturated
            pipeline, lower when stalled on memory or out of work).
        shallow: when no sibling is active, True leaves the core in C1.
    """

    frequency_ghz: float
    active_sibling_count: int
    activity: float = 1.0
    shallow: bool = False


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-socket power split mirroring the RAPL domains."""

    cores_w: float
    uncore_w: float
    package_w: float  #: cores + uncore + base — the RAPL *package* domain
    dram_w: float  #: the RAPL *DRAM* domain

    @property
    def socket_total_w(self) -> float:
        """Package plus DRAM power of the socket."""
        return self.package_w + self.dram_w


class PowerModel:
    """Evaluates socket and system power for a given hardware state."""

    def __init__(
        self,
        topology: Topology,
        params: HaswellEPParameters,
        socket_params: "tuple[HaswellEPParameters, ...] | None" = None,
        socket_node: "tuple[int, ...] | None" = None,
    ):
        self._topology = topology
        self._params = params
        #: Per-socket parameter sets (the owning node's, on clusters).
        #: Single-node machines repeat the one ``params`` object.
        if socket_params is None:
            socket_params = tuple(params for _ in topology.sockets)
        self._socket_params = socket_params
        #: Node-local socket index per global socket id: the measured
        #: static asymmetry is a within-server effect (socket 1 of each
        #: box draws slightly less than its socket 0), so it scales with
        #: the socket's position inside its node, not its global id.
        if socket_node is None:
            socket_node = (0,) * len(topology.sockets)
        local: list[int] = []
        counts: dict[int, int] = {}
        for node in socket_node:
            local.append(counts.get(node, 0))
            counts[node] = counts.get(node, 0) + 1
        self._local_socket_index = tuple(local)

    def params_for(self, socket_id: int) -> HaswellEPParameters:
        """The parameter set governing one socket."""
        return self._socket_params[socket_id]

    # -- voltage/frequency curve ----------------------------------------------

    def core_voltage(
        self,
        frequency_ghz: float,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Supply voltage for a core frequency (piecewise-linear V/f curve)."""
        p = params if params is not None else self._params
        lo, nom, turbo = p.core_min_ghz, p.core_nominal_ghz, p.core_max_ghz
        if frequency_ghz <= lo:
            return p.core_volt_min
        if frequency_ghz <= nom:
            t = (frequency_ghz - lo) / (nom - lo)
            return p.core_volt_min + t * (p.core_volt_nominal - p.core_volt_min)
        if frequency_ghz >= turbo:
            return p.core_volt_turbo
        t = (frequency_ghz - nom) / (turbo - nom)
        return p.core_volt_nominal + t * (p.core_volt_turbo - p.core_volt_nominal)

    # -- per-component power ----------------------------------------------------

    def core_power(
        self,
        state: CorePowerState,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Power of one physical core in watts.

        A sleeping core draws nothing in C6 and a clock-gated residual in
        C1.  Polling worker threads keep the pipeline busy, so even
        "waiting" active cores draw a large share of their dynamic power:
        the activity floor below reflects the always-on polling behaviour
        the paper attributes to the data-oriented architecture.
        """
        p = params if params is not None else self._params
        freq = state.frequency_ghz
        if freq <= 0:
            raise ConfigurationError(f"core frequency must be > 0, got {freq}")
        volt = self.core_voltage(freq, p)
        dynamic_full = p.core_cdyn_w_per_ghz_v2 * freq * volt * volt
        leak = p.core_leak_w_per_v * volt

        if state.active_sibling_count <= 0:
            if state.shallow:
                return p.c1_residual_factor * dynamic_full + leak
            return 0.0

        activity = require_fraction(state.activity, "core activity")
        # Polling floor: an active-but-stalled core still clocks its
        # pipeline; the paper's workers never sleep unless parked.
        effective_activity = 0.45 + 0.55 * activity
        dynamic = dynamic_full * effective_activity
        if state.active_sibling_count > 1:
            dynamic *= 1.0 + p.ht_sibling_power_factor * (
                state.active_sibling_count - 1
            )
        return dynamic + leak

    def uncore_power(
        self,
        uncore_ghz: float,
        halted: bool,
        traffic_gbs: float = 0.0,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Power of the uncore (LLC + memory controllers + ring)."""
        p = params if params is not None else self._params
        require_non_negative(traffic_gbs, "traffic_gbs")
        if halted:
            return p.uncore_halted_w
        span = p.uncore_max_ghz - p.uncore_min_ghz
        t = 0.0 if span <= 0 else (uncore_ghz - p.uncore_min_ghz) / span
        if not 0.0 <= t <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"uncore frequency {uncore_ghz} outside "
                f"[{p.uncore_min_ghz}, {p.uncore_max_ghz}] GHz"
            )
        base = p.uncore_active_min_w + t * (
            p.uncore_active_max_w - p.uncore_active_min_w
        )
        return base + p.uncore_w_per_gbs * traffic_gbs

    def dram_power(
        self,
        traffic_gbs: float,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Power of one socket's DRAM domain."""
        require_non_negative(traffic_gbs, "traffic_gbs")
        p = params if params is not None else self._params
        return p.dram_static_w + p.dram_w_per_gbs * traffic_gbs

    # -- aggregation ------------------------------------------------------------

    def socket_power(
        self,
        socket_id: int,
        core_states: Sequence[CorePowerState],
        uncore_ghz: float,
        uncore_halted: bool,
        traffic_gbs: float,
    ) -> PowerBreakdown:
        """Full power breakdown of one socket."""
        p = self._socket_params[socket_id]
        cores_w = sum(self.core_power(state, p) for state in core_states)
        uncore_w = self.uncore_power(uncore_ghz, uncore_halted, traffic_gbs, p)
        asymmetry = (
            p.socket_static_asymmetry_w * self._local_socket_index[socket_id]
        )
        package_w = max(1.0, p.package_base_w + cores_w + uncore_w - asymmetry)
        return PowerBreakdown(
            cores_w=cores_w,
            uncore_w=uncore_w,
            package_w=package_w,
            dram_w=self.dram_power(traffic_gbs, p),
        )

    def psu_power(self, breakdowns: Mapping[int, PowerBreakdown]) -> float:
        """System power at the power supply unit.

        Adds the conversion-loss / fan / motherboard overhead that RAPL
        counters cannot capture (≈ 15 % under load plus a fixed draw,
        Fig. 3).
        """
        rapl_total = sum(b.socket_total_w for b in breakdowns.values())
        p = self._params
        return rapl_total * (1.0 + p.psu_overhead_factor) + p.psu_static_w
