"""The :class:`Environment` a run is embedded in, plus its registry.

An environment bundles the exogenous conditions the datacenter cannot
control: the grid's carbon intensity (gCO₂ per kWh), the electricity
price ($ per kWh), and the facility's PUE — the multiplicative
cooling/distribution overhead applied at the wall-power boundary (IT
wall watts × PUE = facility watts).  Runs without an environment behave
exactly as before: no accounting, no extra span caps, bit-identical
results.

The registry mirrors :mod:`repro.sim.policy` /
:mod:`repro.placement`: presets register by name, out-of-tree scenarios
hook in via :func:`register_environment`, and the CLI
(``--environment`` / ``--list-environments``) just renders the table.
Factories take the run duration because preset curves describe a 24-hour
day mapped onto whatever duration the experiment compresses it to —
the same convention as ``twitter_day_profile``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.environment.signal import ConstantSignal, Signal, StepSignal
from repro.errors import SimulationError


@dataclass(frozen=True)
class Environment:
    """Exogenous run conditions: carbon, price, and cooling overhead.

    Attributes:
        name: report/registry identity.
        carbon: grid carbon intensity in gCO₂ per kWh.
        price: electricity price in $ per kWh.
        pue: facility power usage effectiveness (≥ 1.0); wall power is
            multiplied by this before carbon/cost conversion.
        description: one-liner for ``--list-environments``.
    """

    name: str
    carbon: Signal
    price: Signal
    pue: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.pue >= 1.0:
            raise SimulationError(f"PUE must be >= 1.0, got {self.pue}")

    def next_change_s(self, t_s: float) -> float:
        """Earliest upcoming change across both signals (macro cap)."""
        return min(
            self.carbon.next_change_s(t_s), self.price.next_change_s(t_s)
        )


#: Signature of a registry factory: duration_s -> ready Environment.
EnvironmentFactory = Callable[[float], Environment]


@dataclass(frozen=True)
class EnvironmentInfo:
    """One registry entry (name, factory, description)."""

    name: str
    factory: EnvironmentFactory
    description: str = ""


_REGISTRY: dict[str, EnvironmentInfo] = {}


def register_environment(
    name: str, factory: EnvironmentFactory, description: str = ""
) -> EnvironmentInfo:
    """Register an environment preset under a unique name.

    Raises:
        SimulationError: on empty or duplicate names.
    """
    if not name or not isinstance(name, str):
        raise SimulationError(
            f"environment name must be a non-empty string, got {name!r}"
        )
    if name in _REGISTRY:
        raise SimulationError(f"environment {name!r} is already registered")
    info = EnvironmentInfo(name=name, factory=factory, description=description)
    _REGISTRY[name] = info
    return info


def unregister_environment(name: str) -> None:
    """Remove a registration (out-of-tree development, tests)."""
    if name not in _REGISTRY:
        raise SimulationError(_unknown_message(name))
    del _REGISTRY[name]


def registered_environments() -> tuple[str, ...]:
    """All registered environment names, in registration order."""
    return tuple(_REGISTRY)


def get_environment(name: str) -> EnvironmentInfo:
    """Look up a registration by name.

    Raises:
        SimulationError: for unknown names; the message lists every
            registered environment.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(_unknown_message(name)) from None


def make_environment(name: str, duration_s: float) -> Environment:
    """Resolve a name and build the environment for a run duration."""
    if duration_s <= 0:
        raise SimulationError(f"duration must be > 0, got {duration_s}")
    return get_environment(name).factory(duration_s)


def _unknown_message(name: str) -> str:
    known = ", ".join(_REGISTRY) or "<none>"
    return f"unknown environment {name!r}; registered environments: {known}"


# --------------------------------------------------------------------------
# Built-in presets.  These lines are the single source of truth for
# environment names: nothing else under src/ spells them out.
# --------------------------------------------------------------------------

#: Default facility overhead for the presets — a decent (not hyperscale)
#: datacenter; shared by all presets so ablations vary one axis at a time.
PRESET_PUE = 1.12

#: The constant preset's levels, chosen to match the diurnal curves'
#: daily means so "flat vs diurnal" ablations compare equal totals under
#: constant power.
FLAT_CARBON_G_PER_KWH = 450.0
FLAT_PRICE_USD_PER_KWH = 0.12

#: Hourly grid carbon intensity (gCO₂/kWh) of the diurnal preset — a
#: mixed-grid day: fossil-heavy night baseload, a morning ramp as demand
#: outpaces renewables, a deep midday solar trough, and the evening peak
#: when solar is gone but demand is not (daily mean exactly 450, so the
#: flat control compares equal totals under constant power).
DIURNAL_CARBON_HOURLY = (
    425, 415, 405, 400, 405, 425, 465, 520, 560, 540, 480, 385,
    305, 285, 295, 345, 425, 520, 590, 610, 580, 520, 470, 430,
)

#: Hourly time-of-use electricity price ($/kWh) of the price-peak
#: preset: cheap night valley, daytime shoulder, expensive 17–21 h peak.
PRICE_PEAK_HOURLY = (
    0.06, 0.06, 0.06, 0.06, 0.06, 0.06, 0.06, 0.12, 0.12, 0.12, 0.12, 0.12,
    0.12, 0.12, 0.12, 0.12, 0.12, 0.30, 0.30, 0.30, 0.30, 0.12, 0.12, 0.06,
)


def hourly_day_signal(
    hourly: tuple[float, ...], duration_s: float, name: str
) -> StepSignal:
    """A 24-entry hourly curve mapped onto ``duration_s`` as step levels.

    Hour ``h`` of the modeled day covers
    ``[h/24 * duration_s, (h+1)/24 * duration_s)`` — the same
    compression convention as ``twitter_day_profile``.
    """
    if len(hourly) != 24:
        raise SimulationError(f"need 24 hourly values, got {len(hourly)}")
    points = [
        (hour * duration_s / 24.0, float(level))
        for hour, level in enumerate(hourly)
    ]
    return StepSignal(points, name=name)


def _flat(duration_s: float) -> Environment:
    return Environment(
        name="flat",
        carbon=ConstantSignal(FLAT_CARBON_G_PER_KWH, name="carbon-flat"),
        price=ConstantSignal(FLAT_PRICE_USD_PER_KWH, name="price-flat"),
        pue=PRESET_PUE,
        description="constant grid: the diurnal presets' daily means, "
        "held flat (ablation control)",
    )


def _diurnal_carbon(duration_s: float) -> Environment:
    return Environment(
        name="diurnal-carbon",
        carbon=hourly_day_signal(
            DIURNAL_CARBON_HOURLY, duration_s, "carbon-diurnal"
        ),
        price=ConstantSignal(FLAT_PRICE_USD_PER_KWH, name="price-flat"),
        pue=PRESET_PUE,
        description="mixed-grid day mapped onto the run: dirty morning "
        "ramp and evening peak, deep midday solar trough; flat price",
    )


def _price_peak(duration_s: float) -> Environment:
    return Environment(
        name="price-peak",
        carbon=ConstantSignal(FLAT_CARBON_G_PER_KWH, name="carbon-flat"),
        price=hourly_day_signal(PRICE_PEAK_HOURLY, duration_s, "price-tou"),
        pue=PRESET_PUE,
        description="time-of-use tariff mapped onto the run: cheap "
        "night valley, 17-21h surge pricing; flat carbon",
    )


register_environment(
    "flat",
    _flat,
    description="constant carbon and price at the diurnal daily means",
)
register_environment(
    "diurnal-carbon",
    _diurnal_carbon,
    description="24h mixed-grid carbon curve (solar trough, evening "
    "peak) compressed onto the run duration",
)
register_environment(
    "price-peak",
    _price_peak,
    description="24h time-of-use tariff (night valley, evening surge) "
    "compressed onto the run duration",
)
