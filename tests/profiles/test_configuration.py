"""Tests for configurations and measurements."""

import pytest

from repro.errors import ConfigurationError
from repro.profiles.configuration import Configuration, ConfigurationMeasurement


class TestConfiguration:
    def test_build_normalizes(self):
        c = Configuration.build(0, {0, 24}, {0: 2.6}, 3.0)
        assert c.active_threads == frozenset({0, 24})
        assert c.core_frequencies == ((0, 2.6),)
        assert c.thread_count == 2
        assert c.core_count == 1

    def test_idle(self):
        c = Configuration.idle(0, 1.2)
        assert c.is_idle
        assert c.thread_count == 0
        assert c.average_core_ghz == 0.0
        assert c.describe() == "idle"

    def test_average_core_ghz(self):
        c = Configuration.build(0, {0, 1}, {0: 1.2, 1: 2.6}, 3.0)
        assert c.average_core_ghz == pytest.approx(1.9)

    def test_frequency_of_core(self):
        c = Configuration.build(0, {0}, {0: 1.5}, 3.0)
        assert c.frequency_of_core(0) == pytest.approx(1.5)
        assert c.frequency_of_core(5) is None

    def test_hashable_and_equal(self):
        a = Configuration.build(0, {0, 24}, {0: 2.6}, 3.0)
        b = Configuration.build(0, {24, 0}, {0: 2.6}, 3.0)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_describe(self):
        c = Configuration.build(0, {0, 1}, {0: 1.2, 1: 2.6}, 2.1)
        assert c.describe() == "2t@1.9GHz/u2.1GHz"


class TestApplication:
    def test_apply_sets_machine_state(self, machine):
        c = Configuration.build(0, {0, 24, 1}, {0: 1.5, 1: 2.2}, 2.0)
        c.apply(machine)
        active_on_socket0 = machine.cstates.active_threads_on_socket(0)
        assert set(active_on_socket0) == {0, 1, 24}
        assert machine.frequency.requested_core_frequency(0, 0) == 1.5
        assert machine.frequency.requested_core_frequency(0, 1) == 2.2
        # Inactive cores fall to the minimum P-state.
        assert machine.frequency.requested_core_frequency(0, 5) == 1.2
        assert machine.frequency.effective_uncore_frequency(0, True) == 2.0

    def test_apply_leaves_other_socket(self, machine):
        c = Configuration.build(0, {0}, {0: 1.2}, 1.2)
        c.apply(machine)
        assert machine.cstates.active_threads_on_socket(1)

    def test_foreign_thread_rejected(self, machine):
        c = Configuration.build(0, {13}, {1: 1.2}, 1.2)
        with pytest.raises(ConfigurationError):
            c.apply(machine)

    def test_thread_without_core_frequency_rejected(self, machine):
        c = Configuration.build(0, {0}, {}, 1.2)
        with pytest.raises(ConfigurationError):
            c.validate_against(machine)

    def test_invalid_pstate_rejected(self, machine):
        c = Configuration.build(0, {0}, {0: 2.65}, 1.2)
        with pytest.raises(ConfigurationError):
            c.validate_against(machine)

    def test_unknown_core_rejected(self, machine):
        c = Configuration.build(0, {0}, {0: 1.2, 99: 1.2}, 1.2)
        with pytest.raises(ConfigurationError):
            c.validate_against(machine)


class TestMeasurement:
    def test_efficiency(self):
        m = ConfigurationMeasurement(
            power_w=50.0, performance_score=1e9, measured_at_s=0.0
        )
        assert m.energy_efficiency == pytest.approx(2e7)

    def test_invalid_power_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfigurationMeasurement(0.0, 1e9, 0.0)

    def test_negative_perf_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfigurationMeasurement(10.0, -1.0, 0.0)

    def test_blend(self):
        a = ConfigurationMeasurement(100.0, 1e9, 1.0)
        b = ConfigurationMeasurement(50.0, 2e9, 2.0)
        mixed = a.blended_with(b, 0.5)
        assert mixed.power_w == pytest.approx(75.0)
        assert mixed.performance_score == pytest.approx(1.5e9)
        assert mixed.measured_at_s == 2.0

    def test_blend_weight_validated(self):
        a = ConfigurationMeasurement(100.0, 1e9, 1.0)
        with pytest.raises(ConfigurationError):
            a.blended_with(a, 1.5)
