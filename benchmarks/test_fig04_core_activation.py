"""Fig. 4 — power cost of activating cores and HyperThreads.

Paper: activating the *first* core of a socket is expensive (it wakes the
uncore/LLC — up to ~30 W), additional physical cores cost a few, almost
constant, watts each (frequency dependent), and HyperThread siblings are
nearly free.
"""

from repro.hardware.machine import Machine
from repro.hardware.perfmodel import SocketLoad
from repro.workloads.micro import COMPUTE_BOUND

from _shared import heading


def activation_series(core_ghz: float, uncore_ghz: float):
    """Socket-0 power as threads activate: cores first, then HT siblings."""
    machine = Machine(seed=2)
    machine.apply_socket_threads(1, set())  # keep the peer socket idle
    machine.set_idle(1)
    machine.frequency.set_uncore_frequency(0, uncore_ghz)
    machine.frequency.set_all_core_frequencies(core_ghz, 0.0)
    machine.set_socket_load(
        0, SocketLoad(characteristics=COMPUTE_BOUND, demand_instructions_per_s=None)
    )
    series = []
    machine.apply_socket_threads(0, set())
    series.append(machine.step(0.2).sockets[0].power.socket_total_w)
    active: set[int] = set()
    order = list(range(12)) + list(range(24, 36))  # cores, then HT siblings
    for tid in order:
        active.add(tid)
        machine.apply_socket_threads(0, active)
        series.append(machine.step(0.2).sockets[0].power.socket_total_w)
    return series


def test_fig04_core_activation(run_once):
    combos = [(1.2, 1.2), (1.2, 3.0), (2.6, 1.2), (2.6, 3.0)]
    results = run_once(
        lambda: {combo: activation_series(*combo) for combo in combos}
    )

    heading("Fig. 4 — socket power (W) vs activated threads")
    print(f"{'threads':>8}", "  ".join(f"c{c}/u{u}" for c, u in combos))
    for i in range(0, 25, 2):
        print(
            f"{i:>8}",
            "  ".join(f"{results[c][i]:7.1f}" for c in combos),
        )

    for combo in combos:
        series = results[combo]
        first_core = series[1] - series[0]
        extra_cores = [series[i + 1] - series[i] for i in range(1, 12)]
        ht_siblings = [series[i + 1] - series[i] for i in range(12, 24)]
        print(
            f"core {combo[0]} GHz / uncore {combo[1]} GHz: "
            f"first core +{first_core:.1f} W, "
            f"extra core ~{sum(extra_cores)/len(extra_cores):+.1f} W, "
            f"HT sibling ~{sum(ht_siblings)/len(ht_siblings):+.2f} W"
        )
        # First core costs several times an additional core.
        mean_extra = sum(extra_cores) / len(extra_cores)
        mean_ht = sum(ht_siblings) / len(ht_siblings)
        assert first_core > 2.5 * mean_extra
        assert mean_ht < 0.25 * mean_extra
        # Extra-core cost is almost constant (small spread).
        assert max(extra_cores) - min(extra_cores) < 0.5 * mean_extra + 0.5

    # The first-core cost adheres to the uncore clock (paper's key point).
    first_low_uncore = results[(1.2, 1.2)][1] - results[(1.2, 1.2)][0]
    first_high_uncore = results[(1.2, 3.0)][1] - results[(1.2, 3.0)][0]
    assert first_high_uncore > first_low_uncore + 8.0
    assert first_high_uncore < 40.0  # "saves up to 30 W" scale
