"""Energy profiles — the knowledge base of the Energy-Control Loop.

A *configuration* (paper §4.1) is one hardware state of a single socket:
the set of active hardware threads, the core frequencies of the active
physical cores (inactive cores sit at their minimum), and the uncore
frequency.  The *configuration generator* (§4.2) enumerates a bounded,
homogeneity-deduplicated set of configurations; evaluating each under the
live workload (power via RAPL, performance via instructions retired)
yields the *energy profile*, whose skyline tells the socket-level ECL the
most energy-efficient configuration for any demanded performance level.
Ruling zones (§4.3) split the profile into under-utilization / optimal /
over-utilization regions that select the control strategy.
"""

from repro.profiles.configuration import Configuration, ConfigurationMeasurement
from repro.profiles.generator import ConfigurationGenerator, GeneratorParameters
from repro.profiles.profile import EnergyProfile, ProfileEntry
from repro.profiles.zones import RulingZone, classify_zones

__all__ = [
    "Configuration",
    "ConfigurationMeasurement",
    "ConfigurationGenerator",
    "GeneratorParameters",
    "EnergyProfile",
    "ProfileEntry",
    "RulingZone",
    "classify_zones",
]
