"""The end-to-end simulation runner (paper §6 experiment harness).

One :class:`SimulationRunner` executes a (workload, load profile, policy)
triple on a fresh machine + engine and returns a
:class:`~repro.sim.metrics.RunResult`.  The per-tick order mirrors the
real system: arrivals are enqueued, the control policy reconfigures the
hardware, then the engine advances runtime and hardware together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.dbms.engine import DatabaseEngine
from repro.ecl.controller import EnergyControlLoop
from repro.ecl.socket_ecl import EclParameters
from repro.hardware.machine import Machine
from repro.hardware.presets import HaswellEPParameters
from repro.loadprofiles.base import LoadProfile
from repro.profiles.generator import GeneratorParameters
from repro.sim.baseline import BaselinePolicy
from repro.sim.governor import OndemandGovernorPolicy
from repro.sim.loadgen import LoadGenerator
from repro.sim.metrics import RunResult, SamplePoint
from repro.workloads.base import Workload


@dataclass
class RunConfiguration:
    """Everything needed to run one experiment."""

    workload: Workload
    profile: LoadProfile
    policy: str = "ecl"  #: "ecl", "baseline", or "ondemand"
    tick_s: float = 0.002
    sample_every_s: float = 0.25
    seed: int = 0
    ecl_params: EclParameters = field(default_factory=EclParameters)
    generator_params: GeneratorParameters = field(
        default_factory=GeneratorParameters
    )
    machine_params: HaswellEPParameters | None = None
    #: Fill the ECL's profiles from the analytical model at t=0 instead of
    #: simulating the initial multiplexed sweep.
    warm_start: bool = True
    poisson_arrivals: bool = False
    #: Optional workload switch: at ``switch_at_s`` the load generator and
    #: the engine's declared characteristics flip to ``switch_workload``
    #: (the section 6.3 profile-adaptation experiment).
    switch_at_s: float | None = None
    switch_workload: Workload | None = None
    #: LRU size of the machine's step-resolution cache; ``0`` disables
    #: memoization (the exact uncached path, for A/B validation).
    step_cache_size: int = 1024

    def __post_init__(self) -> None:
        if self.policy not in ("ecl", "baseline", "ondemand"):
            raise SimulationError(f"unknown policy {self.policy!r}")
        if self.tick_s <= 0 or self.sample_every_s <= 0:
            raise SimulationError("tick and sample periods must be > 0")
        if (self.switch_at_s is None) != (self.switch_workload is None):
            raise SimulationError(
                "switch_at_s and switch_workload must be given together"
            )


class SimulationRunner:
    """Runs one experiment configuration."""

    def __init__(self, config: RunConfiguration):
        self.config = config
        self.machine = Machine(
            params=config.machine_params,
            seed=config.seed,
            step_cache_size=config.step_cache_size,
        )
        self.engine = DatabaseEngine(
            self.machine,
            utilization_window_s=config.ecl_params.interval_s,
        )
        self.engine.set_workload_characteristics(
            config.workload.characteristics
        )
        self.loadgen = LoadGenerator(
            config.workload,
            config.profile,
            self.engine.partitions,
            seed=config.seed + 1,
            poisson=config.poisson_arrivals,
        )
        self.ecl: EnergyControlLoop | None = None
        self.baseline: BaselinePolicy | None = None
        self.governor: OndemandGovernorPolicy | None = None
        if config.policy == "ecl":
            self.ecl = EnergyControlLoop(
                self.engine,
                params=config.ecl_params,
                generator_params=config.generator_params,
            )
            if config.warm_start:
                self.ecl.warm_start_from_model(
                    chars=config.workload.characteristics
                )
            else:
                self.ecl.bootstrap_multiplexed()
        elif config.policy == "ondemand":
            self.governor = OndemandGovernorPolicy(self.engine)
        else:
            self.baseline = BaselinePolicy(self.engine)

    def run(self, duration_s: float | None = None) -> RunResult:
        """Execute the experiment and collect metrics."""
        config = self.config
        if duration_s is None:
            duration_s = config.profile.duration_s
        result = RunResult(
            policy=config.policy,
            workload_name=config.workload.full_name,
            profile_name=config.profile.name,
            duration_s=duration_s,
            latency_limit_s=config.ecl_params.latency_limit_s,
        )

        tick = config.tick_s
        steps = int(round(duration_s / tick))
        next_sample_s = 0.0
        energy_before = self.machine.true_total_energy_j()
        switched = config.switch_at_s is None

        for _ in range(steps):
            now = self.machine.time_s
            if not switched and now + 1e-12 >= config.switch_at_s:
                switched = True
                assert config.switch_workload is not None
                self.loadgen.workload = config.switch_workload
                self.engine.set_workload_characteristics(
                    config.switch_workload.characteristics
                )
            for query in self.loadgen.arrivals(now, tick):
                self.engine.submit(query)
                result.queries_submitted += 1

            if self.ecl is not None:
                self.ecl.on_tick(now, tick)
            elif self.governor is not None:
                self.governor.on_tick(now, tick)
            elif self.baseline is not None:
                self.baseline.on_tick(now, tick)

            tick_result = self.engine.tick(tick)
            for completion in tick_result.completions:
                result.queries_completed += 1
                result.latencies_s.append(completion.latency_s)

            if now + 1e-12 >= next_sample_s:
                next_sample_s += config.sample_every_s
                result.samples.append(self._sample(tick_result, now))

        result.total_energy_j = (
            self.machine.true_total_energy_j() - energy_before
        )
        return result

    def _sample(self, tick_result, now_s: float) -> SamplePoint:
        step = tick_result.step
        levels: tuple[float, ...] = ()
        applied: tuple[str, ...] = ()
        if self.ecl is not None:
            levels = tuple(
                self.ecl.sockets[sid].performance_level
                for sid in sorted(self.ecl.sockets)
            )
            applied = tuple(
                (
                    cfg.describe()
                    if (cfg := self.ecl.sockets[sid].applied_configuration)
                    else "none"
                )
                for sid in sorted(self.ecl.sockets)
            )
        avg_latency = self.engine.latency.average_latency_s(now_s)
        return SamplePoint(
            time_s=now_s,
            load_qps=self.loadgen.rate_qps(now_s),
            rapl_power_w=step.rapl_power_w,
            psu_power_w=step.psu_power_w,
            avg_latency_s=avg_latency,
            pending_messages=self.engine.pending_messages(),
            in_flight_queries=self.engine.tracker.in_flight,
            performance_levels=levels,
            applied=applied,
        )


def run_experiment(config: RunConfiguration, duration_s: float | None = None) -> RunResult:
    """Convenience wrapper: build a runner and run it."""
    return SimulationRunner(config).run(duration_s)
