"""Model-based configuration evaluation (the measurement "oracle").

Two ways exist to fill an energy profile with measurements:

* the **runtime path** — what the ECL itself does: apply the
  configuration to the machine, wait the calibrated apply/measure
  intervals, and read RAPL + instruction counters (noisy, costs real
  time); implemented in :mod:`repro.ecl.adaptation`;
* the **model path** (this module) — query the power and performance
  models directly for a hypothetical configuration without perturbing the
  machine.  It is exact and fast, which is what the profile *figures*
  (Fig. 9/10/17–20) need, and serves as ground truth for testing that the
  runtime path converges to the right numbers.
"""

from __future__ import annotations

from repro.errors import ProfileError
from repro.hardware.machine import Machine
from repro.hardware.perfmodel import ActiveCore, SocketLoad, WorkloadCharacteristics
from repro.hardware.power import CorePowerState
from repro.profiles.configuration import Configuration, ConfigurationMeasurement
from repro.profiles.generator import ConfigurationGenerator, GeneratorParameters
from repro.profiles.profile import EnergyProfile


def measure_configuration(
    machine: Machine,
    configuration: Configuration,
    chars: WorkloadCharacteristics,
    assume_machine_idle_for_idle: bool = True,
    at_time_s: float | None = None,
) -> ConfigurationMeasurement:
    """Evaluate one configuration under saturating demand via the models.

    ``assume_machine_idle_for_idle`` controls whether the idle
    configuration is charged the halted-uncore power (legal only when
    every socket idles simultaneously — which the RTI controllers
    synchronize for) or the active-uncore-at-minimum power.

    Raises:
        ProfileError: if the configuration is invalid for the machine.
    """
    try:
        configuration.validate_against(machine)
    except Exception as exc:  # noqa: BLE001 - rewrap with profile context
        raise ProfileError(
            f"cannot evaluate {configuration.describe()}: {exc}"
        ) from exc

    topology = machine.topology
    perf_model = machine.perf_model
    power_model = machine.power_model
    sid = configuration.socket_id

    # Resolve the active cores implied by the configuration.
    freq_map = dict(configuration.core_frequencies)
    siblings: dict[int, int] = {}
    for tid in configuration.active_threads:
        core = topology.core_of(tid)
        siblings[core.core_id] = siblings.get(core.core_id, 0) + 1
    active_cores = [
        ActiveCore(
            socket_id=sid,
            core_id=core_id,
            frequency_ghz=freq_map[core_id],
            sibling_count=count,
        )
        for core_id, count in sorted(siblings.items())
    ]

    perf = perf_model.resolve(
        active_cores,
        configuration.uncore_ghz,
        SocketLoad(characteristics=chars, demand_instructions_per_s=None),
    )
    parallel = perf_model.parallel_throughput_ips(
        active_cores, configuration.uncore_ghz, chars
    )
    scale = 0.0 if parallel <= 0 else perf.executed_ips / parallel

    core_states = [
        CorePowerState(
            frequency_ghz=core.frequency_ghz,
            active_sibling_count=core.sibling_count,
            activity=perf_model.core_activity(
                core, configuration.uncore_ghz, chars, scale
            ),
        )
        for core in active_cores
    ]
    halted = configuration.is_idle and assume_machine_idle_for_idle
    power = power_model.socket_power(
        socket_id=sid,
        core_states=core_states,
        uncore_ghz=configuration.uncore_ghz,
        uncore_halted=halted,
        traffic_gbs=perf.traffic_gbs,
    )
    return ConfigurationMeasurement(
        power_w=power.socket_total_w,
        performance_score=perf.capacity_ips,
        measured_at_s=machine.time_s if at_time_s is None else at_time_s,
    )


def build_profile(
    machine: Machine,
    socket_id: int,
    chars: WorkloadCharacteristics,
    generator_params: GeneratorParameters | None = None,
) -> EnergyProfile:
    """Generate and fully evaluate an energy profile via the model path."""
    generator = ConfigurationGenerator(
        machine.topology, machine.params_for(socket_id), socket_id, generator_params
    )
    configurations = generator.generate()
    profile = EnergyProfile(configurations)
    for configuration in configurations:
        measurement = measure_configuration(machine, configuration, chars)
        profile.record(configuration, measurement)
    # The uncontrolled baseline cannot reach the synchronized deep sleep:
    # its out-of-work power keeps the uncore awake at its minimum clock.
    os_idle = measure_configuration(
        machine,
        profile.idle_configuration,
        chars,
        assume_machine_idle_for_idle=False,
    )
    profile.os_idle_power_w = os_idle.power_w
    return profile
