"""Tests for the parallel experiment suite and its on-disk result cache."""

import pickle

import pytest

from repro.errors import SimulationError
from repro.loadprofiles import constant_profile
from repro.sim import (
    ExperimentSuite,
    RunConfiguration,
    config_signature,
    default_cache_dir,
    derive_seed,
    run_experiment,
    suite_worker_count,
)
from repro.workloads import KeyValueWorkload, WorkloadVariant


def kv():
    return KeyValueWorkload(WorkloadVariant.NON_INDEXED)


def short_config(policy="ecl", seed=0, duration_s=2.0):
    return RunConfiguration(
        workload=kv(),
        profile=constant_profile(0.3, duration_s=duration_s),
        policy=policy,
        seed=seed,
    )


class TestSignature:
    def test_stable_across_rebuilds(self):
        assert config_signature(short_config()) == config_signature(short_config())

    def test_changes_with_seed(self):
        assert config_signature(short_config(seed=1)) != config_signature(
            short_config(seed=2)
        )

    def test_changes_with_policy(self):
        assert config_signature(short_config("ecl")) != config_signature(
            short_config("baseline")
        )

    def test_changes_with_duration_override(self):
        config = short_config()
        assert config_signature(config, 1.0) != config_signature(config, None)

    def test_changes_with_profile(self):
        a = RunConfiguration(workload=kv(), profile=constant_profile(0.3))
        b = RunConfiguration(workload=kv(), profile=constant_profile(0.4))
        assert config_signature(a) != config_signature(b)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, 3) == derive_seed(0, 3)

    def test_distinct_across_indices(self):
        seeds = {derive_seed(42, i) for i in range(32)}
        assert len(seeds) == 32

    def test_distinct_across_base_seeds(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)


class TestWorkerCount:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITE_WORKERS", raising=False)
        assert suite_worker_count() == 1
        assert suite_worker_count(default=4) == 4

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "3")
        assert suite_worker_count() == 3

    def test_env_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "0")
        assert suite_worker_count() == 1

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "many")
        with pytest.raises(SimulationError):
            suite_worker_count()

    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"


class TestCaching:
    def test_cached_rerun_equals_uncached(self, tmp_path):
        """A second suite run must replay byte-for-byte identical results."""
        configs = [short_config("ecl"), short_config("ondemand")]
        first = ExperimentSuite(workers=1, cache_dir=tmp_path)
        uncached = first.run(configs)
        assert first.cache_hits == 0
        assert first.cache_misses == 2

        second = ExperimentSuite(workers=1, cache_dir=tmp_path)
        cached = second.run([short_config("ecl"), short_config("ondemand")])
        assert second.cache_hits == 2
        assert second.cache_misses == 0
        for fresh, replayed in zip(uncached, cached):
            assert replayed.total_energy_j == fresh.total_energy_j
            assert replayed.latencies_s == fresh.latencies_s
            assert replayed.samples == fresh.samples
            assert replayed.queries_completed == fresh.queries_completed

    def test_cache_matches_direct_run(self, tmp_path):
        config = short_config("baseline")
        direct = run_experiment(short_config("baseline"))
        suite = ExperimentSuite(workers=1, cache_dir=tmp_path)
        (result,) = suite.run([config])
        assert result.total_energy_j == direct.total_energy_j
        assert result.latencies_s == direct.latencies_s

    def test_use_cache_false_writes_nothing(self, tmp_path):
        suite = ExperimentSuite(workers=1, cache_dir=tmp_path, use_cache=False)
        suite.run([short_config(duration_s=1.0)])
        assert not any(tmp_path.iterdir()) or not list(tmp_path.glob("*.pkl"))
        assert suite.cache_hits == 0
        assert suite.cache_misses == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        config = short_config(duration_s=1.0)
        suite = ExperimentSuite(workers=1, cache_dir=tmp_path)
        suite.run([config])
        (entry,) = tmp_path.glob("*.pkl")
        entry.write_bytes(b"not a pickle")
        again = ExperimentSuite(workers=1, cache_dir=tmp_path)
        (result,) = again.run([short_config(duration_s=1.0)])
        assert again.cache_misses == 1
        assert result.queries_completed >= 0

    def test_wrong_type_entry_is_a_miss(self, tmp_path):
        config = short_config(duration_s=1.0)
        signature = config_signature(config, None)
        tmp_path.mkdir(exist_ok=True)
        with open(tmp_path / f"{signature}.pkl", "wb") as fh:
            pickle.dump({"not": "a RunResult"}, fh)
        suite = ExperimentSuite(workers=1, cache_dir=tmp_path)
        suite.run([config])
        assert suite.cache_misses == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        suite = ExperimentSuite(workers=1, cache_dir=tmp_path)
        suite.run([short_config(duration_s=1.0)])
        assert not list(tmp_path.glob("*.tmp"))


class ExplodingWorkload(KeyValueWorkload):
    """Raises when the runner asks for its execution characteristics.

    Module-level so it pickles into pool workers by reference.
    """

    @property
    def characteristics(self):
        raise RuntimeError("boom: injected workload failure")


def failing_config(duration_s=1.0):
    return RunConfiguration(
        workload=ExplodingWorkload(WorkloadVariant.NON_INDEXED),
        profile=constant_profile(0.3, duration_s=duration_s),
        policy="baseline",
    )


class TestFaultPaths:
    def test_inline_failure_carries_run_identity(self, tmp_path):
        suite = ExperimentSuite(workers=1, cache_dir=tmp_path)
        with pytest.raises(SimulationError) as err:
            suite.run([failing_config()])
        message = str(err.value)
        assert "baseline" in message
        assert "kv" in message
        assert "RuntimeError" in message
        assert "boom" in message
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_pool_failure_still_publishes_completed_results(self, tmp_path):
        """A worker crash must not drop the siblings that finished."""
        configs = [short_config("baseline", duration_s=1.0), failing_config()]
        suite = ExperimentSuite(workers=2, cache_dir=tmp_path)
        with pytest.raises(SimulationError) as err:
            suite.run(configs)
        assert "RuntimeError" in str(err.value)
        # The healthy run's result reached the cache before the raise.
        replay = ExperimentSuite(workers=1, cache_dir=tmp_path)
        (result,) = replay.run([short_config("baseline", duration_s=1.0)])
        assert replay.cache_hits == 1
        assert result.queries_completed > 0

    def test_pool_failure_alone_in_batch(self, tmp_path):
        suite = ExperimentSuite(workers=2, cache_dir=tmp_path)
        with pytest.raises(SimulationError):
            suite.run([failing_config(), failing_config(duration_s=1.5)])

    def test_failure_without_cache_is_still_wrapped(self, tmp_path):
        suite = ExperimentSuite(workers=1, cache_dir=tmp_path, use_cache=False)
        with pytest.raises(SimulationError) as err:
            suite.run([failing_config()])
        # Identity is derivable even though no signature was cached.
        assert "signature=" in str(err.value)
        assert not list(tmp_path.glob("*.pkl"))


class TestProgress:
    def test_callback_sees_every_run_in_completion_order(self, tmp_path):
        seen = []
        configs = [
            short_config("baseline", duration_s=1.0),
            short_config("ondemand", duration_s=1.0),
        ]
        suite = ExperimentSuite(
            workers=1, cache_dir=tmp_path, progress=seen.append
        )
        suite.run(configs)
        assert [p.source for p in seen] == ["inline", "inline"]
        assert [p.completed for p in seen] == [1, 2]
        assert all(p.total == 2 for p in seen)
        assert [p.policy for p in seen] == ["baseline", "ondemand"]
        assert all(p.wall_s > 0 for p in seen)
        assert suite.run_stats == seen

    def test_cache_replays_report_as_hits(self, tmp_path):
        configs = [short_config("baseline", duration_s=1.0)]
        ExperimentSuite(workers=1, cache_dir=tmp_path).run(configs)
        seen = []
        again = ExperimentSuite(
            workers=1, cache_dir=tmp_path, progress=seen.append
        )
        again.run([short_config("baseline", duration_s=1.0)])
        assert [p.source for p in seen] == ["cache"]
        assert seen[0].wall_s >= 0

    def test_pool_utilization_recorded(self, tmp_path):
        configs = [
            short_config("baseline", seed=derive_seed(0, i), duration_s=1.0)
            for i in range(2)
        ]
        suite = ExperimentSuite(workers=2, cache_dir=tmp_path)
        suite.run(configs)
        assert suite.pool_utilization is not None
        assert 0.0 < suite.pool_utilization <= 1.5
        assert [p.source for p in suite.run_stats] == ["pool", "pool"]

    def test_inline_runs_leave_no_pool_utilization(self, tmp_path):
        suite = ExperimentSuite(workers=1, cache_dir=tmp_path)
        suite.run([short_config("baseline", duration_s=1.0)])
        assert suite.pool_utilization is None


class TestParallel:
    def test_pool_results_match_inline(self, tmp_path):
        """Fanning out across processes must not change any result."""
        configs = [
            short_config("baseline", seed=derive_seed(0, i), duration_s=1.5)
            for i in range(3)
        ]
        inline = ExperimentSuite(workers=1, cache_dir=tmp_path / "a").run(configs)
        pooled = ExperimentSuite(workers=2, cache_dir=tmp_path / "b").run(configs)
        for one, two in zip(inline, pooled):
            assert two.total_energy_j == one.total_energy_j
            assert two.latencies_s == one.latencies_s
            assert two.samples == one.samples

    def test_results_keep_input_order(self, tmp_path):
        configs = [
            short_config(policy, duration_s=1.5)
            for policy in ("baseline", "ondemand", "ecl")
        ]
        results = ExperimentSuite(workers=2, cache_dir=tmp_path).run(configs)
        assert [r.policy for r in results] == ["baseline", "ondemand", "ecl"]

    def test_duration_override(self, tmp_path):
        config = short_config(duration_s=6.0)
        (result,) = ExperimentSuite(workers=1, cache_dir=tmp_path).run(
            [config], durations=[1.0]
        )
        assert result.duration_s == pytest.approx(1.0)

    def test_duration_length_mismatch(self, tmp_path):
        suite = ExperimentSuite(workers=1, cache_dir=tmp_path)
        with pytest.raises(SimulationError):
            suite.run([short_config()], durations=[1.0, 2.0])
