"""Placement policies: where partitions live, and when they move.

Partition-to-socket placement used to be a hard-coded round-robin inside
:class:`~repro.storage.partition.PartitionMap`.  This module makes it a
first-class, open-ended decision, mirroring the control-policy registry
of :mod:`repro.sim.policy`:

* :class:`PlacementPolicy` — the structural interface: an *initial
  assignment* at engine construction, plus a runtime :meth:`plan` hook
  that proposes partition migrations from a load snapshot;
* :func:`register_placement` / :func:`get_placement` — the name registry
  the engine, runner, CLI, and suite resolve placements through;
* the built-in registrations at the bottom — the **only** place in
  ``src/`` where placement names appear as string literals: ``static``
  (the historical round-robin, never migrates), ``consolidate`` (pack
  partitions onto the fewest sockets under a load threshold, so drained
  sockets can enter package sleep), and ``balance`` (keep the partition
  count even across active sockets).

Policies only *propose* moves; executing them — quiescing the hub queue,
charging the transfer, re-routing in-flight messages — is the migration
protocol in :mod:`repro.placement.migration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import PlacementError


# --------------------------------------------------------------------------
# Load snapshot handed to plan().
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SocketView:
    """One socket's load as seen by a placement policy.

    Attributes:
        socket_id: the socket.
        partition_ids: partitions currently resident, ascending.
        utilization: windowed demand / capacity, clamped to [0, 1]
            (see :meth:`repro.dbms.stats.UtilizationTracker.utilization`).
        pending_instructions: modeled instructions queued in the hub.
        active: False when the socket is drained/parked by the controller.
    """

    socket_id: int
    partition_ids: tuple[int, ...]
    utilization: float
    pending_instructions: float
    active: bool = True


@dataclass(frozen=True)
class PlacementView:
    """Machine-wide load snapshot a policy plans against."""

    time_s: float
    sockets: tuple[SocketView, ...]

    def socket(self, socket_id: int) -> SocketView:
        for view in self.sockets:
            if view.socket_id == socket_id:
                return view
        raise PlacementError(f"unknown socket id {socket_id}")


@dataclass(frozen=True)
class MigrationRequest:
    """One proposed partition move (policy output; not yet executed)."""

    partition_id: int
    target_socket: int
    reason: str = ""


# --------------------------------------------------------------------------
# The protocol.
# --------------------------------------------------------------------------


@runtime_checkable
class PlacementPolicy(Protocol):
    """What the engine requires of a placement policy.

    Structural (duck-typed): policies implement these members, they do
    not inherit from anything.
    """

    #: Registry name; also how the controller distinguishes ``static``.
    name: str

    def initial_assignment(
        self, partition_count: int, socket_ids: Sequence[int]
    ) -> list[int]:
        """Socket id for each partition id at engine construction."""
        ...

    def plan(self, view: PlacementView) -> list[MigrationRequest]:
        """Propose migrations for the current load; may return []."""
        ...


def round_robin_assignment(
    partition_count: int, socket_ids: Sequence[int]
) -> list[int]:
    """The historical default: partition ``p`` lives on socket ``p % n``."""
    ids = list(socket_ids)
    if not ids:
        raise PlacementError("need at least one socket")
    return [ids[pid % len(ids)] for pid in range(partition_count)]


# --------------------------------------------------------------------------
# Built-in policies.
# --------------------------------------------------------------------------


class StaticPlacement:
    """Today's behaviour: round-robin at construction, no migration."""

    name = "static"

    def initial_assignment(
        self, partition_count: int, socket_ids: Sequence[int]
    ) -> list[int]:
        return round_robin_assignment(partition_count, socket_ids)

    def plan(self, view: PlacementView) -> list[MigrationRequest]:
        return []


class ConsolidatePlacement:
    """Pack partitions onto the fewest sockets under a load threshold.

    When the mean utilization of the populated sockets sits below
    ``pack_below`` *and* absorbing the donor's load keeps every receiver
    below ``spread_above``, the policy proposes draining the highest-id
    populated socket onto the remaining ones (its entire partition set in
    one plan — the migration layer charges and paces the transfers).  The
    reverse direction re-spreads: when any populated socket exceeds
    ``spread_above`` and an empty socket exists, half of the most-loaded
    socket's partitions move there.  Sockets are homogeneous, so the
    post-drain projection is simply the summed utilization shared by one
    fewer socket.
    """

    name = "consolidate"

    def __init__(self, pack_below: float = 0.35, spread_above: float = 0.85):
        if not 0.0 < pack_below < spread_above <= 1.0:
            raise PlacementError(
                f"need 0 < pack_below < spread_above <= 1, got "
                f"{pack_below}, {spread_above}"
            )
        self.pack_below = pack_below
        self.spread_above = spread_above

    def initial_assignment(
        self, partition_count: int, socket_ids: Sequence[int]
    ) -> list[int]:
        # Consolidation is a *runtime* reaction to measured load; data
        # loads spread out like the default so every socket contributes.
        return round_robin_assignment(partition_count, socket_ids)

    def plan(self, view: PlacementView) -> list[MigrationRequest]:
        populated = [s for s in view.sockets if s.partition_ids]
        spread = self._spread_plan(view, populated)
        if spread:
            return spread
        return self._pack_plan(populated)

    def _spread_plan(
        self, view: PlacementView, populated: list[SocketView]
    ) -> list[MigrationRequest]:
        empty = [s for s in view.sockets if not s.partition_ids]
        if not empty:
            return []
        hottest = max(populated, key=lambda s: (s.utilization, s.socket_id))
        if hottest.utilization <= self.spread_above:
            return []
        target = empty[0].socket_id
        give = list(hottest.partition_ids)[: len(hottest.partition_ids) // 2]
        return [
            MigrationRequest(pid, target, reason="spread: overload")
            for pid in give
        ]

    def _pack_plan(self, populated: list[SocketView]) -> list[MigrationRequest]:
        active = [s for s in populated if s.active]
        if len(active) < 2:
            return []
        total = sum(s.utilization for s in active)
        if total / len(active) >= self.pack_below:
            return []
        if total / (len(active) - 1) >= self.spread_above:
            return []
        donor = max(active, key=lambda s: s.socket_id)
        receivers = sorted(
            (s for s in active if s.socket_id != donor.socket_id),
            key=lambda s: (s.utilization, s.socket_id),
        )
        return [
            MigrationRequest(
                pid,
                receivers[index % len(receivers)].socket_id,
                reason="pack: low load",
            )
            for index, pid in enumerate(donor.partition_ids)
        ]


class BalancePlacement:
    """Keep the partition count even across the active sockets.

    Proposes moves from the most- to the least-populated active socket
    until counts differ by at most ``tolerance``.  Count-based (rather
    than load-based) balancing is deterministic and load-agnostic — the
    complement of ``consolidate`` for ablations.
    """

    name = "balance"

    def __init__(self, tolerance: int = 1):
        if tolerance < 0:
            raise PlacementError(f"tolerance must be >= 0, got {tolerance}")
        self.tolerance = tolerance

    def initial_assignment(
        self, partition_count: int, socket_ids: Sequence[int]
    ) -> list[int]:
        return round_robin_assignment(partition_count, socket_ids)

    def plan(self, view: PlacementView) -> list[MigrationRequest]:
        active = [s for s in view.sockets if s.active]
        if len(active) < 2:
            return []
        counts = {s.socket_id: len(s.partition_ids) for s in active}
        movable = {s.socket_id: list(s.partition_ids) for s in active}
        requests: list[MigrationRequest] = []
        while True:
            heavy = max(counts, key=lambda sid: (counts[sid], sid))
            light = min(counts, key=lambda sid: (counts[sid], -sid))
            if counts[heavy] - counts[light] <= self.tolerance:
                return requests
            pid = movable[heavy].pop()
            counts[heavy] -= 1
            counts[light] += 1
            movable[light].append(pid)
            requests.append(
                MigrationRequest(pid, light, reason="balance: count skew")
            )


# --------------------------------------------------------------------------
# The registry.
# --------------------------------------------------------------------------


#: Signature of a registry factory: builds a ready-to-use policy.
PlacementFactory = Callable[[], PlacementPolicy]


@dataclass(frozen=True)
class PlacementInfo:
    """One registry entry.

    Attributes:
        name: the public lookup name (CLI ``--placement``, configs).
        factory: builds the policy (no arguments; policies are
            engine-independent until handed a :class:`PlacementView`).
        description: one-liner for ``repro run --list-placements``.
    """

    name: str
    factory: PlacementFactory
    description: str = ""


_REGISTRY: dict[str, PlacementInfo] = {}


def register_placement(
    name: str, factory: PlacementFactory, description: str = ""
) -> PlacementInfo:
    """Register a placement policy under a unique name.

    Raises:
        PlacementError: on duplicate or empty names.
    """
    if not name or not isinstance(name, str):
        raise PlacementError(
            f"placement name must be a non-empty string, got {name!r}"
        )
    if name in _REGISTRY:
        raise PlacementError(f"placement {name!r} is already registered")
    info = PlacementInfo(name=name, factory=factory, description=description)
    _REGISTRY[name] = info
    return info


def unregister_placement(name: str) -> None:
    """Remove a registration (out-of-tree placement development, tests)."""
    if name not in _REGISTRY:
        raise PlacementError(_unknown_message(name))
    del _REGISTRY[name]


def registered_placements() -> tuple[str, ...]:
    """All registered placement names, in registration order."""
    return tuple(_REGISTRY)


def get_placement(name: str) -> PlacementInfo:
    """Look up a registration by name.

    Raises:
        PlacementError: for unknown names; the message lists every
            registered placement.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PlacementError(_unknown_message(name)) from None


def validate_placement_name(name: str) -> str:
    """Check that a name is registered and return it unchanged."""
    get_placement(name)
    return name


def build_placement(name: str) -> PlacementPolicy:
    """Resolve a name and build the ready-to-use policy."""
    return get_placement(name).factory()


def _unknown_message(name: str) -> str:
    known = ", ".join(_REGISTRY) or "<none>"
    return f"unknown placement {name!r}; registered placements: {known}"


# --------------------------------------------------------------------------
# Built-in registrations — the single source of truth for placement names.
# --------------------------------------------------------------------------

register_placement(
    "static",
    StaticPlacement,
    description="round-robin at construction, partitions never move "
    "(the historical behaviour; bit-identical to pre-placement runs)",
)
register_placement(
    "consolidate",
    ConsolidatePlacement,
    description="pack partitions onto the fewest sockets under a load "
    "threshold so drained sockets can enter package sleep",
)
register_placement(
    "balance",
    BalancePlacement,
    description="keep the partition count even across active sockets",
)

#: The placement a :class:`RunConfiguration` uses when none is given.
DEFAULT_PLACEMENT = registered_placements()[0]
