"""RAPL-style energy counters with realistic measurement artifacts.

The paper reads socket power through the Running Average Power Limit
(RAPL) counters, which on Haswell-EP are accurate *in the aggregate* but
awkward at fine time scales:

* the registers publish new values only periodically (the Fig. 7 time
  series show ~1 s effective lag in the tooling);
* short measurement windows are noisy — the paper's meta-calibration
  (Fig. 12) lands on ~100 ms as the shortest trustworthy window;
* readings taken immediately after a configuration switch carry extra
  error ("the source of most of the deviation ... was the RAPL
  measurement, when switching to the lowest configuration").

This module reproduces those artifacts so that the ECL's calibration step
has something real to calibrate against: a per-read absolute error makes
*relative* window error shrink as the window grows, quantization adds a
floor, and a decaying post-switch disturbance penalizes measuring right
after reconfiguration.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareError
from repro.hardware.presets import HaswellEPParameters


class RaplDomain(enum.Enum):
    """RAPL measurement domains available per socket on Haswell-EP."""

    PACKAGE = "package"  #: cores, caches, uncore
    DRAM = "dram"  #: memory controller / DIMM domain


@dataclass(frozen=True)
class RaplReading:
    """One counter read: published energy and the read timestamp."""

    energy_j: float
    timestamp_s: float


class RaplCounterBank:
    """Struct-of-arrays store for the RAPL counters of a whole fleet.

    One slot per (socket, domain) pair; the owning machine accumulates
    every counter of a tick — or a whole steady-state span — with a
    single vectorized pass over the counter axis.  Each element performs
    exactly the IEEE float64 operations of the scalar
    :class:`RaplCounter` path, so banked and per-counter accumulation
    are bit-identical.
    """

    def __init__(self, periods_s: np.ndarray) -> None:
        count = len(periods_s)
        if count < 1:
            raise HardwareError(f"bank needs >= 1 counter, got {count}")
        #: Publish period per counter (socket-parameter dependent).
        self.periods_s = np.asarray(periods_s, dtype=np.float64).copy()
        self.true_energy_j = np.zeros(count, dtype=np.float64)
        self.published_energy_j = np.zeros(count, dtype=np.float64)
        self.published_at_s = np.zeros(count, dtype=np.float64)
        self.now_s = np.zeros(count, dtype=np.float64)
        self.last_switch_s = np.full(count, -math.inf, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.true_energy_j)

    def view(
        self,
        index: int,
        params: HaswellEPParameters,
        domain: RaplDomain,
        rng: np.random.Generator,
    ) -> "RaplCounter":
        """A scalar counter bound to one slot of this bank."""
        return RaplCounter(params, domain, rng, _bank=self, _index=index)

    def accumulate_all(
        self, powers_w: np.ndarray, dt_s: float, now_s: float
    ) -> None:
        """Burn ``powers_w[i] × dt_s`` joules into every counter ``i``.

        Elementwise ``true += power * dt`` plus a vectorized publish
        mask — the same multiply/add/compare the scalar path performs
        per counter.  The caller (the machine's step loop) guarantees
        ``dt_s >= 0`` and non-negative powers — they come straight from
        resolved power breakdowns — so unlike the scalar path no
        validation reduce runs here.
        """
        self.true_energy_j += powers_w * dt_s
        self.now_s[:] = now_s
        due = now_s - self.published_at_s >= self.periods_s
        if due.any():
            self.published_energy_j[due] = self.true_energy_j[due]
            self.published_at_s[due] = now_s

    def accumulate_span_all(
        self, powers_w: np.ndarray, dt_s: float, times: np.ndarray
    ) -> None:
        """Replay ``accumulate_all(powers_w, dt_s, t)`` for each ``t``.

        The energy fold is one ``np.add.accumulate`` along the tick axis
        of an ``(n+1, counters)`` matrix — a strict top-to-bottom fold
        per column, bit-identical to per-tick scalar ``+=``.  Counters
        whose publish period is no longer than every tick gap take the
        publishes-every-tick fast path (only the last publish survives);
        the rest replay their publish points with the scalar loop.
        Caller guarantees non-negative powers (see :meth:`accumulate_all`).
        """
        n = len(times)
        if n == 0:
            return
        count = len(self.true_energy_j)
        grid = np.empty((n + 1, count), dtype=np.float64)
        grid[0] = self.true_energy_j
        grid[1:] = powers_w * dt_s
        fold = np.add.accumulate(grid, axis=0)
        fast = times[0] - self.published_at_s >= self.periods_s
        if n > 1:
            gap_min = float((times[1:] - times[:-1]).min())
            fast &= gap_min >= self.periods_s
        if fast.all():
            self.published_energy_j = fold[-1].copy()
            self.published_at_s[:] = times[-1]
        else:
            for c in np.nonzero(~fast)[0]:
                published_at = self.published_at_s[c]
                published = self.published_energy_j[c]
                period = self.periods_s[c]
                column = fold[:, c]
                for k in range(n):
                    t_k = times[k]
                    if t_k - published_at >= period:
                        published = column[k + 1]
                        published_at = t_k
                self.published_energy_j[c] = published
                self.published_at_s[c] = published_at
            if fast.any():
                self.published_energy_j[fast] = fold[-1][fast]
                self.published_at_s[fast] = times[-1]
        self.true_energy_j = fold[-1].copy()
        self.now_s[:] = times[-1]


class RaplCounter:
    """Energy counter of one (socket, domain) pair.

    The owning :class:`~repro.hardware.machine.Machine` feeds true energy
    via :meth:`accumulate`; consumers read via :meth:`read`, which returns
    the *published* (lagged, quantized, noisy) value.  State lives in a
    :class:`RaplCounterBank` slot (a private single-slot bank for
    standalone counters) so fleet machines can accumulate every counter
    in one vectorized pass.
    """

    def __init__(
        self,
        params: HaswellEPParameters,
        domain: RaplDomain,
        rng: np.random.Generator,
        _bank: RaplCounterBank | None = None,
        _index: int = 0,
    ):
        self._params = params
        self._domain = domain
        self._rng = rng
        if _bank is None:
            _bank = RaplCounterBank(
                np.array([params.rapl_update_period_s], dtype=np.float64)
            )
        self._bank = _bank
        self._index = _index

    @property
    def domain(self) -> RaplDomain:
        """The RAPL domain this counter measures."""
        return self._domain

    @property
    def true_energy_j(self) -> float:
        """Ground-truth accumulated energy (not observable by the ECL)."""
        return float(self._bank.true_energy_j[self._index])

    @property
    def _published_energy_j(self) -> float:
        return float(self._bank.published_energy_j[self._index])

    @property
    def _published_at_s(self) -> float:
        return float(self._bank.published_at_s[self._index])

    @property
    def _now_s(self) -> float:
        return float(self._bank.now_s[self._index])

    @property
    def _last_switch_s(self) -> float:
        return float(self._bank.last_switch_s[self._index])

    def accumulate(self, power_w: float, dt_s: float, now_s: float) -> None:
        """Add ``power_w × dt_s`` joules of true energy up to time ``now_s``."""
        if dt_s < 0:
            raise HardwareError(f"negative accumulation interval {dt_s}")
        if power_w < 0:
            raise HardwareError(f"negative power {power_w}")
        bank, i = self._bank, self._index
        bank.true_energy_j[i] += power_w * dt_s
        bank.now_s[i] = now_s
        period = self._params.rapl_update_period_s
        if now_s - bank.published_at_s[i] >= period:
            bank.published_energy_j[i] = bank.true_energy_j[i]
            bank.published_at_s[i] = now_s

    def accumulate_span(
        self, power_w: float, dt_s: float, times: np.ndarray
    ) -> None:
        """Replay ``accumulate(power_w, dt_s, t)`` for every ``t`` in ``times``.

        The energy fold runs through ``np.add.accumulate`` (a strict
        left-to-right fold, bit-identical to the per-call ``+=``), and
        publish points are found with the same ``now - published_at``
        float subtraction the scalar path performs, so the final counter
        state matches ``len(times)`` individual calls exactly.
        """
        if dt_s < 0:
            raise HardwareError(f"negative accumulation interval {dt_s}")
        if power_w < 0:
            raise HardwareError(f"negative power {power_w}")
        n = len(times)
        if n == 0:
            return
        bank, i = self._bank, self._index
        fold = np.add.accumulate(
            np.concatenate(([self.true_energy_j], np.full(n, power_w * dt_s)))
        )
        period = self._params.rapl_update_period_s
        if times[0] - self._published_at_s >= period and (
            n == 1 or float((times[1:] - times[:-1]).min()) >= period
        ):
            # Every tick publishes (the update period is no longer than
            # any tick gap), so only the last tick's publish survives.
            bank.published_energy_j[i] = float(fold[-1])
            bank.published_at_s[i] = float(times[-1])
        else:
            published_at = self._published_at_s
            published = self._published_energy_j
            for k in range(n):
                t_k = times[k]
                if t_k - published_at >= period:
                    published = fold[k + 1]
                    published_at = t_k
            bank.published_energy_j[i] = float(published)
            bank.published_at_s[i] = float(published_at)
        bank.true_energy_j[i] = float(fold[-1])
        bank.now_s[i] = float(times[-1])

    def note_configuration_switch(self, now_s: float) -> None:
        """Record a hardware reconfiguration (adds transient read error)."""
        self._bank.last_switch_s[self._index] = now_s

    def read(self) -> RaplReading:
        """Read the counter as software would via the MSR.

        The returned energy is the last *published* value, quantized to the
        energy-status unit, plus a per-read absolute error and a decaying
        post-switch disturbance.  Because the error is absolute, the
        relative error of a windowed measurement ``read(t2) - read(t1)``
        shrinks as the window grows — exactly the behaviour that drives the
        ECL's 100 ms measure-interval calibration (Fig. 12).
        """
        p = self._params
        value = self._published_energy_j
        noise = self._rng.normal(0.0, 0.1 * p.rapl_noise_std_at_100ms * 100.0)
        # 0.1 * std_at_100ms * 100 keeps the constant interpretable: a 100 ms
        # window at ~100 W (10 J) sees ~rapl_noise_std_at_100ms relative error.
        since_switch = self._now_s - self._last_switch_s
        if since_switch >= 0 and math.isfinite(since_switch):
            settle = 0.0003  # sub-ms exponential settle time
            noise += self._rng.normal(0.0, p.rapl_switch_noise_j) * math.exp(
                -since_switch / settle
            )
        unit = p.rapl_energy_unit_j
        quantized = math.floor(max(0.0, value + noise) / unit) * unit
        return RaplReading(energy_j=quantized, timestamp_s=self._now_s)

    def window_energy_j(self, start: RaplReading, end: RaplReading) -> float:
        """Energy between two readings, clamped to be non-negative."""
        return max(0.0, end.energy_j - start.energy_j)

    def window_power_w(self, start: RaplReading, end: RaplReading) -> float:
        """Average power between two readings.

        Raises:
            HardwareError: if the readings are not strictly ordered in time.
        """
        dt = end.timestamp_s - start.timestamp_s
        if dt <= 0:
            raise HardwareError(
                f"readings not ordered: {start.timestamp_s} -> {end.timestamp_s}"
            )
        return self.window_energy_j(start, end) / dt
