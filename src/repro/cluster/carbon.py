"""The ``ecl-carbon`` policy: carbon/price-aware node consolidation.

:class:`~repro.cluster.controller.ClusterController` consolidates on
utilization alone — the same thresholds at 3 a.m. on a wind-heavy grid
and at 7 p.m. on a gas-peaker evening.  This subclass modulates the
node-granular planner's thresholds by the attached
:class:`~repro.environment.Environment`'s carbon and price signals,
re-read at every planning check:

* **dirty/expensive hours** (signal above its run average) raise both
  thresholds: packing triggers at higher utilization (drain and power
  off nodes sooner) and spreading needs a bigger overload to wake one —
  the fleet rides through the peak on fewer, fuller nodes;
* **clean/cheap hours** lower them symmetrically: nodes wake more
  readily and drain later, shifting the inevitable wake/park cycles of
  a diurnal load into the hours where a node-hour costs the least
  carbon and money.

The modulation is a pure threshold reshape at planning-check times; the
control loop underneath (per-socket ECL, drain/park/wake mechanics,
macro protocol) is inherited unchanged.  With no environment attached
the ratio is exactly 1.0, both thresholds collapse to their
``ecl-cluster`` values, and every run is bit-identical to
``ecl-cluster`` — which also keeps the A/B and throughput matrices
meaningful for this policy without an environment in the loop.

Signal reads happen only on live planning ticks: the planning check
already bounds the macro horizon, and the runner additionally cuts
every span at the next environment-signal change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.controller import ClusterController
from repro.placement import ConsolidatePlacement

if TYPE_CHECKING:
    from repro.dbms.engine import DatabaseEngine
    from repro.ecl.controller import EnergyControlLoop
    from repro.environment import Environment, Signal
    from repro.sim.runner import RunConfiguration

#: Clamp on each signal's now/average ratio: a 10x price surge should
#: firm up consolidation, not drive the thresholds into a regime where
#: the planner thrashes.
RATIO_FLOOR = 0.5
RATIO_CEILING = 2.0

#: How strongly the ratio shifts the spread threshold (additive).  The
#: pack threshold scales multiplicatively — it is the small one, and
#: doubling it (0.35 -> 0.70) is exactly the "park early" peak stance.
SPREAD_GAIN = 0.10

#: Hard bounds keeping the modulated thresholds a valid planner config.
PACK_MIN = 0.05
PACK_MAX = 0.70
SPREAD_MAX = 0.98
#: Minimum gap between the two thresholds (the planner's hysteresis
#: band must never collapse).
THRESHOLD_GAP = 0.05


class CarbonAwareClusterController(ClusterController):
    """``ecl-cluster`` with environment-modulated planner thresholds."""

    def __init__(
        self,
        engine: "DatabaseEngine",
        inner: "EnergyControlLoop",
        environment: "Environment | None" = None,
        duration_s: float | None = None,
        planner: ConsolidatePlacement | None = None,
        check_interval_s: float | None = None,
    ):
        super().__init__(
            engine, inner, planner=planner, check_interval_s=check_interval_s
        )
        self.environment = environment
        self._base_pack = self.planner.pack_below
        self._base_spread = self.planner.spread_above
        #: Run-average signal levels; each ratio normalizes against its
        #: own average, so "dirty" means "dirtier than this run's day",
        #: not an absolute grid constant.
        self._carbon_ref = 0.0
        self._price_ref = 0.0
        if environment is not None and duration_s is not None and duration_s > 0:
            self._carbon_ref = environment.carbon.average(0.0, duration_s)
            self._price_ref = environment.price.average(0.0, duration_s)

    @classmethod
    def build(
        cls, engine: "DatabaseEngine", config: "RunConfiguration"
    ) -> "CarbonAwareClusterController":
        """Control-policy factory (see :mod:`repro.sim.policy`)."""
        # Imported lazily: repro.ecl.controller itself imports sim modules.
        from repro.ecl.controller import EnergyControlLoop

        inner = EnergyControlLoop.build(engine, config)
        return cls(
            engine,
            inner,
            environment=config.environment,
            duration_s=config.profile.duration_s,
        )

    # -- signal modulation --------------------------------------------------

    @staticmethod
    def _ratio_of(signal: "Signal", now_s: float, reference: float) -> float:
        if reference <= 0.0:
            return 1.0
        ratio = signal.value(now_s) / reference
        return min(max(ratio, RATIO_FLOOR), RATIO_CEILING)

    def signal_ratio(self, now_s: float) -> float:
        """Combined carbon/price pressure at ``now_s`` (1.0 = average).

        The mean of the two per-signal now/average ratios, each clamped
        to [:data:`RATIO_FLOOR`, :data:`RATIO_CEILING`]; exactly 1.0
        with no environment attached.
        """
        environment = self.environment
        if environment is None:
            return 1.0
        carbon = self._ratio_of(environment.carbon, now_s, self._carbon_ref)
        price = self._ratio_of(environment.price, now_s, self._price_ref)
        return (carbon + price) / 2.0

    def planner_thresholds(self, now_s: float) -> tuple[float, float]:
        """The (pack_below, spread_above) pair in force at ``now_s``."""
        ratio = self.signal_ratio(now_s)
        pack = min(max(self._base_pack * ratio, PACK_MIN), PACK_MAX)
        spread = min(
            max(
                self._base_spread + SPREAD_GAIN * (ratio - 1.0),
                pack + THRESHOLD_GAP,
            ),
            SPREAD_MAX,
        )
        return pack, spread

    def _replan(self, now_s: float) -> None:
        pack, spread = self.planner_thresholds(now_s)
        self.planner.pack_below = pack
        self.planner.spread_above = spread
        super()._replan(now_s)
