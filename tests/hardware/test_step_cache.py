"""Memoized hardware step resolution must be invisible in results.

The machine caches per-socket (configuration, performance, power)
resolutions keyed on control state and demand.  These tests pin the
contract: with the cache on (default) every simulation output is
bit-identical to the exact, uncached path (``step_cache_size=0``).
"""

import pytest

from repro.hardware.machine import Machine
from repro.hardware.perfmodel import SocketLoad
from repro.loadprofiles import sine_profile
from repro.sim import RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, TatpWorkload, WorkloadVariant


def config(policy, step_cache_size, workload=None, duration_s=3.0, seed=11):
    return RunConfiguration(
        workload=workload or KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=sine_profile(low=0.1, high=0.7, period_s=1.5, duration_s=duration_s),
        policy=policy,
        seed=seed,
        step_cache_size=step_cache_size,
    )


def assert_identical(cached, exact):
    assert cached.total_energy_j == exact.total_energy_j
    assert cached.latencies_s == exact.latencies_s
    assert cached.samples == exact.samples
    assert cached.queries_completed == exact.queries_completed
    assert cached.queries_submitted == exact.queries_submitted


@pytest.mark.parametrize("policy", ["ecl", "ondemand", "baseline"])
def test_run_bit_identical_with_and_without_cache(policy):
    cached = run_experiment(config(policy, step_cache_size=1024))
    exact = run_experiment(config(policy, step_cache_size=0))
    assert_identical(cached, exact)


def test_run_bit_identical_tatp_ecl():
    workload = TatpWorkload(WorkloadVariant.INDEXED)
    cached = run_experiment(config("ecl", 1024, workload=workload))
    exact = run_experiment(config("ecl", 0, workload=workload))
    assert_identical(cached, exact)


def test_tiny_cache_still_exact():
    """Heavy eviction (capacity 1) only costs speed, never correctness."""
    small = run_experiment(config("ecl", step_cache_size=1))
    exact = run_experiment(config("ecl", step_cache_size=0))
    assert_identical(small, exact)


def _set_loads(machine, chars, demand):
    for sock in machine.topology.sockets:
        machine.set_socket_load(
            sock.socket_id,
            SocketLoad(characteristics=chars, demand_instructions_per_s=demand),
        )


def test_machine_step_stats_count_hits():
    """Repeated steps under a stable configuration hit the full cache."""
    machine = Machine(seed=0)
    chars = KeyValueWorkload(WorkloadVariant.NON_INDEXED).characteristics
    _set_loads(machine, chars, 1e9)
    for _ in range(20):
        machine.step(0.001)
    stats = machine.step_cache_stats
    assert stats["misses"] >= 1
    assert stats["full_hits"] > 0


def test_machine_cache_disabled_records_no_hits():
    machine = Machine(seed=0, step_cache_size=0)
    chars = KeyValueWorkload(WorkloadVariant.NON_INDEXED).characteristics
    _set_loads(machine, chars, 1e9)
    for _ in range(5):
        machine.step(0.001)
    assert machine.step_cache_stats["full_hits"] == 0
    assert machine.step_cache_stats["capacity_hits"] == 0


def test_machine_steps_bit_identical():
    """Step-by-step outputs agree exactly between cached and exact paths."""
    cached = Machine(seed=5)
    exact = Machine(seed=5, step_cache_size=0)
    chars = KeyValueWorkload(WorkloadVariant.NON_INDEXED).characteristics
    demands = [None, 1e8, 5e9, 1e8, None, 2e9, 2e9, 2e9, 1e7, 1e12]
    for demand in demands:
        _set_loads(cached, chars, demand)
        _set_loads(exact, chars, demand)
        a = cached.step(0.001)
        b = exact.step(0.001)
        assert a.psu_power_w == b.psu_power_w
        assert a.rapl_power_w == b.rapl_power_w
        for sid in a.sockets:
            assert a.sockets[sid].performance == b.sockets[sid].performance
            assert a.sockets[sid].power == b.sockets[sid].power
            assert (
                a.sockets[sid].executed_instructions
                == b.sockets[sid].executed_instructions
            )
