"""Tests for the socket/core/thread topology."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TopologyError
from repro.hardware.topology import Topology


class TestBuild:
    def test_default_dimensions(self):
        topo = Topology.build(2, 12, 2)
        assert topo.socket_count == 2
        assert topo.cores_per_socket == 12
        assert topo.threads_per_core == 2
        assert topo.total_threads == 48

    def test_thread_ids_are_dense(self):
        topo = Topology.build(2, 12, 2)
        ids = sorted(t.global_id for t in topo.iter_threads())
        assert ids == list(range(48))

    def test_linux_style_numbering(self):
        """First siblings occupy 0..23; HT siblings 24..47."""
        topo = Topology.build(2, 12, 2)
        first = topo.thread(0)
        assert (first.socket_id, first.core_id, first.sibling_index) == (0, 0, 0)
        ht = topo.thread(24)
        assert (ht.socket_id, ht.core_id, ht.sibling_index) == (0, 0, 1)
        second_socket = topo.thread(12)
        assert (second_socket.socket_id, second_socket.core_id) == (1, 0)

    def test_single_threaded_cores(self):
        topo = Topology.build(1, 4, 1)
        assert topo.total_threads == 4
        assert topo.sibling_of(0) is None

    @pytest.mark.parametrize("sockets,cores", [(0, 4), (2, 0), (-1, 2)])
    def test_rejects_non_positive_sizes(self, sockets, cores):
        with pytest.raises(TopologyError):
            Topology.build(sockets, cores)

    def test_rejects_wide_smt(self):
        with pytest.raises(TopologyError):
            Topology.build(1, 2, threads_per_core=4)


class TestLookups:
    @pytest.fixture
    def topo(self):
        return Topology.build(2, 12, 2)

    def test_unknown_thread_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.thread(48)

    def test_unknown_socket_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.socket(2)

    def test_sibling_is_symmetric(self, topo):
        for tid in range(topo.total_threads):
            sibling = topo.sibling_of(tid)
            assert sibling is not None
            assert topo.sibling_of(sibling) == tid
            assert sibling != tid

    def test_siblings_share_core(self, topo):
        for tid in range(topo.total_threads):
            sibling = topo.sibling_of(tid)
            assert topo.core_of(tid) is topo.core_of(sibling)

    def test_socket_thread_partition(self, topo):
        """Every thread belongs to exactly one socket."""
        all_ids = set()
        for sock in topo.sockets:
            ids = set(sock.thread_ids())
            assert not ids & all_ids
            all_ids |= ids
        assert all_ids == {t.global_id for t in topo.iter_threads()}

    def test_first_sibling_ids(self, topo):
        firsts = topo.socket(0).first_sibling_ids()
        assert firsts == tuple(range(12))

    def test_group_by_core(self, topo):
        groups = topo.group_by_core([0, 24, 1, 13])
        assert groups[(0, 0)] == [0, 24]
        assert groups[(0, 1)] == [1]
        assert groups[(1, 1)] == [13]

    def test_socket_of(self, topo):
        assert topo.socket_of(0) == 0
        assert topo.socket_of(13) == 1
        assert topo.socket_of(36) == 1


@given(
    sockets=st.integers(min_value=1, max_value=4),
    cores=st.integers(min_value=1, max_value=16),
    smt=st.sampled_from([1, 2]),
)
def test_property_total_threads_and_unique_ids(sockets, cores, smt):
    """Thread ids are always dense 0..N-1 and coordinates round-trip."""
    topo = Topology.build(sockets, cores, smt)
    assert topo.total_threads == sockets * cores * smt
    seen = set()
    for thread in topo.iter_threads():
        assert thread.global_id not in seen
        seen.add(thread.global_id)
        core = topo.core_of(thread.global_id)
        assert core.socket_id == thread.socket_id
        assert core.core_id == thread.core_id
        assert thread.global_id in core.thread_ids()
    assert seen == set(range(topo.total_threads))
