"""repro — Adaptive Energy-Control for In-Memory Database Systems.

A self-contained reproduction of Kissinger, Habich, Lehner (SIGMOD 2018):
the Energy-Control Loop (ECL) for data-oriented in-memory database
systems, together with every substrate the paper relies on — a calibrated
simulator of the 2-socket Haswell-EP testbed, a partitioned columnar
storage engine with an elastic message-passing runtime, the TATP/SSB/
key-value benchmarks, and the end-to-end experiment harness.

Typical entry points:

* :func:`repro.sim.run_experiment` — run one (workload, load profile,
  policy) experiment and collect energy/latency metrics.
* :class:`repro.ecl.EnergyControlLoop` — the hierarchical controller,
  for embedding into custom simulations.
* :func:`repro.profiles.evaluate.build_profile` — evaluate a full energy
  profile for a workload on the simulated machine.
* ``python -m repro`` — the command-line interface.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
