"""Tests for the socket-level ECL control loop."""

import pytest

from repro.dbms.engine import DatabaseEngine
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage
from repro.ecl.controller import EnergyControlLoop
from repro.ecl.socket_ecl import EclParameters
from repro.errors import ControlError
from repro.hardware.machine import Machine
from repro.workloads.micro import COMPUTE_BOUND


def run_loop(ecl, engine, seconds, tick=0.002, demand_fn=None):
    """Drive the ECL + engine for a stretch of simulated time."""
    machine = engine.machine
    steps = int(seconds / tick)
    for step in range(steps):
        now = machine.time_s
        if demand_fn is not None:
            demand_fn(now)
        ecl.on_tick(now, tick)
        engine.tick(tick)


def demand_injector(engine, rate_fraction, partitions=(0, 2, 4, 6)):
    """Return a per-tick function submitting modeled work at a rate.

    Queries are deliberately coarse (20 M instructions) so that overload
    scenarios do not drown the test run in millions of message objects.
    """
    state = {"accumulated": 0.0}
    per_query = 20_000_000.0
    full_rate = 5.0e10  # ≈ machine capacity for COMPUTE_BOUND-ish work

    def inject(now):
        state["accumulated"] += rate_fraction * full_rate * 0.002 / per_query
        while state["accumulated"] >= 1.0:
            state["accumulated"] -= 1.0
            messages = [
                Message(
                    query_id=-1,
                    target_partition=p,
                    cost=WorkCost(per_query / len(partitions)),
                )
                for p in partitions
            ]
            engine.submit(Query(arrival_s=now, stages=[QueryStage(messages)]))

    return inject


@pytest.fixture
def system():
    machine = Machine(seed=5)
    engine = DatabaseEngine(machine)
    engine.set_workload_characteristics(COMPUTE_BOUND)
    ecl = EnergyControlLoop(engine)
    ecl.warm_start_from_model(chars=COMPUTE_BOUND)
    return machine, engine, ecl


class TestParameters:
    def test_validation(self):
        with pytest.raises(ControlError):
            EclParameters(interval_s=0.0)
        with pytest.raises(ControlError):
            EclParameters(mux_fraction=0.95)
        with pytest.raises(ControlError):
            EclParameters(adaptation="bogus")
        with pytest.raises(ControlError):
            EclParameters(measure_time_s=0.0)

    def test_profile_socket_mismatch_rejected(self, system):
        machine, engine, ecl = system
        from repro.ecl.socket_ecl import SocketEcl

        with pytest.raises(ControlError):
            SocketEcl(
                machine=machine,
                socket_id=1,
                profile=ecl.profiles[0],
                params=EclParameters(),
                utilization_fn=lambda now: 0.0,
                time_to_violation_fn=lambda: float("inf"),
            )


class TestControlBehaviour:
    def test_idle_system_parks_into_rti(self, system):
        machine, engine, ecl = system
        run_loop(ecl, engine, 3.0)
        socket0 = ecl.sockets[0]
        assert socket0.decisions >= 2
        # Only the ECL's own ~2 % overhead remains as demand.
        assert socket0.performance_level < 0.02 * ecl.profiles[0].peak_performance()
        status = socket0.status(machine.time_s)
        assert status.plan_duty < 0.1

    def test_partial_load_settles_in_under_zone(self, system):
        machine, engine, ecl = system
        inject = demand_injector(engine, 0.3)
        run_loop(ecl, engine, 6.0, demand_fn=inject)
        socket0 = ecl.sockets[0]
        status = socket0.status(machine.time_s)
        from repro.profiles.zones import RulingZone

        assert status.zone in (
            RulingZone.UNDER_UTILIZATION,
            RulingZone.OPTIMAL,
        )
        assert 0.0 < status.plan_duty <= 1.0
        # The backlog stays bounded (no runaway queue).
        assert engine.hubs[0].pending_messages < 2000

    def test_power_tracks_load(self, system):
        machine, engine, ecl = system
        inject = demand_injector(engine, 0.15)
        run_loop(ecl, engine, 5.0, demand_fn=inject)
        low_power = machine.last_step.rapl_power_w

        inject2 = demand_injector(engine, 0.7)
        run_loop(ecl, engine, 5.0, demand_fn=inject2)
        high_power = machine.last_step.rapl_power_w
        assert high_power > low_power

    def test_discovery_ramps_under_saturation(self, system):
        machine, engine, ecl = system
        inject = demand_injector(engine, 3.0)  # genuine overload
        run_loop(ecl, engine, 3.0, demand_fn=inject)
        socket0 = ecl.sockets[0]
        # Saturated: the level must have discovered its way up to peak.
        assert socket0.performance_level > 0.8 * ecl.profiles[0].peak_performance()

    def test_configuration_switches_counted(self, system):
        machine, engine, ecl = system
        inject = demand_injector(engine, 0.3)
        run_loop(ecl, engine, 3.0, demand_fn=inject)
        assert ecl.sockets[0].configuration_switches > 5

    def test_online_updates_happen_under_saturation(self, system):
        machine, engine, ecl = system
        inject = demand_injector(engine, 3.0)
        run_loop(ecl, engine, 3.0, demand_fn=inject)
        total_updates = sum(
            s.maintainer.online_updates for s in ecl.sockets.values()
        )
        assert total_updates >= 1

    def test_status_snapshot(self, system):
        machine, engine, ecl = system
        run_loop(ecl, engine, 2.0)
        status = ecl.sockets[0].status(machine.time_s)
        assert status.time_s == pytest.approx(machine.time_s)
        assert status.applied != "none"


class TestEclOverhead:
    def test_overhead_charged_to_engine(self, system):
        """§6.2: the ECL itself consumes ~2 % of one thread per socket."""
        machine, engine, ecl = system
        run_loop(ecl, engine, 1.0)
        # The overhead shows up as consumed instructions without queries.
        consumed = engine.utilization.busy_fraction(0, machine.time_s)
        assert consumed >= 0.0  # smoke: accounting path exercised
        expected_rate = (
            ecl.params.overhead_thread_fraction
            * machine.params.core_nominal_ghz
            * 1e9
        )
        assert expected_rate > 0
