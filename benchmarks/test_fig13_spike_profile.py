"""Fig. 13 — the spike load profile end-to-end (non-indexed KV).

Paper: the ECL never draws more power than the baseline; energy
proportionality is near-perfect above ~50 % load; during the deliberate
overload the ECL recovers *faster* than the baseline (the all-threads
baseline thrashes the memory controllers); latency-limit violations occur
only within the overload phase, and doubling the ECL base frequency to
2 Hz only slightly improves latencies.
"""

from repro.analysis import proportionality_index
from repro.ecl.socket_ecl import EclParameters
from repro.loadprofiles import spike_profile
from repro.sim import RunConfiguration, run_experiment
from repro.sim.metrics import energy_saving_fraction
from repro.workloads import KeyValueWorkload, WorkloadVariant

from _shared import bench_duration_s, heading


def run_all():
    duration = bench_duration_s()
    profile = spike_profile(duration_s=duration)
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    runs = {}
    runs["baseline"] = run_experiment(
        RunConfiguration(workload=workload, profile=profile, policy="baseline")
    )
    runs["ecl 1Hz"] = run_experiment(
        RunConfiguration(workload=workload, profile=profile, policy="ecl")
    )
    runs["ecl 2Hz"] = run_experiment(
        RunConfiguration(
            workload=workload,
            profile=profile,
            policy="ecl",
            ecl_params=EclParameters(interval_s=0.5),
        )
    )
    return runs, profile


def test_fig13_spike_profile(run_once):
    runs, profile = run_once(run_all)
    base = runs["baseline"]
    ecl1 = runs["ecl 1Hz"]
    ecl2 = runs["ecl 2Hz"]

    heading("Fig. 13(a) — spike profile: load and power over time")
    print(f"{'t':>6} {'load qps':>9} {'base W':>8} {'ecl1Hz W':>9} {'ecl2Hz W':>9}")
    for sb, s1, s2 in zip(base.samples[::8], ecl1.samples[::8], ecl2.samples[::8]):
        print(
            f"{sb.time_s:6.1f} {sb.load_qps:9.0f} {sb.rapl_power_w:8.1f} "
            f"{s1.rapl_power_w:9.1f} {s2.rapl_power_w:9.1f}"
        )

    heading("Fig. 13(b) — query latencies vs the 100 ms limit")
    for name, run in runs.items():
        print(
            f"{name:>9}: mean {1000 * run.mean_latency_s():7.1f} ms  "
            f"p99 {1000 * run.percentile_latency_s(99):7.1f} ms  "
            f"violations {run.violation_fraction():6.1%}  "
            f"completed {run.queries_completed}/{run.queries_submitted}"
        )
    saving = energy_saving_fraction(base, ecl1)
    print(f"\nenergy saving (1 Hz): {saving:.1%}")
    ep_base = proportionality_index(base)
    ep_ecl = proportionality_index(ecl1)
    print(f"energy proportionality: baseline {ep_base:.2f}, ecl {ep_ecl:.2f}")
    exit_base = base.overload_exit_time_s(0)
    exit_ecl = ecl1.overload_exit_time_s(0)
    print(f"overload backlog cleared: baseline t={exit_base}, ecl t={exit_ecl}")

    # The ECL never draws (meaningfully) more power than the baseline.
    over = sum(
        1
        for sb, s1 in zip(base.samples, ecl1.samples)
        if s1.rapl_power_w > sb.rapl_power_w + 10.0
    )
    assert over < 0.05 * len(base.samples)

    # Substantial energy savings on the bandwidth-bound KV workload.
    assert 0.20 < saving < 0.55

    # §6.1: the ECL "significantly improves energy proportionality".
    assert ep_ecl > ep_base

    # The ECL leaves the overload state no later than the baseline
    # (§6.1: the lean configuration out-runs the thrashing baseline).
    overload_end = 100.0 / 180.0 * profile.duration_s
    assert exit_base is not None and exit_ecl is not None
    assert exit_ecl <= exit_base + 1.0
    assert exit_base > overload_end  # the baseline was genuinely backlogged

    # Violations concentrate in the overload window.
    for run in (ecl1, ecl2):
        in_window = [
            s
            for s in run.samples
            if (s.avg_latency_s or 0) > 0.1
        ]
        if in_window:
            start = 80.0 / 180.0 * profile.duration_s
            assert all(s.time_s > start * 0.8 for s in in_window)

    # 2 Hz helps latency a little (or at least does not hurt much).
    assert ecl2.mean_latency_s() < ecl1.mean_latency_s() * 1.25
