"""Runtime statistics consumed by the Energy-Control Loop.

Two signal sources feed the ECL (paper §5):

* **worker utilization** per socket — the socket-level ECL's demand
  signal.  It is measured relative to the *currently active* worker set:
  1.0 means the active workers never ran out of messages during the
  observation window.
* **query latency** — the system-level ECL's constraint signal: a sliding
  window average plus a linear trend used to estimate the time until the
  user-defined latency limit would be violated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ControlError


@dataclass(frozen=True)
class LatencySample:
    """One completed query's latency observation."""

    completion_s: float
    latency_s: float


class LatencyTracker:
    """Sliding-window average latency and its trend."""

    def __init__(self, window_s: float = 5.0):
        if window_s <= 0:
            raise ControlError(f"window must be > 0, got {window_s}")
        self.window_s = window_s
        self._samples: deque[LatencySample] = deque()
        self.total_completed = 0
        self._max_latency_s = 0.0

    def record(self, completion_s: float, latency_s: float) -> None:
        """Record one completed query."""
        if latency_s < 0:
            raise ControlError(f"negative latency {latency_s}")
        self._samples.append(
            LatencySample(completion_s=completion_s, latency_s=latency_s)
        )
        self.total_completed += 1
        self._max_latency_s = max(self._max_latency_s, latency_s)

    def prune(self, now_s: float) -> None:
        """Drop samples older than the window."""
        horizon = now_s - self.window_s
        while self._samples and self._samples[0].completion_s < horizon:
            self._samples.popleft()

    def sample_count(self) -> int:
        """Samples currently inside the window."""
        return len(self._samples)

    @property
    def max_latency_s(self) -> float:
        """Largest latency ever observed (for reports)."""
        return self._max_latency_s

    def average_latency_s(self, now_s: float) -> float | None:
        """Window-average latency, or None with no samples."""
        self.prune(now_s)
        if not self._samples:
            return None
        return sum(s.latency_s for s in self._samples) / len(self._samples)

    def trend_s_per_s(self, now_s: float) -> float:
        """Least-squares slope of latency over completion time.

        Positive slope = latencies are growing.  Returns 0.0 when fewer
        than two samples are available or the window has no time spread.
        """
        self.prune(now_s)
        n = len(self._samples)
        if n < 2:
            return 0.0
        mean_t = sum(s.completion_s for s in self._samples) / n
        mean_l = sum(s.latency_s for s in self._samples) / n
        sxx = sum((s.completion_s - mean_t) ** 2 for s in self._samples)
        if sxx <= 0:
            return 0.0
        sxy = sum(
            (s.completion_s - mean_t) * (s.latency_s - mean_l)
            for s in self._samples
        )
        return sxy / sxx

    def time_to_violation_s(self, limit_s: float, now_s: float) -> float:
        """Estimated seconds until the average latency crosses ``limit_s``.

        Returns 0.0 when the limit is already violated and ``inf`` when
        latency is flat or shrinking (or no data exists yet).
        """
        if limit_s <= 0:
            raise ControlError(f"latency limit must be > 0, got {limit_s}")
        average = self.average_latency_s(now_s)
        if average is None:
            return float("inf")
        if average >= limit_s:
            return 0.0
        slope = self.trend_s_per_s(now_s)
        if slope <= 0:
            return float("inf")
        return (limit_s - average) / slope


class UtilizationTracker:
    """Per-socket utilization of the active worker set."""

    def __init__(self, socket_ids: tuple[int, ...], window_s: float = 1.0):
        if window_s <= 0:
            raise ControlError(f"window must be > 0, got {window_s}")
        self.window_s = window_s
        self._ticks: dict[int, deque[tuple[float, float, float]]] = {
            sid: deque() for sid in socket_ids
        }
        self._pending: dict[int, float] = {sid: 0.0 for sid in socket_ids}

    def record_tick(
        self,
        socket_id: int,
        now_s: float,
        offered_instructions: float,
        consumed_instructions: float,
        pending_instructions: float = 0.0,
    ) -> None:
        """Record one tick's budgets plus the backlog left afterwards."""
        if socket_id not in self._ticks:
            raise ControlError(f"unknown socket id {socket_id}")
        if offered_instructions < 0 or consumed_instructions < 0:
            raise ControlError("instruction budgets must be >= 0")
        if pending_instructions < 0:
            raise ControlError("pending instructions must be >= 0")
        self._ticks[socket_id].append(
            (now_s, offered_instructions, consumed_instructions)
        )
        self._pending[socket_id] = pending_instructions
        horizon = now_s - self.window_s
        ticks = self._ticks[socket_id]
        while ticks and ticks[0][0] < horizon:
            ticks.popleft()

    def record_span(
        self,
        socket_id: int,
        times: list[float],
        offered_instructions: float,
        consumed_instructions: float,
        pending_instructions: float = 0.0,
    ) -> None:
        """Record one identical sample for every tick time in ``times``.

        Bit-identical to calling :meth:`record_tick` once per time:
        eviction only removes entries older than the horizon, and the
        horizon grows monotonically, so one sweep at the final time
        removes exactly what the per-tick sweeps would have.
        """
        if socket_id not in self._ticks:
            raise ControlError(f"unknown socket id {socket_id}")
        if offered_instructions < 0 or consumed_instructions < 0:
            raise ControlError("instruction budgets must be >= 0")
        if pending_instructions < 0:
            raise ControlError("pending instructions must be >= 0")
        if not times:
            return
        ticks = self._ticks[socket_id]
        offered = offered_instructions
        consumed = consumed_instructions
        ticks.extend((t, offered, consumed) for t in times)
        self._pending[socket_id] = pending_instructions
        horizon = times[-1] - self.window_s
        while ticks and ticks[0][0] < horizon:
            ticks.popleft()

    def utilization(self, socket_id: int, now_s: float) -> float:
        """Demand relative to the offered capacity over the window.

        ``(consumed + backlog) / offered``, clamped to 1.0 — a remaining
        backlog means the active workers could not keep up, so utilization
        must saturate even though idle RTI phases offered no capacity.  A
        fully parked socket reports 1.0 when work is waiting (it must be
        woken) and 0.0 otherwise.
        """
        if socket_id not in self._ticks:
            raise ControlError(f"unknown socket id {socket_id}")
        horizon = now_s - self.window_s
        offered = consumed = 0.0
        for t, off, con in self._ticks[socket_id]:
            if t >= horizon:
                offered += off
                consumed += con
        backlog = self._pending[socket_id]
        if offered <= 0:
            return 1.0 if backlog > 0 else 0.0
        return min(1.0, (consumed + backlog) / offered)

    def busy_fraction(self, socket_id: int, now_s: float) -> float:
        """Consumed / offered over the window, *without* the backlog term.

        This answers a different question than :meth:`utilization`:
        whether the active workers ever ran out of messages (< 1.0) or
        stayed saturated.  The ECL's online profile adaptation gates on
        this — a measurement taken while workers ran dry reflects missing
        demand, not the configuration's capacity.
        """
        if socket_id not in self._ticks:
            raise ControlError(f"unknown socket id {socket_id}")
        horizon = now_s - self.window_s
        offered = consumed = 0.0
        for t, off, con in self._ticks[socket_id]:
            if t >= horizon:
                offered += off
                consumed += con
        if offered <= 0:
            return 0.0
        return min(1.0, consumed / offered)
