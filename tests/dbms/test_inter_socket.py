"""Tests for the inter-socket communication threads."""

import pytest

from repro.errors import MessagingError
from repro.dbms.inter_socket import InterSocketRouter
from repro.dbms.intra_socket import IntraSocketHub
from repro.dbms.messages import Message, WorkCost


def msg(partition: int) -> Message:
    return Message(query_id=0, target_partition=partition, cost=WorkCost(100))


@pytest.fixture
def router():
    hubs = {
        0: IntraSocketHub(0, [0, 2]),
        1: IntraSocketHub(1, [1, 3]),
    }
    return InterSocketRouter(hubs), hubs


class TestRouting:
    def test_local_delivery_immediate(self, router):
        r, hubs = router
        delivered = r.route(0, msg(0))
        assert delivered
        assert hubs[0].pending_messages == 1

    def test_remote_buffered(self, router):
        r, hubs = router
        delivered = r.route(0, msg(1))
        assert not delivered
        assert hubs[1].pending_messages == 0
        assert r.buffered_count(0, 1) == 1
        assert r.total_buffered == 1

    def test_home_socket(self, router):
        r, _ = router
        assert r.home_socket(0) == 0
        assert r.home_socket(3) == 1

    def test_unknown_partition(self, router):
        r, _ = router
        with pytest.raises(MessagingError):
            r.home_socket(9)

    def test_unknown_source(self, router):
        r, _ = router
        with pytest.raises(MessagingError):
            r.route(7, msg(0))

    def test_unknown_buffer(self, router):
        r, _ = router
        with pytest.raises(MessagingError):
            r.buffered_count(0, 0)

    def test_empty_router_rejected(self):
        with pytest.raises(MessagingError):
            InterSocketRouter({})


class TestFlush:
    def test_flush_delivers(self, router):
        r, hubs = router
        r.route(0, msg(1))
        r.route(0, msg(3))
        r.route(1, msg(0))
        stats = r.flush()
        assert stats.messages_moved == 3
        assert hubs[1].pending_messages == 2
        assert hubs[0].pending_messages == 1
        assert r.total_buffered == 0
        assert r.total_messages_moved == 3

    def test_flush_charges_both_sides(self, router):
        r, _ = router
        r.route(0, msg(1))
        stats = r.flush()
        assert stats.cost_by_socket[0].instructions > 0
        assert stats.cost_by_socket[1].instructions > 0
        # Sender pays the per-flush overhead on top.
        assert (
            stats.cost_by_socket[0].instructions
            > stats.cost_by_socket[1].instructions
        )

    def test_empty_flush_is_free(self, router):
        r, _ = router
        stats = r.flush()
        assert stats.messages_moved == 0
        assert stats.flushes == 0
        assert all(c.instructions == 0 for c in stats.cost_by_socket.values())

    def test_batching_amortizes_flush_overhead(self, router):
        r, _ = router
        for _ in range(10):
            r.route(0, msg(1))
        batched = r.flush().cost_by_socket[0].instructions
        r.route(0, msg(1))
        single = r.flush().cost_by_socket[0].instructions
        assert batched < 10 * single


class TestRehoming:
    def test_rehome_redirects_routing(self, router):
        r, hubs = router
        hubs[1].adopt_partition(0)  # the coordinator's hub-side half
        r.rehome_partition(0, 1)
        assert r.home_socket(0) == 1
        assert r.route(1, msg(0))  # now local to socket 1
        assert hubs[1].pending_messages == 1

    def test_rehome_validation(self, router):
        r, _ = router
        with pytest.raises(MessagingError):
            r.rehome_partition(9, 1)
        with pytest.raises(MessagingError):
            r.rehome_partition(0, 5)

    def test_buffered_from_counts_sender_side(self, router):
        r, _ = router
        r.route(0, msg(1))
        r.route(0, msg(3))
        r.route(1, msg(0))
        assert r.buffered_from(0) == 2
        assert r.buffered_from(1) == 1
        with pytest.raises(MessagingError):
            r.buffered_from(7)


class TestForwarding:
    def test_in_flight_message_follows_the_partition(self, router):
        # Buffer toward the old home, migrate, then flush: the message is
        # forwarded (one extra hop), not delivered to the stale socket.
        r, hubs = router
        r.route(1, msg(0))  # buffered 1 -> 0
        hubs[1].adopt_partition(0)
        r.rehome_partition(0, 1)
        stats = r.flush()
        assert stats.forwarded == 1
        assert r.total_forwarded == 1
        assert hubs[0].pending_messages == 0
        assert r.total_buffered == 1  # waiting for the next hop
        second = r.flush()
        assert second.forwarded == 0
        assert second.messages_moved == 1
        assert hubs[1].pending_messages == 1  # delivered on the new home


class TestTransferPartition:
    def test_transfer_rehomes_and_ships_queue(self, router):
        r, hubs = router
        queue = [msg(0), msg(0)]
        cost = r.transfer_partition(0, 1, queue, data_bytes=1000.0)
        assert r.home_socket(0) == 1
        assert r.buffered_count(0, 1) == 2
        assert cost.instructions > 0
        assert cost.bytes_accessed == 1000.0

    def test_transfer_cost_scales_with_bytes(self, router):
        r, _ = router
        small = r.transfer_partition(0, 1, [], data_bytes=1000.0)
        r.rehome_partition(0, 0)
        large = r.transfer_partition(0, 1, [], data_bytes=2_000_000.0)
        assert large.instructions > small.instructions

    def test_transfer_validation(self, router):
        r, _ = router
        with pytest.raises(MessagingError):
            r.transfer_partition(9, 1, [], 0.0)
        with pytest.raises(MessagingError):
            r.transfer_partition(0, 5, [], 0.0)
        with pytest.raises(MessagingError):
            r.transfer_partition(0, 0, [], 0.0)  # already home
        with pytest.raises(MessagingError):
            r.transfer_partition(0, 1, [], -1.0)
