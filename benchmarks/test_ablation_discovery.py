"""Ablation — demand discovery vs the system-level ECL's latency signal.

Two §5 mechanisms cooperate on load spikes: the utilization controller's
exponential discovery (level × factor at full utilization) and the
system-level ECL's time-to-violation, which (a) makes the discovery more
aggressive and (b) suspends race-to-idle when headroom is critical.

The bench steps the indexed-KV load from 10 % to 75 % and shows:

1. with the latency signal *disabled* (a practically infinite limit),
   recovery is governed by discovery alone — a timid multiplier recovers
   visibly slower than the default;
2. with the signal enabled, the latency override dominates: even the
   timid multiplier recovers almost as fast as the default, because a
   rising latency trend forces the aggressive path regardless.
"""

from repro.ecl.socket_ecl import EclParameters
from repro.loadprofiles import step_profile
from repro.sim import RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, WorkloadVariant

from _shared import heading

#: Effectively disables the system-level ECL's influence.
NO_SIGNAL_LIMIT_S = 1e6


def run_sweep():
    workload = KeyValueWorkload(WorkloadVariant.INDEXED)
    profile = step_profile([(8.0, 0.1), (12.0, 0.75)])
    variants = {
        "timid, no latency signal": EclParameters(
            discovery_factor=1.15,
            urgent_discovery_factor=1.2,
            latency_limit_s=NO_SIGNAL_LIMIT_S,
        ),
        "default, no latency signal": EclParameters(
            latency_limit_s=NO_SIGNAL_LIMIT_S
        ),
        "timid, with latency signal": EclParameters(
            discovery_factor=1.15, urgent_discovery_factor=1.2
        ),
        "default, with latency signal": EclParameters(),
    }
    return {
        label: run_experiment(
            RunConfiguration(workload=workload, profile=profile, ecl_params=params)
        )
        for label, params in variants.items()
    }


def recovery_latency(run):
    """Worst average latency after the load step (t = 8..16 s)."""
    values = [
        s.avg_latency_s
        for s in run.samples
        if 8.0 <= s.time_s <= 16.0 and s.avg_latency_s is not None
    ]
    return max(values) if values else 0.0


def test_ablation_discovery(run_once):
    sweeps = run_once(run_sweep)

    heading("Ablation — discovery factor × latency signal (10 % → 75 % step)")
    for label, run in sweeps.items():
        print(
            f"{label:>30}: energy {run.total_energy_j:7.0f} J  "
            f"post-step latency peak {1000 * recovery_latency(run):8.1f} ms"
        )

    timid_blind = recovery_latency(sweeps["timid, no latency signal"])
    default_blind = recovery_latency(sweeps["default, no latency signal"])
    timid_guided = recovery_latency(sweeps["timid, with latency signal"])
    default_guided = recovery_latency(sweeps["default, with latency signal"])

    # 1. Without the latency signal, discovery speed is all that matters:
    #    timid discovery pays a clearly larger latency excursion.
    assert timid_blind > 1.5 * default_blind

    # 2. The system-level ECL's signal rescues even timid discovery.
    assert timid_guided < 0.5 * timid_blind

    # 3. With the signal on, the discovery factor barely matters — the
    #    paper's hierarchical design makes the socket knob forgiving.
    assert timid_guided < 2.0 * default_guided + 0.05
