"""RAPL-style energy counters with realistic measurement artifacts.

The paper reads socket power through the Running Average Power Limit
(RAPL) counters, which on Haswell-EP are accurate *in the aggregate* but
awkward at fine time scales:

* the registers publish new values only periodically (the Fig. 7 time
  series show ~1 s effective lag in the tooling);
* short measurement windows are noisy — the paper's meta-calibration
  (Fig. 12) lands on ~100 ms as the shortest trustworthy window;
* readings taken immediately after a configuration switch carry extra
  error ("the source of most of the deviation ... was the RAPL
  measurement, when switching to the lowest configuration").

This module reproduces those artifacts so that the ECL's calibration step
has something real to calibrate against: a per-read absolute error makes
*relative* window error shrink as the window grows, quantization adds a
floor, and a decaying post-switch disturbance penalizes measuring right
after reconfiguration.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareError
from repro.hardware.presets import HaswellEPParameters


class RaplDomain(enum.Enum):
    """RAPL measurement domains available per socket on Haswell-EP."""

    PACKAGE = "package"  #: cores, caches, uncore
    DRAM = "dram"  #: memory controller / DIMM domain


@dataclass(frozen=True)
class RaplReading:
    """One counter read: published energy and the read timestamp."""

    energy_j: float
    timestamp_s: float


class RaplCounter:
    """Energy counter of one (socket, domain) pair.

    The owning :class:`~repro.hardware.machine.Machine` feeds true energy
    via :meth:`accumulate`; consumers read via :meth:`read`, which returns
    the *published* (lagged, quantized, noisy) value.
    """

    def __init__(
        self,
        params: HaswellEPParameters,
        domain: RaplDomain,
        rng: np.random.Generator,
    ):
        self._params = params
        self._domain = domain
        self._rng = rng
        self._true_energy_j = 0.0
        self._published_energy_j = 0.0
        self._published_at_s = 0.0
        self._now_s = 0.0
        self._last_switch_s = -math.inf

    @property
    def domain(self) -> RaplDomain:
        """The RAPL domain this counter measures."""
        return self._domain

    @property
    def true_energy_j(self) -> float:
        """Ground-truth accumulated energy (not observable by the ECL)."""
        return self._true_energy_j

    def accumulate(self, power_w: float, dt_s: float, now_s: float) -> None:
        """Add ``power_w × dt_s`` joules of true energy up to time ``now_s``."""
        if dt_s < 0:
            raise HardwareError(f"negative accumulation interval {dt_s}")
        if power_w < 0:
            raise HardwareError(f"negative power {power_w}")
        self._true_energy_j += power_w * dt_s
        self._now_s = now_s
        period = self._params.rapl_update_period_s
        if now_s - self._published_at_s >= period:
            self._published_energy_j = self._true_energy_j
            self._published_at_s = now_s

    def accumulate_span(
        self, power_w: float, dt_s: float, times: np.ndarray
    ) -> None:
        """Replay ``accumulate(power_w, dt_s, t)`` for every ``t`` in ``times``.

        The energy fold runs through ``np.add.accumulate`` (a strict
        left-to-right fold, bit-identical to the per-call ``+=``), and
        publish points are found with the same ``now - published_at``
        float subtraction the scalar path performs, so the final counter
        state matches ``len(times)`` individual calls exactly.
        """
        if dt_s < 0:
            raise HardwareError(f"negative accumulation interval {dt_s}")
        if power_w < 0:
            raise HardwareError(f"negative power {power_w}")
        n = len(times)
        if n == 0:
            return
        fold = np.add.accumulate(
            np.concatenate(([self._true_energy_j], np.full(n, power_w * dt_s)))
        )
        period = self._params.rapl_update_period_s
        if times[0] - self._published_at_s >= period and (
            n == 1 or float((times[1:] - times[:-1]).min()) >= period
        ):
            # Every tick publishes (the update period is no longer than
            # any tick gap), so only the last tick's publish survives.
            self._published_energy_j = float(fold[-1])
            self._published_at_s = float(times[-1])
        else:
            published_at = self._published_at_s
            published = self._published_energy_j
            for k in range(n):
                t_k = times[k]
                if t_k - published_at >= period:
                    published = fold[k + 1]
                    published_at = t_k
            self._published_energy_j = float(published)
            self._published_at_s = float(published_at)
        self._true_energy_j = float(fold[-1])
        self._now_s = float(times[-1])

    def note_configuration_switch(self, now_s: float) -> None:
        """Record a hardware reconfiguration (adds transient read error)."""
        self._last_switch_s = now_s

    def read(self) -> RaplReading:
        """Read the counter as software would via the MSR.

        The returned energy is the last *published* value, quantized to the
        energy-status unit, plus a per-read absolute error and a decaying
        post-switch disturbance.  Because the error is absolute, the
        relative error of a windowed measurement ``read(t2) - read(t1)``
        shrinks as the window grows — exactly the behaviour that drives the
        ECL's 100 ms measure-interval calibration (Fig. 12).
        """
        p = self._params
        value = self._published_energy_j
        noise = self._rng.normal(0.0, 0.1 * p.rapl_noise_std_at_100ms * 100.0)
        # 0.1 * std_at_100ms * 100 keeps the constant interpretable: a 100 ms
        # window at ~100 W (10 J) sees ~rapl_noise_std_at_100ms relative error.
        since_switch = self._now_s - self._last_switch_s
        if since_switch >= 0 and math.isfinite(since_switch):
            settle = 0.0003  # sub-ms exponential settle time
            noise += self._rng.normal(0.0, p.rapl_switch_noise_j) * math.exp(
                -since_switch / settle
            )
        unit = p.rapl_energy_unit_j
        quantized = math.floor(max(0.0, value + noise) / unit) * unit
        return RaplReading(energy_j=quantized, timestamp_s=self._now_s)

    def window_energy_j(self, start: RaplReading, end: RaplReading) -> float:
        """Energy between two readings, clamped to be non-negative."""
        return max(0.0, end.energy_j - start.energy_j)

    def window_power_w(self, start: RaplReading, end: RaplReading) -> float:
        """Average power between two readings.

        Raises:
            HardwareError: if the readings are not strictly ordered in time.
        """
        dt = end.timestamp_s - start.timestamp_s
        if dt <= 0:
            raise HardwareError(
                f"readings not ordered: {start.timestamp_s} -> {end.timestamp_s}"
            )
        return self.window_energy_j(start, end) / dt
