"""Fig. 9 — energy-profile granularity for the compute-bound workload.

Paper: with f_core=4, f_uncore=3, mixed off, c_max=256 the generator
produces 144 configurations plus idle (sibling grouping); raising f_core
to 7 or enabling mixed frequencies adds configurations *without*
improving the skyline — the coarse setting already covers the supporting
points.  The lowest uncore clock is the most energy-efficient for
compute-bound work.
"""

from repro.hardware.machine import Machine
from repro.profiles.evaluate import build_profile
from repro.profiles.generator import GeneratorParameters
from repro.workloads.micro import COMPUTE_BOUND

from _shared import heading


def build_variants():
    machine = Machine(seed=8)
    settings = {
        "f_core=4, mixed off": GeneratorParameters(f_core=4, f_uncore=3),
        "f_core=7, mixed off": GeneratorParameters(f_core=7, f_uncore=3),
        "f_core=4, mixed on": GeneratorParameters(
            f_core=4, f_uncore=3, f_core_mixed=True
        ),
    }
    return {
        name: build_profile(machine, 0, COMPUTE_BOUND, params)
        for name, params in settings.items()
    }


def skyline_efficiency_at(profile, levels):
    """Best efficiency achievable at each normalized performance level."""
    peak = profile.peak_performance()
    return [
        profile.best_for_performance(level * peak).measurement.energy_efficiency
        for level in levels
    ]


def test_fig09_profile_granularity(run_once):
    profiles = run_once(build_variants)

    heading("Fig. 9 — compute-bound energy profiles, 3 generator settings")
    levels = [0.2, 0.4, 0.6, 0.8, 1.0]
    reference = None
    for name, profile in profiles.items():
        effs = skyline_efficiency_at(profile, levels)
        opt = profile.most_efficient()
        print(
            f"{name:>22}: {len(profile):4d} configs, optimal "
            f"{opt.configuration.describe():>20}, skyline eff @ "
            + " ".join(f"{l:.0%}:{e:.2e}" for l, e in zip(levels, effs))
        )
        if reference is None:
            reference = effs
        else:
            # The skyline does NOT significantly improve with granularity.
            for base_eff, this_eff in zip(reference, effs):
                assert this_eff < base_eff * 1.08

    base = profiles["f_core=4, mixed off"]
    assert len(base) == 145  # 144 + idle, the paper's exact count
    assert len(profiles["f_core=7, mixed off"]) > len(base)
    assert len(profiles["f_core=4, mixed on"]) > len(base)

    # Lowest uncore clock is most efficient for compute-bound work.
    assert base.most_efficient().configuration.uncore_ghz == 1.2

    # ECL RTI beats the race-to-idle baseline below the optimal zone.
    opt_perf = base.most_efficient().measurement.performance_score
    for fraction in (0.2, 0.5, 0.8):
        level = fraction * opt_perf
        assert base.rti_efficiency(level) > base.baseline_efficiency(level)
    saving = base.max_rti_saving()
    print(f"\nmax ECL-RTI saving vs baseline: {saving:.1%} (paper: ~40 % at low load)")
    assert 0.25 < saving < 0.55
