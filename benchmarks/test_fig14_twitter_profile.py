"""Fig. 14 — the Twitter load profile end-to-end (non-indexed KV).

Paper: the ECL draws significantly less power than the baseline most of
the time, but its reactive nature lags behind sudden load peaks, causing
latency outliers that a 2 Hz base frequency reduces.
"""

from repro.ecl.socket_ecl import EclParameters
from repro.loadprofiles import twitter_profile
from repro.sim import RunConfiguration, run_experiment
from repro.sim.metrics import energy_saving_fraction
from repro.workloads import KeyValueWorkload, WorkloadVariant

from _shared import bench_duration_s, heading


def run_all():
    profile = twitter_profile(duration_s=bench_duration_s())
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    runs = {
        "baseline": run_experiment(
            RunConfiguration(workload=workload, profile=profile, policy="baseline")
        ),
        "ecl 1Hz": run_experiment(
            RunConfiguration(workload=workload, profile=profile, policy="ecl")
        ),
        "ecl 2Hz": run_experiment(
            RunConfiguration(
                workload=workload,
                profile=profile,
                policy="ecl",
                ecl_params=EclParameters(interval_s=0.5),
            )
        ),
    }
    return runs


def test_fig14_twitter_profile(run_once):
    runs = run_once(run_all)
    base, ecl1, ecl2 = runs["baseline"], runs["ecl 1Hz"], runs["ecl 2Hz"]

    heading("Fig. 14(a) — twitter profile: load and power over time")
    print(f"{'t':>6} {'load qps':>9} {'base W':>8} {'ecl1Hz W':>9}")
    for sb, s1 in zip(base.samples[::8], ecl1.samples[::8]):
        print(
            f"{sb.time_s:6.1f} {sb.load_qps:9.0f} {sb.rapl_power_w:8.1f} "
            f"{s1.rapl_power_w:9.1f}"
        )

    heading("Fig. 14(b) — latencies under the alternating load")
    for name, run in runs.items():
        print(
            f"{name:>9}: mean {1000 * run.mean_latency_s():7.1f} ms  "
            f"p99 {1000 * run.percentile_latency_s(99):7.1f} ms  "
            f"max {1000 * max(run.latencies_s):7.1f} ms  "
            f"violations {run.violation_fraction():6.1%}"
        )
    saving = energy_saving_fraction(base, ecl1)
    print(f"\nenergy saving (1 Hz): {saving:.1%}")

    # Significant savings under the alternating real-world load.
    assert 0.15 < saving < 0.55

    # The ECL's power stays below the baseline's almost everywhere.
    below = sum(
        1
        for sb, s1 in zip(base.samples, ecl1.samples)
        if s1.rapl_power_w <= sb.rapl_power_w + 5.0
    )
    assert below > 0.9 * len(base.samples)

    # Reactive lag: the ECL shows latency outliers at the bursts...
    assert max(ecl1.latencies_s) > 2.5 * ecl1.mean_latency_s()
    # ...which the 2 Hz base frequency reduces (p99 no worse, usually better).
    assert ecl2.percentile_latency_s(99) <= ecl1.percentile_latency_s(99) * 1.15

    # Everything submitted eventually completes.
    assert ecl1.queries_completed >= 0.98 * ecl1.queries_submitted
