"""Tests for run-result metrics."""

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import RunResult, SamplePoint, energy_saving_fraction


def make_result(latencies=(), energy=100.0, samples=(), limit=0.1):
    result = RunResult(
        policy="ecl",
        workload_name="kv",
        profile_name="test",
        duration_s=10.0,
        latency_limit_s=limit,
    )
    result.latencies_s = list(latencies)
    result.total_energy_j = energy
    result.samples = list(samples)
    return result


def sample(t, pending=0):
    return SamplePoint(
        time_s=t,
        load_qps=0.0,
        rapl_power_w=100.0,
        psu_power_w=120.0,
        avg_latency_s=None,
        pending_messages=pending,
        in_flight_queries=0,
    )


class TestLatencyStats:
    def test_mean(self):
        result = make_result([0.01, 0.03])
        assert result.mean_latency_s() == pytest.approx(0.02)

    def test_empty_mean_none(self):
        assert make_result().mean_latency_s() is None

    def test_percentile(self):
        result = make_result([0.001 * i for i in range(1, 101)])
        assert result.percentile_latency_s(50) == pytest.approx(0.05)
        assert result.percentile_latency_s(99) == pytest.approx(0.099)

    def test_percentile_validation(self):
        result = make_result([0.01])
        with pytest.raises(SimulationError):
            result.percentile_latency_s(0)
        with pytest.raises(SimulationError):
            result.percentile_latency_s(101)

    def test_violation_fraction(self):
        result = make_result([0.05, 0.15, 0.25, 0.01], limit=0.1)
        assert result.violation_fraction() == pytest.approx(0.5)

    def test_violation_without_limit(self):
        result = make_result([0.5], limit=None)
        assert result.violation_fraction() == 0.0


class TestEnergy:
    def test_average_power(self):
        result = make_result(energy=500.0)
        assert result.average_power_w() == pytest.approx(50.0)

    def test_saving_fraction(self):
        baseline = make_result(energy=200.0)
        controlled = make_result(energy=150.0)
        assert energy_saving_fraction(baseline, controlled) == pytest.approx(0.25)

    def test_saving_requires_baseline_energy(self):
        with pytest.raises(SimulationError):
            energy_saving_fraction(make_result(energy=0.0), make_result())


class TestOverloadExit:
    def test_detects_backlog_clearance(self):
        samples = [
            sample(0.0, 0),
            sample(1.0, 500),
            sample(2.0, 900),
            sample(3.0, 400),
            sample(4.0, 5),
            sample(5.0, 0),
        ]
        result = make_result(samples=samples)
        assert result.overload_exit_time_s(1000) == pytest.approx(4.0)

    def test_none_without_backlog(self):
        result = make_result(samples=[sample(0.0), sample(1.0)])
        assert result.overload_exit_time_s(1000) is None

    def test_none_without_samples(self):
        assert make_result().overload_exit_time_s(1000) is None
