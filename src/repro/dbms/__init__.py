"""Elastic data-oriented DBMS runtime.

Implements the paper's §3 architecture:

* **Hierarchical message passing** — within a socket, messages for a
  partition are buffered in per-partition queues; workers repeatedly take
  *ownership* of a partition, drain a batch, and release it
  (:mod:`repro.dbms.intra_socket`).  Between sockets, one communication
  thread per socket batches and transfers remote messages
  (:mod:`repro.dbms.inter_socket`).
* **Elastic workers** — because partitions are no longer bound to a fixed
  worker, worker threads can be parked/unparked at runtime without losing
  access to any partition (:mod:`repro.dbms.elasticity`,
  :mod:`repro.dbms.worker`).
* **Cost-accounted execution** — operators execute for real against the
  storage layer while reporting instruction/byte costs; high-rate
  simulations can run the same operators in modeled mode
  (:mod:`repro.dbms.execution`).
* **Queries and statistics** — multi-stage query tracking, worker
  utilization, and query-latency statistics consumed by the ECL
  (:mod:`repro.dbms.queries`, :mod:`repro.dbms.stats`).

:class:`repro.dbms.engine.DatabaseEngine` is the facade tying the runtime
to a :class:`repro.hardware.machine.Machine`.
"""

from repro.dbms.messages import Message, MessageKind, WorkCost
from repro.dbms.intra_socket import IntraSocketHub
from repro.dbms.inter_socket import InterSocketRouter
from repro.dbms.worker import Worker, WorkerState
from repro.dbms.elasticity import ElasticWorkerPool
from repro.dbms.queries import Query, QueryStage, QueryTracker
from repro.dbms.stats import LatencySample, LatencyTracker, UtilizationTracker
from repro.dbms.engine import DatabaseEngine

__all__ = [
    "Message",
    "MessageKind",
    "WorkCost",
    "IntraSocketHub",
    "InterSocketRouter",
    "Worker",
    "WorkerState",
    "ElasticWorkerPool",
    "Query",
    "QueryStage",
    "QueryTracker",
    "LatencySample",
    "LatencyTracker",
    "UtilizationTracker",
    "DatabaseEngine",
]
