#!/usr/bin/env python3
"""HTAP: OLTP and OLAP sharing the machine — interference-aware profiles.

The paper's energy profiles "consider mutual interferences of
simultaneously running queries": the profile describes whatever mix a
socket currently serves.  This example runs TATP transactions and SSB
analytics *concurrently*; every message carries its component's
characteristics, and the engine feeds the instruction-weighted blend to
the hardware model, so the ECL controls against the true mix.

Run:  python examples/htap_mix.py
"""

from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, run_experiment
from repro.sim.metrics import energy_saving_fraction
from repro.workloads import (
    MixedWorkload,
    SsbWorkload,
    TatpWorkload,
    WorkloadVariant,
)


def main() -> None:
    mix = MixedWorkload(
        [
            (TatpWorkload(WorkloadVariant.INDEXED), 1.0),
            (SsbWorkload(WorkloadVariant.NON_INDEXED), 0.5),
        ]
    )
    profile = constant_profile(0.4, duration_s=20.0)

    print(f"workload : {mix.full_name}")
    blend = mix.characteristics
    print(
        f"blend    : cpi {blend.base_cpi:.2f}, "
        f"{blend.bytes_per_instr:.2f} B/instr, miss {blend.miss_rate:.4f}"
    )
    print(f"rate     : {mix.queries_per_second(0.4):.0f} queries/s at 40 % load\n")

    results = {}
    for policy in ("baseline", "ecl"):
        print(f"running {policy} ...")
        results[policy] = run_experiment(
            RunConfiguration(workload=mix, profile=profile, policy=policy)
        )

    ecl, base = results["ecl"], results["baseline"]
    print(f"\n{'':>10} {'energy':>10} {'power':>9} {'mean lat':>10} {'p99':>10}")
    for policy, result in results.items():
        print(
            f"{policy:>10} {result.total_energy_j:8.0f} J "
            f"{result.average_power_w():7.1f} W "
            f"{1000 * result.mean_latency_s():8.1f} ms "
            f"{1000 * result.percentile_latency_s(99):8.1f} ms"
        )
    print(
        f"\nenergy saving on the HTAP mix: "
        f"{energy_saving_fraction(base, ecl):.1%}"
    )
    print(
        "the ECL's profile reflects the OLTP/OLAP interference — neither "
        "component's solo optimum is applied blindly."
    )


if __name__ == "__main__":
    main()
