"""SSB — the Star Schema Benchmark (OLAP workload of Table 1).

Schema: a ``lineorder`` fact table hash-partitioned by order key plus
four dimension tables (``date``, ``customer``, ``supplier``, ``part``)
that are small and replicated into every partition, which is how
data-oriented systems avoid shuffling dimension data.

Execution follows the paper's data-oriented flow: stage 0 fans a scan ⋈
filter ⋈ dimension-join task to *every* partition (queries read the whole
fact table), stage 1 ships the partial aggregates to a coordinator
partition and merges them.  That second stage is the "data volume that
needs to be shipped between partitions" the paper blames for SSB's
higher uncore-clock demand relative to TATP.

The 13 standard queries are grouped into their four flights; each flight
has a per-row work factor (more dimension joins = more instructions per
fact row) and a selectivity used for the result-shipping volume.  Query
2.1 is the paper's appendix representative (Fig. 19/20).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbms.execution import (
    INSTR_PER_PROBE,
    aggregate_op,
    hash_join_aggregate_op,
    modeled_scan_cost,
)
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage
from repro.hardware.perfmodel import WorkloadCharacteristics
from repro.storage.partition import PartitionMap
from repro.storage.schema import DataType, Schema
from repro.workloads.base import Workload, WorkloadVariant

LINEORDER_SCHEMA = Schema.of(
    lo_orderkey=DataType.INT64,
    lo_custkey=DataType.INT64,
    lo_partkey=DataType.INT64,
    lo_suppkey=DataType.INT64,
    lo_orderdate=DataType.INT32,
    lo_quantity=DataType.INT32,
    lo_extendedprice=DataType.INT64,
    lo_discount=DataType.INT32,
    lo_revenue=DataType.INT64,
)
DATE_SCHEMA = Schema.of(
    d_datekey=DataType.INT32,
    d_year=DataType.INT32,
    d_yearmonthnum=DataType.INT32,
    d_weeknuminyear=DataType.INT32,
)
CUSTOMER_SCHEMA = Schema.of(
    c_custkey=DataType.INT64,
    c_city=DataType.STRING,
    c_nation=DataType.STRING,
    c_region=DataType.STRING,
)
SUPPLIER_SCHEMA = Schema.of(
    s_suppkey=DataType.INT64,
    s_city=DataType.STRING,
    s_nation=DataType.STRING,
    s_region=DataType.STRING,
)
PART_SCHEMA = Schema.of(
    p_partkey=DataType.INT64,
    p_category=DataType.STRING,
    p_brand1=DataType.STRING,
    p_mfgr=DataType.STRING,
)


@dataclass(frozen=True)
class SsbQueryClass:
    """One SSB query flight's cost shape.

    Attributes:
        flight: flight number (1–4).
        name: representative query id (e.g. "Q2.1").
        joins: dimension joins performed per fact row.
        selectivity: fraction of fact rows surviving the filters.
        result_bytes: partial-aggregate bytes shipped per partition.
    """

    flight: int
    name: str
    joins: int
    selectivity: float
    result_bytes: float


SSB_QUERY_CLASSES: tuple[SsbQueryClass, ...] = (
    SsbQueryClass(flight=1, name="Q1.1", joins=1, selectivity=0.019, result_bytes=64),
    SsbQueryClass(flight=1, name="Q1.2", joins=1, selectivity=0.0016, result_bytes=64),
    SsbQueryClass(flight=1, name="Q1.3", joins=1, selectivity=0.0002, result_bytes=64),
    SsbQueryClass(flight=2, name="Q2.1", joins=3, selectivity=0.008, result_bytes=2240),
    SsbQueryClass(flight=2, name="Q2.2", joins=3, selectivity=0.0016, result_bytes=448),
    SsbQueryClass(flight=2, name="Q2.3", joins=3, selectivity=0.0002, result_bytes=56),
    SsbQueryClass(flight=3, name="Q3.1", joins=3, selectivity=0.034, result_bytes=4200),
    SsbQueryClass(flight=3, name="Q3.2", joins=3, selectivity=0.0014, result_bytes=600),
    SsbQueryClass(flight=3, name="Q3.3", joins=3, selectivity=0.000055, result_bytes=240),
    SsbQueryClass(flight=3, name="Q3.4", joins=3, selectivity=0.0000076, result_bytes=240),
    SsbQueryClass(flight=4, name="Q4.1", joins=4, selectivity=0.016, result_bytes=1400),
    SsbQueryClass(flight=4, name="Q4.2", joins=4, selectivity=0.0046, result_bytes=2800),
    SsbQueryClass(flight=4, name="Q4.3", joins=4, selectivity=0.00091, result_bytes=3360),
)

#: The appendix uses Q2.1 as the representative profile (Fig. 19/20).
REPRESENTATIVE_QUERY = SSB_QUERY_CLASSES[3]

INDEXED_CHARACTERISTICS = WorkloadCharacteristics(
    name="ssb-indexed",
    base_cpi=0.70,
    ht_speedup=1.25,
    bytes_per_instr=0.80,
    miss_rate=0.0035,
)

NON_INDEXED_CHARACTERISTICS = WorkloadCharacteristics(
    name="ssb-non-indexed",
    base_cpi=0.70,
    ht_speedup=1.10,
    bytes_per_instr=3.5,
)

#: Fact rows per partition used in modeled costs (SF≈1 across 48 parts).
FACT_ROWS_PER_PARTITION = 125_000
#: Bytes of fact columns touched per row scanned (orderdate + measures).
FACT_ROW_BYTES = 24


class SsbWorkload(Workload):
    """Star Schema Benchmark, indexed or non-indexed."""

    def __init__(self, variant: WorkloadVariant = WorkloadVariant.NON_INDEXED):
        super().__init__(variant)

    @property
    def name(self) -> str:
        return "ssb"

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        if self.is_indexed:
            return INDEXED_CHARACTERISTICS
        return NON_INDEXED_CHARACTERISTICS

    @property
    def nominal_peak_qps(self) -> float:
        return 560.0 if self.is_indexed else 330.0

    # -- modeled mode ---------------------------------------------------------

    def partition_task_cost(self, query_class: SsbQueryClass) -> WorkCost:
        """Modeled cost of one partition's stage-0 task for a query class."""
        rows = FACT_ROWS_PER_PARTITION
        if self.is_indexed:
            # Index-assisted: probe the orderdate index, join survivors.
            survivors = rows * max(query_class.selectivity, 1e-5) * 20
            instructions = (
                500.0
                + survivors * INSTR_PER_PROBE * query_class.joins
                + survivors * 30.0
            )
            bytes_accessed = survivors * 64.0 * query_class.joins
        else:
            scan = modeled_scan_cost(rows, FACT_ROW_BYTES, query_class.selectivity)
            join_work = rows * 2.0 * query_class.joins
            instructions = scan.instructions + join_work
            bytes_accessed = scan.bytes_accessed + rows * 2.0
        return WorkCost(instructions=instructions, bytes_accessed=bytes_accessed)

    def make_modeled_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """One SSB query: full fan-out scan + coordinator merge."""
        query_class = SSB_QUERY_CLASSES[int(rng.integers(0, len(SSB_QUERY_CLASSES)))]
        task = self.partition_task_cost(query_class)
        stage0 = [
            Message(
                query_id=-1,
                target_partition=p.partition_id,
                cost=task,
            )
            for p in partitions
        ]
        merge_partition = int(rng.integers(0, len(partitions)))
        merge_cost = WorkCost(
            instructions=800.0 + 50.0 * len(partitions),
            bytes_accessed=query_class.result_bytes * len(partitions),
        )
        stage1 = [
            Message(query_id=-1, target_partition=merge_partition, cost=merge_cost)
        ]
        coordinator = int(rng.integers(0, partitions.socket_count))
        return Query(
            arrival_s=arrival_s,
            stages=[QueryStage(stage0), QueryStage(stage1)],
            coordinator_socket=coordinator,
        )

    # -- real mode ---------------------------------------------------------------

    def setup_real(
        self, partitions: PartitionMap, scale: int, rng: np.random.Generator
    ) -> None:
        """Load ``scale`` fact rows plus proportional dimensions.

        Dimensions are replicated into every partition (they are small);
        the fact table is hash-partitioned by order key.
        """
        partitions.create_table_everywhere("lineorder", LINEORDER_SCHEMA)
        partitions.create_table_everywhere("date", DATE_SCHEMA)
        partitions.create_table_everywhere("customer", CUSTOMER_SCHEMA)
        partitions.create_table_everywhere("supplier", SUPPLIER_SCHEMA)
        partitions.create_table_everywhere("part", PART_SCHEMA)

        date_keys = [19920101 + d for d in range(64)]
        regions = ("AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDDLE EAST")
        for partition in partitions:
            for key in date_keys:
                partition.table("date").insert(
                    (key, 1992 + (key % 7), key // 100, key % 52)
                )
            for ck in range(1, 32):
                partition.table("customer").insert(
                    (ck, f"city{ck % 10}", f"nation{ck % 5}", regions[ck % 5])
                )
            for sk in range(1, 16):
                partition.table("supplier").insert(
                    (sk, f"city{sk % 10}", f"nation{sk % 5}", regions[sk % 5])
                )
            for pk in range(1, 32):
                partition.table("part").insert(
                    (pk, f"MFGR#{pk % 5}", f"MFGR#{pk % 5}{pk % 40}", f"MFGR#{pk % 5}")
                )

        for orderkey in range(1, scale + 1):
            partition = partitions.partition_for_key(orderkey)
            price = int(rng.integers(100, 10_000))
            discount = int(rng.integers(0, 11))
            partition.table("lineorder").insert(
                (
                    orderkey,
                    int(rng.integers(1, 32)),
                    int(rng.integers(1, 32)),
                    int(rng.integers(1, 16)),
                    date_keys[int(rng.integers(0, len(date_keys)))],
                    int(rng.integers(1, 51)),
                    price,
                    discount,
                    price * (100 - discount) // 100,
                )
            )
        if self.is_indexed:
            for partition in partitions:
                # Date predicates are ranges: the ordered index serves
                # them with two binary searches instead of full scans.
                partition.table("lineorder").create_ordered_index("lo_orderdate")

    def make_real_join_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """A real Q2.1-style query: lineorder ⋈ part with a category filter.

        Stage 0 runs the hash-join-aggregate pipeline in every partition
        (dimensions are replicated, the fact table is partitioned); stage
        1 merges the partial sums at a coordinator partition.
        """
        category = f"MFGR#{int(rng.integers(0, 5))}"
        stage0 = [
            Message(
                query_id=-1,
                target_partition=p.partition_id,
                operation=hash_join_aggregate_op(
                    fact_table="lineorder",
                    fact_key="lo_partkey",
                    dim_table="part",
                    dim_key="p_partkey",
                    dim_filter="p_category",
                    dim_value=category,
                    sum_column="lo_revenue",
                ),
            )
            for p in partitions
        ]
        merge_partition = int(rng.integers(0, len(partitions)))
        stage1 = [
            Message(
                query_id=-1,
                target_partition=merge_partition,
                cost=WorkCost(
                    instructions=800.0 + 50.0 * len(partitions),
                    bytes_accessed=64.0 * len(partitions),
                ),
            )
        ]
        coordinator = int(rng.integers(0, partitions.socket_count))
        return Query(
            arrival_s=arrival_s,
            stages=[QueryStage(stage0), QueryStage(stage1)],
            coordinator_socket=coordinator,
        )

    def make_real_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """A real flight-1-style query: filtered revenue sum, full fan-out."""
        low = 19920101
        high = low + int(rng.integers(8, 32))
        stage0 = [
            Message(
                query_id=-1,
                target_partition=p.partition_id,
                operation=aggregate_op(
                    "lineorder", "lo_orderdate", low, high, "lo_revenue"
                ),
            )
            for p in partitions
        ]
        merge_partition = int(rng.integers(0, len(partitions)))
        stage1 = [
            Message(
                query_id=-1,
                target_partition=merge_partition,
                cost=WorkCost(
                    instructions=800.0 + 50.0 * len(partitions),
                    bytes_accessed=64.0 * len(partitions),
                ),
            )
        ]
        coordinator = int(rng.integers(0, partitions.socket_count))
        return Query(
            arrival_s=arrival_s,
            stages=[QueryStage(stage0), QueryStage(stage1)],
            coordinator_socket=coordinator,
        )
