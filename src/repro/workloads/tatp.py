"""TATP — the Telecom Application Transaction Processing benchmark.

The paper uses TATP [9] as its OLTP workload (Table 1).  We implement the
standard schema (``subscriber``, ``access_info``, ``special_facility``,
``call_forwarding``), hash-partitioned by subscriber id, and the standard
seven-transaction mix:

======================  =====  =======================================
transaction              mix    operations
======================  =====  =======================================
GET_SUBSCRIBER_DATA      35 %   1 point read (subscriber)
GET_NEW_DESTINATION      10 %   2 reads (special_facility ⋈ call_fwd)
GET_ACCESS_DATA          35 %   1 point read (access_info)
UPDATE_SUBSCRIBER_DATA    2 %   2 updates (subscriber, special_fac.)
UPDATE_LOCATION          14 %   1 secondary lookup + 1 update
INSERT_CALL_FORWARDING    2 %   1 read + 1 insert
DELETE_CALL_FORWARDING    2 %   1 delete (modeled as update)
======================  =====  =======================================

Transactions route to the partition owning their subscriber; a share of
them (secondary-key routing, UPDATE_LOCATION by ``sub_nbr``) needs a
second partition, which exercises the inter-socket message path — the
paper notes this cross-partition communication is what pushes TATP
toward more threads at medium frequency, shrinking its savings relative
to the pure key-value workload.
"""

from __future__ import annotations

import numpy as np

from repro.dbms.execution import (
    insert_op,
    lookup_op,
    modeled_lookup_cost,
    modeled_scan_cost,
    update_op,
)
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage
from repro.hardware.perfmodel import WorkloadCharacteristics
from repro.storage.partition import PartitionMap, hash_partition
from repro.storage.schema import DataType, Schema
from repro.workloads.base import Workload, WorkloadVariant

SUBSCRIBER_SCHEMA = Schema.of(
    s_id=DataType.INT64,
    sub_nbr=DataType.INT64,
    bit_1=DataType.INT32,
    hex_1=DataType.INT32,
    byte2_1=DataType.INT32,
    msc_location=DataType.INT64,
    vlr_location=DataType.INT64,
)
ACCESS_INFO_SCHEMA = Schema.of(
    s_id=DataType.INT64,
    ai_type=DataType.INT32,
    data1=DataType.INT32,
    data2=DataType.INT32,
    data3=DataType.STRING,
    data4=DataType.STRING,
)
SPECIAL_FACILITY_SCHEMA = Schema.of(
    s_id=DataType.INT64,
    sf_type=DataType.INT32,
    is_active=DataType.INT32,
    error_cntrl=DataType.INT32,
    data_a=DataType.INT32,
    data_b=DataType.STRING,
)
CALL_FORWARDING_SCHEMA = Schema.of(
    s_id=DataType.INT64,
    sf_type=DataType.INT32,
    start_time=DataType.INT32,
    end_time=DataType.INT32,
    numberx=DataType.INT64,
)

#: (transaction name, probability, reads, writes, cross-partition probability)
TRANSACTION_MIX: tuple[tuple[str, float, int, int, float], ...] = (
    ("GET_SUBSCRIBER_DATA", 0.35, 1, 0, 0.0),
    ("GET_NEW_DESTINATION", 0.10, 2, 0, 0.0),
    ("GET_ACCESS_DATA", 0.35, 1, 0, 0.0),
    ("UPDATE_SUBSCRIBER_DATA", 0.02, 0, 2, 0.0),
    ("UPDATE_LOCATION", 0.14, 1, 1, 1.0),
    ("INSERT_CALL_FORWARDING", 0.02, 1, 1, 0.3),
    ("DELETE_CALL_FORWARDING", 0.02, 0, 1, 0.0),
)

INDEXED_CHARACTERISTICS = WorkloadCharacteristics(
    name="tatp-indexed",
    base_cpi=0.75,
    ht_speedup=1.25,
    bytes_per_instr=0.35,
    miss_rate=0.003,
)

NON_INDEXED_CHARACTERISTICS = WorkloadCharacteristics(
    name="tatp-non-indexed",
    base_cpi=0.70,
    ht_speedup=1.10,
    bytes_per_instr=2.0,
)

#: Subscriber rows per partition used for modeled scan costs.
SUBSCRIBERS_PER_PARTITION = 20_000


class TatpWorkload(Workload):
    """TATP with client-side transaction batching (modeled mode)."""

    def __init__(
        self,
        variant: WorkloadVariant = WorkloadVariant.INDEXED,
        transactions_per_query: int | None = None,
    ):
        super().__init__(variant)
        if transactions_per_query is None:
            transactions_per_query = 20_000 if self.is_indexed else 200
        if transactions_per_query < 1:
            raise ValueError(
                f"transactions_per_query must be >= 1, got {transactions_per_query}"
            )
        self.transactions_per_query = transactions_per_query

    @property
    def name(self) -> str:
        return "tatp"

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        if self.is_indexed:
            return INDEXED_CHARACTERISTICS
        return NON_INDEXED_CHARACTERISTICS

    @property
    def nominal_peak_qps(self) -> float:
        if self.is_indexed:
            return 4700.0 * (20_000 / self.transactions_per_query)
        return 1900.0 * (200 / self.transactions_per_query)

    # -- modeled mode ---------------------------------------------------------

    def _transaction_cost(self, reads: int, writes: int) -> WorkCost:
        """Modeled cost of one transaction's partition-local work."""
        if self.is_indexed:
            read_cost = modeled_lookup_cost(probes=1.4)
            write_cost = WorkCost(instructions=520.0, bytes_accessed=192.0)
        else:
            read_cost = modeled_scan_cost(
                rows=SUBSCRIBERS_PER_PARTITION, row_bytes=8, selectivity=1e-4
            )
            write_cost = read_cost + WorkCost(instructions=180.0, bytes_accessed=64.0)
        total = WorkCost(instructions=0.0)
        for _ in range(reads):
            total = total + read_cost
        for _ in range(writes):
            total = total + write_cost
        return total

    def average_transaction_cost(self) -> WorkCost:
        """Mix-weighted cost of one transaction (used for calibration)."""
        total = WorkCost(instructions=0.0)
        for _, prob, reads, writes, _ in TRANSACTION_MIX:
            cost = self._transaction_cost(reads, writes)
            total = total + WorkCost(
                instructions=cost.instructions * prob,
                bytes_accessed=cost.bytes_accessed * prob,
            )
        return total

    def make_modeled_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """One batch of transactions, fanned over a handful of partitions.

        Cross-partition transactions add a second stage routed to another
        partition (the secondary-key hop), mirroring the message flow of
        UPDATE_LOCATION in the real system.
        """
        avg = self.average_transaction_cost()
        fan_out = min(8, len(partitions))
        per_partition = self.transactions_per_query / fan_out
        targets = [int(p) for p in rng.choice(len(partitions), fan_out, replace=False)]
        stage0 = [
            Message(
                query_id=-1,
                target_partition=pid,
                cost=WorkCost(
                    instructions=avg.instructions * per_partition,
                    bytes_accessed=avg.bytes_accessed * per_partition,
                ),
            )
            for pid in targets
        ]
        # Secondary-key hops: ~15 % of transactions touch a second partition.
        cross_fraction = sum(p * x for _, p, _, _, x in TRANSACTION_MIX)
        hop_cost = self._transaction_cost(reads=1, writes=0)
        hop_partition = int(rng.integers(0, len(partitions)))
        stage1 = [
            Message(
                query_id=-1,
                target_partition=hop_partition,
                cost=WorkCost(
                    instructions=hop_cost.instructions
                    * self.transactions_per_query
                    * cross_fraction,
                    bytes_accessed=hop_cost.bytes_accessed
                    * self.transactions_per_query
                    * cross_fraction,
                ),
            )
        ]
        coordinator = int(rng.integers(0, partitions.socket_count))
        return Query(
            arrival_s=arrival_s,
            stages=[QueryStage(stage0), QueryStage(stage1)],
            coordinator_socket=coordinator,
        )

    # -- real mode ---------------------------------------------------------------

    def setup_real(
        self, partitions: PartitionMap, scale: int, rng: np.random.Generator
    ) -> None:
        """Load ``scale`` subscribers with their dependent rows."""
        partitions.create_table_everywhere("subscriber", SUBSCRIBER_SCHEMA)
        partitions.create_table_everywhere("access_info", ACCESS_INFO_SCHEMA)
        partitions.create_table_everywhere(
            "special_facility", SPECIAL_FACILITY_SCHEMA
        )
        partitions.create_table_everywhere(
            "call_forwarding", CALL_FORWARDING_SCHEMA
        )
        for s_id in range(1, scale + 1):
            partition = partitions.partition_for_key(s_id)
            partition.table("subscriber").insert(
                (
                    s_id,
                    s_id * 7919 % (10**10),
                    int(rng.integers(0, 2)),
                    int(rng.integers(0, 16)),
                    int(rng.integers(0, 256)),
                    int(rng.integers(0, 2**31)),
                    int(rng.integers(0, 2**31)),
                )
            )
            for ai_type in range(1, int(rng.integers(1, 5))):
                partition.table("access_info").insert(
                    (
                        s_id,
                        ai_type,
                        int(rng.integers(0, 256)),
                        int(rng.integers(0, 256)),
                        "data3",
                        "data4",
                    )
                )
            for sf_type in range(1, int(rng.integers(1, 5))):
                partition.table("special_facility").insert(
                    (
                        s_id,
                        sf_type,
                        int(rng.integers(0, 2)),
                        int(rng.integers(0, 256)),
                        int(rng.integers(0, 256)),
                        "data_b",
                    )
                )
                if rng.random() < 0.5:
                    start = int(rng.integers(0, 3)) * 8
                    partition.table("call_forwarding").insert(
                        (s_id, sf_type, start, start + 8, s_id * 13 % (10**10))
                    )
        if self.is_indexed:
            for partition in partitions:
                partition.table("subscriber").create_index("s_id")
                partition.table("access_info").create_index("s_id")
                partition.table("special_facility").create_index("s_id")
                partition.table("call_forwarding").create_index("s_id")

    def make_real_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """One real TATP transaction drawn from the standard mix."""
        scale_hint = max(
            1, sum(p.table("subscriber").row_count for p in partitions)
        )
        s_id = int(rng.integers(1, scale_hint + 1))
        pid = hash_partition(s_id, len(partitions))
        pick = rng.random()
        cumulative = 0.0
        name = TRANSACTION_MIX[0][0]
        for txn_name, prob, _, _, _ in TRANSACTION_MIX:
            cumulative += prob
            if pick < cumulative:
                name = txn_name
                break

        messages: list[Message]
        if name == "GET_SUBSCRIBER_DATA":
            messages = [
                Message(
                    query_id=-1,
                    target_partition=pid,
                    operation=lookup_op("subscriber", "s_id", s_id),
                )
            ]
        elif name == "GET_NEW_DESTINATION":
            messages = [
                Message(
                    query_id=-1,
                    target_partition=pid,
                    operation=lookup_op("special_facility", "s_id", s_id),
                ),
                Message(
                    query_id=-1,
                    target_partition=pid,
                    operation=lookup_op("call_forwarding", "s_id", s_id),
                ),
            ]
        elif name == "GET_ACCESS_DATA":
            messages = [
                Message(
                    query_id=-1,
                    target_partition=pid,
                    operation=lookup_op("access_info", "s_id", s_id),
                )
            ]
        elif name == "UPDATE_SUBSCRIBER_DATA":
            messages = [
                Message(
                    query_id=-1,
                    target_partition=pid,
                    operation=update_op(
                        "subscriber", "s_id", s_id, "bit_1", int(rng.integers(0, 2))
                    ),
                ),
                Message(
                    query_id=-1,
                    target_partition=pid,
                    operation=update_op(
                        "special_facility",
                        "s_id",
                        s_id,
                        "data_a",
                        int(rng.integers(0, 256)),
                    ),
                ),
            ]
        elif name == "UPDATE_LOCATION":
            messages = [
                Message(
                    query_id=-1,
                    target_partition=pid,
                    operation=update_op(
                        "subscriber",
                        "s_id",
                        s_id,
                        "vlr_location",
                        int(rng.integers(0, 2**31)),
                    ),
                )
            ]
        elif name == "INSERT_CALL_FORWARDING":
            start = int(rng.integers(0, 3)) * 8
            messages = [
                Message(
                    query_id=-1,
                    target_partition=pid,
                    operation=insert_op(
                        "call_forwarding",
                        (s_id, 1, start, start + 8, s_id * 13 % (10**10)),
                    ),
                )
            ]
        else:  # DELETE_CALL_FORWARDING — modeled as deactivating update
            messages = [
                Message(
                    query_id=-1,
                    target_partition=pid,
                    operation=update_op(
                        "call_forwarding", "s_id", s_id, "end_time", 0
                    ),
                )
            ]
        coordinator = int(rng.integers(0, partitions.socket_count))
        return Query(
            arrival_s=arrival_s,
            stages=[QueryStage(messages)],
            coordinator_socket=coordinator,
        )
