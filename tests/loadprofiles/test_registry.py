"""Tests for the load-profile name registry."""

import pytest

from repro.errors import SimulationError
from repro.loadprofiles import (
    constant_profile,
    get_profile,
    make_profile,
    register_profile,
    registered_profiles,
    unregister_profile,
)


class TestBuiltins:
    def test_all_builtins_present(self):
        names = registered_profiles()
        for name in ("spike", "twitter", "twitter-day", "constant", "sine"):
            assert name in names

    def test_every_builtin_constructs(self):
        for name in registered_profiles():
            profile = make_profile(name, 30.0, 0.5)
            assert profile.duration_s > 0

    def test_constant_uses_the_level(self):
        profile = make_profile("constant", 10.0, 0.37)
        assert profile.fraction(5.0) == pytest.approx(0.37)

    def test_shapes_stretch_to_the_duration(self):
        profile = make_profile("spike", 42.0, 0.5)
        assert profile.duration_s == pytest.approx(42.0)


class TestRegistration:
    def test_roundtrip(self):
        register_profile(
            "test-flat",
            lambda duration_s, level: constant_profile(
                level, duration_s=duration_s
            ),
            description="for this test",
        )
        try:
            assert "test-flat" in registered_profiles()
            info = get_profile("test-flat")
            assert info.description == "for this test"
            profile = make_profile("test-flat", 5.0, 0.2)
            assert profile.fraction(1.0) == pytest.approx(0.2)
        finally:
            unregister_profile("test-flat")
        assert "test-flat" not in registered_profiles()

    def test_duplicate_rejected(self):
        with pytest.raises(SimulationError):
            register_profile(
                "spike", lambda duration_s, level: None
            )

    def test_empty_name_rejected(self):
        with pytest.raises(SimulationError):
            register_profile("", lambda duration_s, level: None)

    def test_unknown_name_lists_registrations(self):
        with pytest.raises(SimulationError) as err:
            get_profile("square")
        assert "spike" in str(err.value)

    def test_unregister_unknown(self):
        with pytest.raises(SimulationError):
            unregister_profile("square")
