"""Cluster-scale energy control: node drain and whole-node power-off.

The hardware layer (:mod:`repro.hardware.cluster`) describes the fleet —
node presets, boot latency, residual off-state wattage — and the
:class:`~repro.hardware.machine.Machine` executes it as one flat
(node, socket) axis.  This package adds the control side:
:class:`~repro.cluster.controller.ClusterController` runs the full
per-socket ECL on every node and, on top of it, consolidates partitions
across node boundaries so that completely drained nodes can be powered
off entirely — the cluster analog of the single-machine package sleep
that ``ecl-consolidate`` reaches per socket.

Registered as the ``ecl-cluster`` control policy (see
:mod:`repro.sim.policy`).
"""

from repro.cluster.controller import ClusterController
from repro.hardware.cluster import (
    CLUSTER_PRESETS,
    ClusterSpec,
    NodePowerState,
    NodeSpec,
    build_cluster,
    homogeneous_cluster,
    mixed_cluster,
)

__all__ = [
    "CLUSTER_PRESETS",
    "ClusterController",
    "ClusterSpec",
    "NodePowerState",
    "NodeSpec",
    "build_cluster",
    "homogeneous_cluster",
    "mixed_cluster",
]
