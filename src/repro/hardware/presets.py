"""Calibrated parameter presets for the simulated server.

The :class:`HaswellEPParameters` bundle holds every constant of the power
and performance models.  The default values are calibrated so the
simulator reproduces the qualitative measurements of Section 2 of the
paper on the 2-socket Xeon E5-2690 v3 testbed (see DESIGN.md §5):

* core clocks 1.2–2.6 GHz plus a 3.1 GHz turbo step, uncore 1.2–3.0 GHz;
* halting the uncore clock (possible only when all sockets are idle)
  power-gates the LLC and saves up to ~30 W per socket;
* activating the first core of a socket is expensive (it drags the uncore
  out of its halt state), additional cores are cheap, HT siblings almost
  free;
* memory bandwidth is governed by the uncore clock and saturates near its
  peak already at the lowest core P-state;
* idle system power is ~18 % of peak, and the PSU adds ~15 % overhead that
  RAPL cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.errors import HardwareError


def _default_core_pstates() -> tuple[float, ...]:
    """1.2–2.6 GHz in 100 MHz steps plus the 3.1 GHz turbo frequency."""
    steps = [round(1.2 + 0.1 * i, 1) for i in range(15)]  # 1.2 .. 2.6
    steps.append(3.1)
    return tuple(steps)


def _default_uncore_pstates() -> tuple[float, ...]:
    """1.2–3.0 GHz in 100 MHz steps."""
    return tuple(round(1.2 + 0.1 * i, 1) for i in range(19))  # 1.2 .. 3.0


@dataclass(frozen=True)
class HaswellEPParameters:
    """All model constants for one simulated server platform.

    The defaults describe the paper's 2-socket Haswell-EP machine.  Every
    field is a plain number so alternative platforms (or sensitivity
    studies) can be expressed as ``dataclasses.replace`` calls.
    """

    # ---- topology -----------------------------------------------------
    socket_count: int = 2
    cores_per_socket: int = 12
    threads_per_core: int = 2

    # ---- clock domains --------------------------------------------------
    core_pstates_ghz: tuple[float, ...] = field(
        default_factory=_default_core_pstates
    )
    uncore_pstates_ghz: tuple[float, ...] = field(
        default_factory=_default_uncore_pstates
    )
    core_nominal_ghz: float = 2.6
    core_turbo_ghz: float = 3.1
    #: Delay before the energy-efficient turbo engages under the
    #: powersave/balanced EPB (Fig. 7 measures ~1 s).
    eet_delay_s: float = 1.0

    # ---- voltage / core power ------------------------------------------
    #: Supply voltage at the lowest / nominal / turbo core frequency; the
    #: model interpolates linearly in frequency between these points.
    core_volt_min: float = 0.70
    core_volt_nominal: float = 1.00
    core_volt_turbo: float = 1.12
    #: Effective switched capacitance of one physical core, scaled so that
    #: a core at 2.6 GHz / 1.0 V running full-tilt draws ~6.5 W.
    core_cdyn_w_per_ghz_v2: float = 2.5
    #: Static (leakage) power of a powered-on core, per volt of supply.
    core_leak_w_per_v: float = 0.9
    #: Extra dynamic power when the HT sibling is also active (shared
    #: pipeline — Fig. 4 shows HT activation is nearly free).
    ht_sibling_power_factor: float = 0.08
    #: Fraction of a busy core's dynamic power drawn while idling in C1
    #: (clock gated but not power gated).
    c1_residual_factor: float = 0.30

    # ---- uncore / LLC power ---------------------------------------------
    #: Uncore power with the clock halted (deep package sleep, LLC gated).
    uncore_halted_w: float = 4.5
    #: Uncore power at the minimum (1.2 GHz) and maximum (3.0 GHz) uncore
    #: clock.  Fig. 8: 3.0 GHz draws +12 W over 1.2 GHz; Fig. 4/5: waking
    #: the uncore from halt costs up to ~30 W at high uncore clocks.
    uncore_active_min_w: float = 19.0
    uncore_active_max_w: float = 31.0
    #: Additional uncore dynamic power per GB/s of memory traffic served.
    uncore_w_per_gbs: float = 0.08
    #: Socket-1 static offset: the paper measured the second socket drawing
    #: slightly less than the first and could not explain why.  We carry the
    #: asymmetry as a constant subtraction per socket index.
    socket_static_asymmetry_w: float = 1.5

    # ---- package / DRAM power -------------------------------------------
    #: Always-on package power (fabric, IO, PCU) even in the deepest state.
    package_base_w: float = 8.0
    #: DRAM background power per socket (refresh for 128 GB of LRDIMMs).
    dram_static_w: float = 11.0
    #: DRAM dynamic power per GB/s of traffic.
    dram_w_per_gbs: float = 0.45
    #: PSU / fans / board overhead added on top of what RAPL can see
    #: (Fig. 3 measures ~15 % under load) plus a fixed board draw.
    psu_overhead_factor: float = 0.15
    psu_static_w: float = 18.0

    # ---- memory system performance --------------------------------------
    #: Peak memory bandwidth per socket at the maximum uncore clock.
    peak_bandwidth_gbs: float = 56.0
    #: Fraction of peak bandwidth still available at the minimum uncore
    #: clock (bandwidth scales roughly linearly with the uncore in between).
    min_uncore_bandwidth_fraction: float = 0.42
    #: Average DRAM access latency (ns) at max uncore clock; the
    #: uncore-sensitive share grows as the uncore slows down.
    mem_latency_ns: float = 90.0
    #: Portion of the access latency spent in LLC/ring/memory controller,
    #: i.e. the part that stretches when the uncore clock drops.
    mem_latency_uncore_fraction: float = 0.30
    #: Cost (ns) of transferring ownership of a contended cache line
    #: between two cores at max uncore clock.
    cacheline_transfer_ns: float = 60.0
    #: Memory-controller thrashing: when more request streams than
    #: physical cores (i.e. HyperThread siblings of already-streaming
    #: cores) oversubscribe the bandwidth, row-buffer conflicts and
    #: controller-queue interleaving shrink the *effective* bandwidth by
    #: 1/(1 + penalty * excess_stream_fraction * (oversubscription - 1)).
    #: One stream per core at any clock still reaches full bandwidth
    #: (Fig. 6), but the all-threads baseline is *slower* than the ECL's
    #: lean configuration on bandwidth-bound work (section 6.1, Fig. 13).
    bandwidth_contention_penalty: float = 0.35
    #: Floor of the thrashing degradation (worst-case efficiency).
    bandwidth_contention_floor: float = 0.65

    # ---- RAPL counter behaviour ------------------------------------------
    #: RAPL registers update at this period; reads between updates return
    #: the last published value (the paper observed ~1 s lag in Fig. 7
    #: time series and strong noise below 100 ms windows in Fig. 12).
    rapl_update_period_s: float = 0.001
    #: Quantization of the energy counter (energy status unit, ~15.3 µJ on
    #: real Haswell; we keep a coarser value so noise is visible).
    rapl_energy_unit_j: float = 6.1e-5
    #: Standard deviation of multiplicative measurement noise for a 100 ms
    #: window; shorter windows scale the noise up as sqrt(0.1 / window).
    rapl_noise_std_at_100ms: float = 0.010
    #: Extra absolute noise (J) injected right after a configuration switch,
    #: mimicking the stale-register effects the paper saw when switching to
    #: the lowest configuration.
    rapl_switch_noise_j: float = 0.5

    # ---- thermal limits ---------------------------------------------------
    #: Sustained package power limit (PL1/TDP) per socket; turbo operation
    #: above this drains the thermal budget.
    tdp_w: float = 135.0
    #: Seconds a socket can run above TDP before throttling to the nominal
    #: clock (the paper's ~1 s 500 W turbo transient).
    thermal_budget_s: float = 1.0
    #: Budget recovered per second while running below TDP.
    thermal_recovery_rate: float = 0.5

    # ---- knob transition costs -------------------------------------------
    #: Time for a P-state (frequency) change to take effect.
    pstate_transition_s: float = 20e-6
    #: Time for waking a core from a deep C-state.
    cstate_wake_s: float = 40e-6

    @property
    def core_min_ghz(self) -> float:
        """Lowest core P-state."""
        return self.core_pstates_ghz[0]

    @property
    def core_max_ghz(self) -> float:
        """Highest core P-state including turbo."""
        return self.core_pstates_ghz[-1]

    @property
    def uncore_min_ghz(self) -> float:
        """Lowest uncore P-state."""
        return self.uncore_pstates_ghz[0]

    @property
    def uncore_max_ghz(self) -> float:
        """Highest uncore P-state."""
        return self.uncore_pstates_ghz[-1]

    @property
    def threads_per_socket(self) -> int:
        """Hardware threads per socket."""
        return self.cores_per_socket * self.threads_per_core

    @property
    def total_threads(self) -> int:
        """Hardware threads in the machine."""
        return self.socket_count * self.threads_per_socket


def haswell_ep_two_socket() -> HaswellEPParameters:
    """Return the default parameter set for the paper's 2-socket testbed."""
    return HaswellEPParameters()


def _wimpy_core_pstates() -> tuple[float, ...]:
    """0.8–1.6 GHz in 100 MHz steps plus a shallow 1.8 GHz turbo."""
    steps = [round(0.8 + 0.1 * i, 1) for i in range(9)]  # 0.8 .. 1.6
    steps.append(1.8)
    return tuple(steps)


def _wimpy_uncore_pstates() -> tuple[float, ...]:
    """0.8–1.8 GHz in 100 MHz steps."""
    return tuple(round(0.8 + 0.1 * i, 1) for i in range(11))  # 0.8 .. 1.8


def wimpy_node() -> HaswellEPParameters:
    """A low-TDP "wimpy" node in the Schall & Härder sense.

    One small-core socket per node: fewer, slower cores with a shallow
    turbo step, a narrow uncore, modest memory bandwidth, and a small
    fixed power floor.  Its peak efficiency is close to the brawny
    Haswell-EP node, but its *dynamic range* is tiny — which is exactly
    why wimpy clusters only pay off when whole nodes can be powered off
    (PAPERS.md: "Can a Wimpy-Node Cluster Challenge a Brawny Server?").
    """
    return replace(
        HaswellEPParameters(),
        socket_count=1,
        cores_per_socket=4,
        threads_per_core=2,
        core_pstates_ghz=_wimpy_core_pstates(),
        uncore_pstates_ghz=_wimpy_uncore_pstates(),
        core_nominal_ghz=1.6,
        core_turbo_ghz=1.8,
        core_volt_min=0.62,
        core_volt_nominal=0.85,
        core_volt_turbo=0.92,
        core_cdyn_w_per_ghz_v2=1.1,
        core_leak_w_per_v=0.4,
        uncore_halted_w=1.2,
        uncore_active_min_w=4.5,
        uncore_active_max_w=8.0,
        uncore_w_per_gbs=0.05,
        socket_static_asymmetry_w=0.0,
        package_base_w=3.0,
        dram_static_w=4.0,
        dram_w_per_gbs=0.30,
        psu_overhead_factor=0.12,
        psu_static_w=6.0,
        peak_bandwidth_gbs=17.0,
        min_uncore_bandwidth_fraction=0.5,
        mem_latency_ns=110.0,
        cacheline_transfer_ns=80.0,
        tdp_w=20.0,
    )


# --------------------------------------------------------------------------
# Preset registry: the name → parameter-set mapping the cluster layer and
# the CLI resolve hardware through (mirrors the policy/placement
# registries in repro.sim.policy / repro.placement.policy).
# --------------------------------------------------------------------------

_PRESETS: dict[str, Callable[[], HaswellEPParameters]] = {}


def register_preset(
    name: str, factory: Callable[[], HaswellEPParameters]
) -> None:
    """Register a named hardware preset.

    Raises:
        HardwareError: if the name is already taken.
    """
    if name in _PRESETS:
        raise HardwareError(f"hardware preset {name!r} already registered")
    _PRESETS[name] = factory


def get_preset(name: str) -> HaswellEPParameters:
    """Build the parameter set of a registered preset.

    Raises:
        HardwareError: for unknown preset names.
    """
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise HardwareError(
            f"unknown hardware preset {name!r}; "
            f"registered: {', '.join(sorted(_PRESETS))}"
        ) from None
    return factory()


def registered_presets() -> tuple[str, ...]:
    """Registered preset names, in registration order."""
    return tuple(_PRESETS)


register_preset("haswell_ep", haswell_ep_two_socket)
register_preset("wimpy_node", wimpy_node)
