"""The load-profile name registry.

Mirrors :mod:`repro.sim.policy` and :mod:`repro.placement`: profiles
register by name with a factory and a description, out-of-tree profiles
hook in via :func:`register_profile`, and the CLI (``--profile`` /
``--list-profiles``) just renders the table.  Factories take
``(duration_s, level)`` — every built-in stretches its shape onto the
requested duration, and ``level`` parameterizes the flat profile.

The built-in registrations at the bottom are the single source of truth
for profile names: nothing else under ``src/`` spells them out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.loadprofiles.base import LoadProfile
from repro.loadprofiles.spike import spike_profile
from repro.loadprofiles.synthetic import constant_profile, sine_profile
from repro.loadprofiles.twitter import twitter_day_profile, twitter_profile

#: Signature of a registry factory: (duration_s, level) -> profile.
ProfileFactory = Callable[[float, float], LoadProfile]


@dataclass(frozen=True)
class ProfileInfo:
    """One registry entry.

    Attributes:
        name: the public lookup name (CLI ``--profile``, suite scripts).
        factory: builds the profile for a (duration_s, level) pair.
        description: one-liner for ``repro run --list-profiles``.
    """

    name: str
    factory: ProfileFactory
    description: str = ""


_REGISTRY: dict[str, ProfileInfo] = {}


def register_profile(
    name: str, factory: ProfileFactory, description: str = ""
) -> ProfileInfo:
    """Register a load profile under a unique name.

    Raises:
        SimulationError: on empty or duplicate names.
    """
    if not name or not isinstance(name, str):
        raise SimulationError(
            f"profile name must be a non-empty string, got {name!r}"
        )
    if name in _REGISTRY:
        raise SimulationError(f"profile {name!r} is already registered")
    info = ProfileInfo(name=name, factory=factory, description=description)
    _REGISTRY[name] = info
    return info


def unregister_profile(name: str) -> None:
    """Remove a registration (out-of-tree profile development, tests)."""
    if name not in _REGISTRY:
        raise SimulationError(_unknown_message(name))
    del _REGISTRY[name]


def registered_profiles() -> tuple[str, ...]:
    """All registered profile names, in registration order."""
    return tuple(_REGISTRY)


def get_profile(name: str) -> ProfileInfo:
    """Look up a registration by name.

    Raises:
        SimulationError: for unknown names; the message lists every
            registered profile.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(_unknown_message(name)) from None


def make_profile(name: str, duration_s: float, level: float) -> LoadProfile:
    """Resolve a name and build the profile."""
    return get_profile(name).factory(duration_s, level)


def _unknown_message(name: str) -> str:
    known = ", ".join(_REGISTRY) or "<none>"
    return f"unknown profile {name!r}; registered profiles: {known}"


# --------------------------------------------------------------------------
# Built-in registrations.
# --------------------------------------------------------------------------

register_profile(
    "spike",
    lambda duration_s, level: spike_profile(duration_s=duration_s),
    description="idle floor with one short full-load burst (Fig. 13 shape)",
)
register_profile(
    "twitter",
    lambda duration_s, level: twitter_profile(duration_s=duration_s),
    description="one hour of the Twitter trace, compressed (§6.2)",
)
register_profile(
    "twitter-day",
    lambda duration_s, level: twitter_day_profile(duration_s=duration_s),
    description="the full diurnal Twitter day: deep trough, evening peak (§6.2)",
)
register_profile(
    "constant",
    lambda duration_s, level: constant_profile(level, duration_s=duration_s),
    description="flat load at --level of nominal peak throughput",
)
register_profile(
    "sine",
    lambda duration_s, level: sine_profile(duration_s=duration_s),
    description="smooth full-swing oscillation (controller step response)",
)
