"""Ruling zones (paper §4.3).

The socket-level ECL splits the performance spectrum at the most
energy-efficient configuration:

* **under-utilization zone** — performance levels below the optimal
  configuration; the ECL applies race-to-idle between the optimal
  configuration and idle (over-provisioned servers spend most time here);
* **optimal zone** — the most energy-efficient configuration itself;
* **over-utilization zone** — levels above it, applied only when the
  optimal zone cannot satisfy demand within the latency limit; depending
  on the workload this zone can be small or absent (Fig. 10(b)/(c)).
"""

from __future__ import annotations

import enum

from repro.errors import ProfileError
from repro.profiles.configuration import Configuration
from repro.profiles.profile import EnergyProfile


class RulingZone(enum.Enum):
    """Zone of a configuration or performance level."""

    UNDER_UTILIZATION = "under-utilization"
    OPTIMAL = "optimal"
    OVER_UTILIZATION = "over-utilization"


def classify_zones(profile: EnergyProfile) -> dict[Configuration, RulingZone]:
    """Assign each evaluated, non-idle configuration to its ruling zone.

    Raises:
        ProfileError: when the profile has no evaluated configurations.
    """
    optimal = profile.most_efficient()
    optimal_perf = optimal.measurement.performance_score
    zones: dict[Configuration, RulingZone] = {}
    for entry in profile.evaluated_entries():
        if entry.configuration.is_idle:
            continue
        perf = entry.measurement.performance_score
        if entry.configuration == optimal.configuration:
            zones[entry.configuration] = RulingZone.OPTIMAL
        elif perf <= optimal_perf:
            zones[entry.configuration] = RulingZone.UNDER_UTILIZATION
        else:
            zones[entry.configuration] = RulingZone.OVER_UTILIZATION
    return zones


def zone_for_level(profile: EnergyProfile, performance_score: float) -> RulingZone:
    """Zone of a demanded performance level.

    Levels within 2 % of the optimal configuration's performance count as
    the optimal zone (the RTI duty cycle would be ≈ 1 there anyway).

    Raises:
        ProfileError: when the profile has no evaluated configurations or
            the level is negative.
    """
    if performance_score < 0:
        raise ProfileError(f"performance level must be >= 0, got {performance_score}")
    optimal_perf = profile.most_efficient().measurement.performance_score
    if performance_score > optimal_perf:
        return RulingZone.OVER_UTILIZATION
    if performance_score >= 0.98 * optimal_perf:
        return RulingZone.OPTIMAL
    return RulingZone.UNDER_UTILIZATION


def over_utilization_span(profile: EnergyProfile) -> float:
    """Relative width of the over-utilization zone.

    ``(peak performance - optimal performance) / peak performance`` —
    0.0 means the most efficient configuration is also the most
    performing one (the zone is absent, as for the contended workloads of
    Fig. 10(b)).
    """
    peak = profile.peak_performance()
    if peak <= 0:
        raise ProfileError("profile has no positive performance measurements")
    optimal_perf = profile.most_efficient().measurement.performance_score
    return max(0.0, (peak - optimal_perf) / peak)
