"""Analysis utilities: savings, energy proportionality, text reports.

The benchmarks and the CLI use these helpers to turn
:class:`~repro.sim.metrics.RunResult` objects into the numbers the paper
reports: relative energy savings (Table 1), the energy-proportionality
of a power-vs-load curve (the §6.1 discussion of Fig. 13(a)), and
aligned comparison tables.
"""

from repro.analysis.proportionality import (
    power_load_curve,
    proportionality_index,
)
from repro.analysis.report import comparison_table, run_summary
from repro.analysis.savings import SavingsSummary, summarize_savings

__all__ = [
    "power_load_curve",
    "proportionality_index",
    "comparison_table",
    "run_summary",
    "SavingsSummary",
    "summarize_savings",
]
