"""Tests for latency and utilization statistics."""

import pytest

from repro.errors import ControlError
from repro.dbms.stats import LatencyTracker, UtilizationTracker


class TestLatencyTracker:
    def test_average(self):
        tracker = LatencyTracker(window_s=10.0)
        tracker.record(1.0, 0.010)
        tracker.record(2.0, 0.030)
        assert tracker.average_latency_s(3.0) == pytest.approx(0.020)

    def test_empty_average_is_none(self):
        tracker = LatencyTracker()
        assert tracker.average_latency_s(1.0) is None

    def test_window_pruning(self):
        tracker = LatencyTracker(window_s=1.0)
        tracker.record(0.0, 0.5)
        tracker.record(5.0, 0.1)
        assert tracker.average_latency_s(5.5) == pytest.approx(0.1)
        assert tracker.sample_count() == 1

    def test_negative_latency_rejected(self):
        tracker = LatencyTracker()
        with pytest.raises(ControlError):
            tracker.record(0.0, -1.0)

    def test_trend_positive_when_growing(self):
        tracker = LatencyTracker(window_s=10.0)
        for i in range(10):
            tracker.record(float(i), 0.01 * (i + 1))
        assert tracker.trend_s_per_s(9.0) == pytest.approx(0.01, rel=0.01)

    def test_trend_zero_with_flat_latency(self):
        tracker = LatencyTracker(window_s=10.0)
        for i in range(10):
            tracker.record(float(i), 0.02)
        assert tracker.trend_s_per_s(9.0) == pytest.approx(0.0, abs=1e-12)

    def test_trend_needs_two_samples(self):
        tracker = LatencyTracker()
        tracker.record(0.0, 0.01)
        assert tracker.trend_s_per_s(0.5) == 0.0

    def test_time_to_violation_estimates(self):
        tracker = LatencyTracker(window_s=100.0)
        for i in range(10):
            tracker.record(float(i), 0.01 + 0.005 * i)
        ttv = tracker.time_to_violation_s(0.1, 9.0)
        assert 0.0 < ttv < 15.0

    def test_time_to_violation_violated(self):
        tracker = LatencyTracker()
        tracker.record(0.0, 0.5)
        assert tracker.time_to_violation_s(0.1, 0.1) == 0.0

    def test_time_to_violation_relaxed(self):
        tracker = LatencyTracker()
        for i in range(5):
            tracker.record(float(i), 0.01)
        assert tracker.time_to_violation_s(0.1, 5.0) == float("inf")

    def test_invalid_limit(self):
        tracker = LatencyTracker()
        with pytest.raises(ControlError):
            tracker.time_to_violation_s(0.0, 1.0)

    def test_max_latency(self):
        tracker = LatencyTracker()
        tracker.record(0.0, 0.2)
        tracker.record(1.0, 0.05)
        assert tracker.max_latency_s == pytest.approx(0.2)


class TestUtilizationTracker:
    @pytest.fixture
    def tracker(self):
        return UtilizationTracker((0, 1), window_s=1.0)

    def test_basic_ratio(self, tracker):
        tracker.record_tick(0, 0.5, offered_instructions=100, consumed_instructions=40)
        assert tracker.utilization(0, 0.5) == pytest.approx(0.4)

    def test_saturated_is_one(self, tracker):
        tracker.record_tick(0, 0.5, 100, 100)
        assert tracker.utilization(0, 0.5) == 1.0

    def test_backlog_raises_utilization(self, tracker):
        tracker.record_tick(0, 0.5, 100, 40, pending_instructions=60)
        assert tracker.utilization(0, 0.5) == 1.0

    def test_parked_with_backlog_is_full(self, tracker):
        tracker.record_tick(0, 0.5, 0, 0, pending_instructions=10)
        assert tracker.utilization(0, 0.5) == 1.0

    def test_parked_without_backlog_is_zero(self, tracker):
        tracker.record_tick(0, 0.5, 0, 0, pending_instructions=0)
        assert tracker.utilization(0, 0.5) == 0.0

    def test_busy_fraction_ignores_backlog(self, tracker):
        tracker.record_tick(0, 0.5, 100, 40, pending_instructions=1000)
        assert tracker.busy_fraction(0, 0.5) == pytest.approx(0.4)

    def test_window_prunes(self, tracker):
        tracker.record_tick(0, 0.0, 100, 100)
        tracker.record_tick(0, 2.0, 100, 10)
        assert tracker.utilization(0, 2.0) == pytest.approx(0.1)

    def test_unknown_socket(self, tracker):
        with pytest.raises(ControlError):
            tracker.utilization(9, 0.0)
        with pytest.raises(ControlError):
            tracker.record_tick(9, 0.0, 1, 1)

    def test_negative_rejected(self, tracker):
        with pytest.raises(ControlError):
            tracker.record_tick(0, 0.0, -1, 0)
        with pytest.raises(ControlError):
            tracker.record_tick(0, 0.0, 1, 0, pending_instructions=-5)
