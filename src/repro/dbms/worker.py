"""Worker threads: acquire partition → drain batch → release.

Workers are the execution units of the data-oriented runtime.  Each is
pinned to one hardware thread; the elasticity layer parks and unparks
them as the ECL grows or shrinks the active-thread set.  A worker's
processing loop implements the ownership protocol of
:class:`~repro.dbms.intra_socket.IntraSocketHub`:

1. acquire an unowned partition with pending messages,
2. dequeue a batch and execute its messages (charging instruction budget),
3. release the partition and look for the next one.

Processing happens in simulated time: the engine hands every worker an
instruction budget per tick (the hardware model's executed instructions),
and the worker consumes messages until the budget runs dry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MessagingError
from repro.dbms.intra_socket import DEFAULT_BATCH_SIZE, IntraSocketHub
from repro.dbms.messages import Message, MessageKind
from repro.storage.partition import PartitionMap


class WorkerState(enum.Enum):
    """Lifecycle state of a worker thread."""

    ACTIVE = "active"  #: unparked, polling for work
    PARKED = "parked"  #: hardware thread in a C-state


@dataclass
class WorkerStats:
    """Cumulative execution statistics of one worker."""

    messages_processed: int = 0
    instructions_consumed: float = 0.0
    bytes_accessed: float = 0.0
    acquisitions: int = 0


@dataclass
class Worker:
    """One worker thread pinned to a hardware thread."""

    worker_id: int
    socket_id: int
    hw_thread_id: int
    state: WorkerState = WorkerState.ACTIVE
    batch_size: int = DEFAULT_BATCH_SIZE
    stats: WorkerStats = field(default_factory=WorkerStats)

    @property
    def is_active(self) -> bool:
        """Whether the worker may process messages."""
        return self.state is WorkerState.ACTIVE

    def process_quantum(
        self,
        hub: IntraSocketHub,
        partitions: PartitionMap,
        budget_instructions: float,
    ) -> tuple[float, list[Message]]:
        """Process messages until the instruction budget is exhausted.

        Returns ``(instructions_consumed, completed_messages)``.  Modeled
        messages are charged their pre-computed cost and only consumed if
        it fits the remaining budget; real operations execute first and
        may overdraw the budget by one message (their cost is only known
        afterwards), mirroring how a real worker cannot preempt an
        operator mid-flight.

        Raises:
            MessagingError: if called on a parked worker.
        """
        if not self.is_active:
            raise MessagingError(f"worker {self.worker_id} is parked")
        remaining = budget_instructions
        completed: list[Message] = []
        out_of_budget = False

        while remaining > 0 and not out_of_budget:
            partition_id = hub.acquire_partition(self.worker_id)
            if partition_id is None:
                break
            self.stats.acquisitions += 1
            try:
                # Messages are pulled one at a time: dequeuing a large
                # batch up front would only push the unprocessed tail back
                # (the budget decides how far we get, not the batch size),
                # and that round trip dominated the tick cost on deep
                # queues.  The processing decisions are identical.
                while remaining > 0:
                    batch = hub.dequeue_batch(self.worker_id, partition_id, 1)
                    if not batch:
                        break
                    message = batch[0]
                    if message.is_modeled:
                        cost = message.charged_cost()
                        if cost.instructions > remaining and completed:
                            # Budget exhausted: push the message back.
                            hub.requeue_front(self.worker_id, batch)
                            out_of_budget = True
                            break
                        self._charge(cost.instructions, cost.bytes_accessed)
                        remaining -= cost.instructions
                    else:
                        cost = self._execute_real(message, partitions)
                        self._charge(cost.instructions, cost.bytes_accessed)
                        remaining -= cost.instructions
                    completed.append(message)
                    self.stats.messages_processed += 1
            finally:
                hub.release_partition(self.worker_id, partition_id)

        return budget_instructions - remaining, completed

    def _execute_real(self, message: Message, partitions: PartitionMap):
        """Run a real operation against its target partition."""
        if message.kind is not MessageKind.WORK or message.operation is None:
            # RESULT messages carry a fixed handling cost.
            return message.charged_cost()
        partition = partitions.partition(message.target_partition)
        result, cost = message.operation(partition)
        message.result = result
        return cost

    def _charge(self, instructions: float, bytes_accessed: float) -> None:
        self.stats.instructions_consumed += instructions
        self.stats.bytes_accessed += bytes_accessed
