"""Tests for the ordered index, incl. model-based property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.orderedindex import OrderedIndex
from repro.storage.schema import DataType, Schema
from repro.storage.table import Table


class TestBasics:
    def test_insert_lookup(self):
        idx = OrderedIndex()
        idx.insert(10, 0)
        idx.insert(20, 1)
        assert idx.lookup(10) == [0]
        assert idx.lookup(15) == []

    def test_range_includes_bounds(self):
        idx = OrderedIndex()
        for i, key in enumerate((5, 10, 15, 20)):
            idx.insert(key, i)
        assert sorted(idx.range_rows(10, 15)) == [1, 2]
        assert sorted(idx.range_rows(0, 100)) == [0, 1, 2, 3]

    def test_empty_range_rejected(self):
        idx = OrderedIndex()
        with pytest.raises(StorageError):
            idx.range_rows(5, 4)

    def test_negative_row_rejected(self):
        idx = OrderedIndex()
        with pytest.raises(StorageError):
            idx.insert(1, -1)

    def test_duplicates(self):
        idx = OrderedIndex()
        idx.insert(7, 0)
        idx.insert(7, 1)
        assert sorted(idx.lookup(7)) == [0, 1]

    def test_delta_merges_automatically(self):
        idx = OrderedIndex()
        for i in range(600):
            idx.insert(i, i)
        assert idx.merge_count >= 2
        assert idx.delta_size < 256
        assert len(idx) == 600

    def test_queries_see_unmerged_delta(self):
        idx = OrderedIndex()
        idx.insert(42, 3)  # stays in the delta buffer
        assert idx.delta_size == 1
        assert idx.lookup(42) == [3]

    def test_compact(self):
        idx = OrderedIndex()
        idx.insert(1, 0)
        idx.compact()
        assert idx.delta_size == 0
        assert idx.sorted_size == 1

    def test_min_max(self):
        idx = OrderedIndex()
        assert idx.min_key() is None and idx.max_key() is None
        idx.insert(5, 0)
        idx.compact()
        idx.insert(-3, 1)  # in delta
        assert idx.min_key() == -3
        assert idx.max_key() == 5

    def test_comparison_accounting(self):
        idx = OrderedIndex()
        for i in range(300):
            idx.insert(i, i)
        before = idx.comparison_count
        idx.range_rows(50, 60)
        assert idx.comparison_count > before


class TestTableIntegration:
    @pytest.fixture
    def table(self):
        t = Table("t", Schema.of(k=DataType.INT32, v=DataType.INT32))
        for i in range(200):
            t.insert((i % 37, i))
        return t

    def test_scan_range_uses_ordered_index(self, table):
        reference = sorted(table.scan_range("k", 5, 8).tolist())
        table.create_ordered_index("k")
        indexed = sorted(table.scan_range("k", 5, 8).tolist())
        assert indexed == reference
        assert table.ordered_index("k") is not None

    def test_index_maintained_on_insert(self, table):
        table.create_ordered_index("k")
        position = table.insert((999, 1))
        assert table.scan_range("k", 999, 999).tolist() == [position]

    def test_index_rebuilt_on_update(self, table):
        table.create_ordered_index("k")
        table.update(0, "k", 500)
        assert 0 in table.scan_range("k", 500, 500).tolist()
        assert 0 not in table.scan_range("k", 0, 0).tolist()

    def test_string_column_rejected(self):
        t = Table("s", Schema.of(name=DataType.STRING))
        with pytest.raises(StorageError):
            t.create_ordered_index("name")

    def test_create_twice_returns_same(self, table):
        a = table.create_ordered_index("k")
        b = table.create_ordered_index("k")
        assert a is b


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.integers(min_value=-1000, max_value=1000),
            st.integers(min_value=0, max_value=5000),
        ),
        max_size=400,
    ),
    bounds=st.tuples(
        st.integers(min_value=-1100, max_value=1100),
        st.integers(min_value=-1100, max_value=1100),
    ),
)
def test_property_range_matches_bruteforce(entries, bounds):
    low, high = min(bounds), max(bounds)
    idx = OrderedIndex()
    for key, row in entries:
        idx.insert(key, row)
    expected = sorted(row for key, row in entries if low <= key <= high)
    assert sorted(idx.range_rows(low, high)) == expected
    assert len(idx) == len(entries)
