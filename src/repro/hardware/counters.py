"""Instructions-retired performance counters.

The paper uses "instructions retired by all of the active hardware
threads on the socket" as the workload-agnostic performance score of a
configuration (§4.1).  Hardware instruction counters are exact, so unlike
:mod:`repro.hardware.rapl` no noise model is needed — only windowed reads.

Storage is struct-of-arrays: an :class:`InstructionCounterBank` holds the
totals of every socket in one numpy buffer so the machine can retire a
whole fleet tick with a single vectorized add, while each
:class:`InstructionCounter` is a scalar *view* onto one bank slot with
the historical per-counter API.  Scalar and vectorized accumulation are
bit-identical: an elementwise float64 ``+=`` performs the exact IEEE
operation of the per-counter Python ``+=``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareError


@dataclass(frozen=True)
class CounterReading:
    """One read of an instructions-retired counter."""

    instructions: float
    timestamp_s: float


class InstructionCounterBank:
    """Struct-of-arrays store for the instruction counters of N sockets."""

    def __init__(self, count: int) -> None:
        if count < 1:
            raise HardwareError(f"bank needs >= 1 counter, got {count}")
        #: Instructions retired per socket since construction.
        self.totals = np.zeros(count, dtype=np.float64)
        #: Timestamp of the last accumulation per socket.
        self.now_s = np.zeros(count, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.totals)

    def view(self, index: int) -> "InstructionCounter":
        """A scalar counter bound to one slot of this bank."""
        return InstructionCounter(_bank=self, _index=index)

    def accumulate_all(self, instructions: np.ndarray, now_s: float) -> None:
        """Retire ``instructions[i]`` on every counter ``i`` at ``now_s``.

        One vectorized pass over the socket axis; element ``i`` performs
        exactly the float64 ``+=`` of ``view(i).accumulate(...)``.  The
        caller (the machine's step loop) guarantees non-negative counts —
        they come straight from resolved step results — so unlike the
        scalar path no validation reduce runs here.
        """
        self.totals += instructions
        self.now_s[:] = now_s

    def accumulate_span_all(
        self, instructions: np.ndarray, times: np.ndarray
    ) -> None:
        """Replay ``accumulate_all(instructions, t)`` for every ``t`` in ``times``.

        ``np.add.accumulate`` along the tick axis of an ``(n+1, sockets)``
        matrix is a strict top-to-bottom fold per column, so every
        counter's total is bit-identical to the per-tick loop while the
        whole fleet folds in one C call.  Caller guarantees non-negative
        counts (see :meth:`accumulate_all`).
        """
        n = len(times)
        if n == 0:
            return
        grid = np.empty((n + 1, len(self.totals)), dtype=np.float64)
        grid[0] = self.totals
        grid[1:] = instructions
        fold = np.add.accumulate(grid, axis=0)
        self.totals = fold[-1].copy()
        self.now_s[:] = times[-1]


class InstructionCounter:
    """Accumulates instructions retired on one socket.

    A view over one :class:`InstructionCounterBank` slot; standalone
    construction makes a private single-slot bank.
    """

    def __init__(
        self,
        _bank: InstructionCounterBank | None = None,
        _index: int = 0,
    ) -> None:
        self._bank = _bank if _bank is not None else InstructionCounterBank(1)
        self._index = _index

    @property
    def total_instructions(self) -> float:
        """Instructions retired since machine construction."""
        return float(self._bank.totals[self._index])

    @property
    def _now_s(self) -> float:
        return float(self._bank.now_s[self._index])

    def accumulate(self, instructions: float, now_s: float) -> None:
        """Add retired instructions up to time ``now_s``."""
        if instructions < 0:
            raise HardwareError(f"negative instruction count {instructions}")
        self._bank.totals[self._index] += instructions
        self._bank.now_s[self._index] = now_s

    def accumulate_span(self, instructions: float, times: np.ndarray) -> None:
        """Replay ``accumulate(instructions, t)`` for every ``t`` in ``times``.

        ``np.add.accumulate`` is a strict left-to-right fold over IEEE
        doubles, so the final total is bit-identical to the per-call
        path while the loop runs in C.
        """
        if instructions < 0:
            raise HardwareError(f"negative instruction count {instructions}")
        n = len(times)
        if n == 0:
            return
        fold = np.add.accumulate(
            np.concatenate(([self.total_instructions], np.full(n, instructions)))
        )
        self._bank.totals[self._index] = float(fold[-1])
        self._bank.now_s[self._index] = float(times[-1])

    def read(self) -> CounterReading:
        """Read the counter."""
        return CounterReading(
            instructions=self.total_instructions, timestamp_s=self._now_s
        )

    @staticmethod
    def window_rate(start: CounterReading, end: CounterReading) -> float:
        """Average instructions/second between two reads.

        Raises:
            HardwareError: if the readings are not strictly ordered in time.
        """
        dt = end.timestamp_s - start.timestamp_s
        if dt <= 0:
            raise HardwareError(
                f"readings not ordered: {start.timestamp_s} -> {end.timestamp_s}"
            )
        return max(0.0, end.instructions - start.instructions) / dt
