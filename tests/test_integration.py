"""Cross-module integration tests: full-stack behaviours."""

from repro.loadprofiles import constant_profile, step_profile
from repro.sim import RunConfiguration, SimulationRunner, run_experiment
from repro.workloads import KeyValueWorkload, TatpWorkload, WorkloadVariant


class TestColdStart:
    """Bootstrapping the profiles from runtime measurements only."""

    def test_multiplexed_bootstrap_builds_coverage(self):
        workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
        runner = SimulationRunner(
            RunConfiguration(
                workload=workload,
                profile=constant_profile(0.5, duration_s=30.0),
                policy="ecl",
                warm_start=False,
            )
        )
        result = runner.run()
        # The sweep measured a meaningful share of the configuration
        # space from live counters alone.
        coverage = runner.policy.profiles[0].coverage()
        assert coverage > 0.15
        mux_updates = sum(
            s.maintainer.multiplexed_updates
            for s in runner.policy.sockets.values()
        )
        assert mux_updates > 10
        # The system kept serving queries while sweeping.
        assert result.queries_completed > 0.9 * result.queries_submitted

    def test_cold_start_converges_below_baseline_power(self):
        workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
        profile = constant_profile(0.4, duration_s=30.0)
        cold = run_experiment(
            RunConfiguration(
                workload=workload, profile=profile, policy="ecl",
                warm_start=False,
            )
        )
        base = run_experiment(
            RunConfiguration(workload=workload, profile=profile, policy="baseline")
        )
        # Once the sweep has data, the controlled system undercuts the
        # baseline's power in the steady tail of the run.
        tail_cold = [s.rapl_power_w for s in cold.samples if s.time_s > 20]
        tail_base = [s.rapl_power_w for s in base.samples if s.time_s > 20]
        assert sum(tail_cold) / len(tail_cold) < 0.9 * sum(tail_base) / len(
            tail_base
        )


class TestCrossSocketIdleSync:
    """Fig. 5's rule end-to-end: deep sleep only with both sockets idle."""

    def test_synchronized_idle_reaches_package_sleep(self):
        workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
        # Load, then silence: the tail must reach the deep-idle power.
        profile = step_profile([(5.0, 0.4), (6.0, 0.0)])
        result = run_experiment(
            RunConfiguration(workload=workload, profile=profile, policy="ecl")
        )
        tail = min(s.rapl_power_w for s in result.samples if s.time_s > 9.0)
        # Deep machine idle is ~35 W; un-synchronized idling with an awake
        # uncore would sit above ~55 W.
        assert tail < 50.0


class TestMultiWorkloadEngine:
    """Different characteristics per socket flow through the stack."""

    def test_per_socket_characteristics(self):
        from repro.dbms.engine import DatabaseEngine
        from repro.hardware.machine import Machine
        from repro.workloads.kv import (
            INDEXED_CHARACTERISTICS,
            NON_INDEXED_CHARACTERISTICS,
        )

        machine = Machine(seed=3)
        engine = DatabaseEngine(machine)
        engine.set_workload_characteristics(INDEXED_CHARACTERISTICS, socket_id=0)
        engine.set_workload_characteristics(
            NON_INDEXED_CHARACTERISTICS, socket_id=1
        )
        engine.tick(0.002)
        assert machine.socket_load(0).characteristics.name == "kv-indexed"
        assert machine.socket_load(1).characteristics.name == "kv-non-indexed"


class TestRealWorkloadUnderEcl:
    """Real (non-modeled) transactions keep flowing under ECL control."""

    def test_real_tatp_with_ecl(self, rng):
        from repro.dbms.engine import DatabaseEngine
        from repro.ecl.controller import EnergyControlLoop
        from repro.hardware.machine import Machine

        machine = Machine(seed=4)
        engine = DatabaseEngine(machine)
        workload = TatpWorkload(WorkloadVariant.INDEXED)
        engine.set_workload_characteristics(workload.characteristics)
        workload.setup_real(engine.partitions, scale=200, rng=rng)
        ecl = EnergyControlLoop(engine)
        ecl.warm_start_from_model(chars=workload.characteristics)

        completed = 0
        tick = 0.002
        accumulated = 0.0
        while machine.time_s < 4.0:
            now = machine.time_s
            accumulated += 200.0 * tick  # 200 txn/s
            while accumulated >= 1.0:
                accumulated -= 1.0
                engine.submit(
                    workload.make_real_query(rng, now, engine.partitions)
                )
            ecl.on_tick(now, tick)
            completed += len(engine.tick(tick).completions)
        assert completed > 700  # ~800 issued minus in-flight tail
        # Updates really landed in the storage layer.
        stats = engine.pool.total_stats()
        assert stats["messages_processed"] >= completed
