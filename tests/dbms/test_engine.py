"""Integration tests for the DatabaseEngine facade."""

import pytest

from repro.errors import SimulationError
from repro.dbms.engine import DatabaseEngine
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage
from repro.hardware.machine import Machine
from repro.workloads.micro import COMPUTE_BOUND


def modeled_query(arrival, partitions, instructions=50_000):
    stage = QueryStage(
        [
            Message(query_id=-1, target_partition=p, cost=WorkCost(instructions))
            for p in partitions
        ]
    )
    return Query(arrival_s=arrival, stages=[stage], coordinator_socket=0)


@pytest.fixture
def loaded_engine(engine: DatabaseEngine):
    engine.set_workload_characteristics(COMPUTE_BOUND)
    return engine


class TestSetup:
    def test_default_partition_count_matches_threads(self, engine):
        assert len(engine.partitions) == engine.machine.params.total_threads

    def test_partitions_split_across_sockets(self, engine):
        assert set(engine.hubs) == {0, 1}
        assert len(engine.hubs[0].partition_ids) == 24

    def test_custom_partition_count(self, machine):
        engine = DatabaseEngine(machine, partition_count=8)
        assert len(engine.partitions) == 8

    def test_too_few_partitions_rejected(self, machine):
        # The engine's coverage check fires before PartitionMap is even
        # built, with a cluster-aware SimulationError message.
        with pytest.raises(SimulationError, match="must cover"):
            DatabaseEngine(machine, partition_count=1)


class TestTick:
    def test_simple_query_completes(self, loaded_engine):
        q = modeled_query(0.0, [0, 1])
        loaded_engine.submit(q)
        result = loaded_engine.tick(0.001)
        assert len(result.completions) == 1
        assert result.completions[0].latency_s <= 0.0011

    def test_remote_messages_cross_the_router(self, loaded_engine):
        # Partition 1 lives on socket 1, coordinator is socket 0: the
        # message is buffered at submit time and delivered by the next
        # communication-thread flush (the start of the following tick).
        q = modeled_query(0.0, [1])
        loaded_engine.submit(q)
        assert loaded_engine.router.total_buffered == 1
        first = loaded_engine.tick(0.001)
        assert len(first.completions) == 1
        # Both sides paid communication-thread instructions.
        assert first.consumed_by_socket[1] > 50_000

    def test_two_stage_query(self, loaded_engine):
        stage0 = QueryStage(
            [Message(query_id=-1, target_partition=0, cost=WorkCost(1000))]
        )
        stage1 = QueryStage(
            [Message(query_id=-1, target_partition=2, cost=WorkCost(1000))]
        )
        q = Query(arrival_s=0.0, stages=[stage0, stage1], coordinator_socket=0)
        loaded_engine.submit(q)
        done = []
        for _ in range(4):
            done.extend(loaded_engine.tick(0.001).completions)
        assert len(done) == 1

    def test_latency_recorded(self, loaded_engine):
        loaded_engine.submit(modeled_query(0.0, [0]))
        loaded_engine.tick(0.001)
        assert loaded_engine.latency.total_completed == 1

    def test_utilization_saturates_under_heavy_load(self, loaded_engine):
        for i in range(50):
            loaded_engine.submit(modeled_query(0.0, [0, 2, 4], instructions=5e8))
        loaded_engine.tick(0.01)
        assert loaded_engine.utilization.utilization(0, 0.01) == pytest.approx(
            1.0
        )

    def test_idle_socket_reports_zero(self, loaded_engine):
        loaded_engine.tick(0.01)
        assert loaded_engine.utilization.utilization(1, 0.01) == 0.0

    def test_invalid_tick_rejected(self, loaded_engine):
        with pytest.raises(SimulationError):
            loaded_engine.tick(0.0)

    def test_overhead_consumes_budget(self, loaded_engine):
        loaded_engine.add_overhead_instructions(0, 1e7)
        loaded_engine.submit(modeled_query(0.0, [0]))
        result = loaded_engine.tick(0.001)
        assert result.consumed_by_socket[0] >= 1e7

    def test_overhead_validation(self, loaded_engine):
        with pytest.raises(SimulationError):
            loaded_engine.add_overhead_instructions(9, 1.0)
        with pytest.raises(SimulationError):
            loaded_engine.add_overhead_instructions(0, -1.0)

    def test_parked_socket_does_not_process(self, loaded_engine):
        machine: Machine = loaded_engine.machine
        machine.apply_socket_threads(0, set())
        loaded_engine.submit(modeled_query(0.0, [0]))
        result = loaded_engine.tick(0.001)
        assert not result.completions
        assert loaded_engine.hubs[0].pending_messages == 1

    def test_throughput_conservation(self, loaded_engine):
        """Everything submitted eventually completes once; nothing twice."""
        total = 40
        for i in range(total):
            loaded_engine.submit(modeled_query(0.0, [i % 48], instructions=10_000))
        done = 0
        for _ in range(20):
            done += len(loaded_engine.tick(0.001).completions)
        assert done == total
        assert loaded_engine.pending_messages() == 0
        assert loaded_engine.tracker.in_flight == 0
