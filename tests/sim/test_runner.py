"""Integration tests for the end-to-end simulation runner."""

import pytest

from repro.errors import SimulationError
from repro.loadprofiles import constant_profile, step_profile
from repro.sim import RunConfiguration, SimulationRunner, run_experiment
from repro.sim.metrics import energy_saving_fraction
from repro.workloads import KeyValueWorkload, WorkloadVariant


def kv(variant=WorkloadVariant.NON_INDEXED):
    return KeyValueWorkload(variant)


class TestConfiguration:
    def test_policy_validation(self):
        with pytest.raises(SimulationError):
            RunConfiguration(
                workload=kv(), profile=constant_profile(0.5), policy="magic"
            )

    def test_tick_validation(self):
        with pytest.raises(SimulationError):
            RunConfiguration(
                workload=kv(), profile=constant_profile(0.5), tick_s=0.0
            )

    def test_switch_needs_both_fields(self):
        with pytest.raises(SimulationError):
            RunConfiguration(
                workload=kv(), profile=constant_profile(0.5), switch_at_s=1.0
            )


class TestShortRuns:
    """Cheap end-to-end runs covering the §6 experiment machinery."""

    def test_ecl_run_completes_queries(self):
        result = run_experiment(
            RunConfiguration(
                workload=kv(), profile=constant_profile(0.3, duration_s=6.0)
            )
        )
        assert result.queries_completed > 0
        assert result.queries_completed >= 0.95 * result.queries_submitted
        assert result.total_energy_j > 0
        assert result.samples

    def test_baseline_run(self):
        result = run_experiment(
            RunConfiguration(
                workload=kv(),
                profile=constant_profile(0.3, duration_s=6.0),
                policy="baseline",
            )
        )
        assert result.policy == "baseline"
        assert result.queries_completed == result.queries_submitted

    def test_ecl_saves_energy(self):
        profile = constant_profile(0.3, duration_s=8.0)
        ecl = run_experiment(RunConfiguration(workload=kv(), profile=profile))
        base = run_experiment(
            RunConfiguration(workload=kv(), profile=profile, policy="baseline")
        )
        saving = energy_saving_fraction(base, ecl)
        assert saving > 0.15  # Table 1: non-indexed KV saves the most

    def test_ecl_meets_latency_at_partial_load(self):
        result = run_experiment(
            RunConfiguration(
                workload=kv(), profile=constant_profile(0.4, duration_s=8.0)
            )
        )
        assert result.violation_fraction() < 0.05
        assert result.mean_latency_s() < 0.05

    def test_load_steps_change_power(self):
        profile = step_profile([(5.0, 0.1), (5.0, 0.8)])
        result = run_experiment(RunConfiguration(workload=kv(), profile=profile))
        low = [s.rapl_power_w for s in result.samples if 2.0 < s.time_s < 4.5]
        high = [s.rapl_power_w for s in result.samples if 7.0 < s.time_s < 9.5]
        assert sum(high) / len(high) > sum(low) / len(low) + 20

    def test_workload_switch_changes_characteristics(self):
        runner = SimulationRunner(
            RunConfiguration(
                workload=kv(WorkloadVariant.INDEXED),
                profile=constant_profile(0.3, duration_s=4.0),
                switch_at_s=2.0,
                switch_workload=kv(WorkloadVariant.NON_INDEXED),
            )
        )
        runner.run()
        chars = runner.engine.workload_characteristics(0)
        assert chars.name == "kv-non-indexed"

    def test_seeded_runs_reproducible(self):
        profile = constant_profile(0.3, duration_s=4.0)
        results = [
            run_experiment(
                RunConfiguration(workload=kv(), profile=profile, seed=3)
            )
            for _ in range(2)
        ]
        assert results[0].total_energy_j == pytest.approx(
            results[1].total_energy_j
        )
        assert results[0].queries_completed == results[1].queries_completed

    def test_explicit_duration_override(self):
        result = run_experiment(
            RunConfiguration(
                workload=kv(), profile=constant_profile(0.2, duration_s=60.0)
            ),
            duration_s=3.0,
        )
        assert result.duration_s == pytest.approx(3.0)
        assert result.samples[-1].time_s < 3.0


class TestBaselinePolicyDetails:
    def test_baseline_parks_after_long_idle(self):
        result = run_experiment(
            RunConfiguration(
                workload=kv(),
                profile=step_profile([(3.0, 0.3), (4.0, 0.0)]),
                policy="baseline",
            )
        )
        # The tail samples should show near-idle power (threads parked).
        tail = [s.rapl_power_w for s in result.samples if s.time_s > 5.5]
        busy = [s.rapl_power_w for s in result.samples if 1.0 < s.time_s < 2.5]
        assert min(tail) < 0.35 * (sum(busy) / len(busy))


class TestRealizedDuration:
    """The run result accounts for the duration actually simulated."""

    def test_non_divisible_ratio_records_realized_duration(self):
        # 1.0 s requested at 0.3 s ticks -> 3 ticks = 0.9 s simulated;
        # energy accrues over 0.9 s, so the power denominator must be
        # 0.9 s, not the requested 1.0 s (a silent ~11% power error).
        result = run_experiment(
            RunConfiguration(
                workload=kv(),
                profile=constant_profile(0.3, duration_s=1.0),
                policy="baseline",
                tick_s=0.3,
            )
        )
        assert result.requested_duration_s == pytest.approx(1.0)
        assert result.duration_s == pytest.approx(0.9)
        assert result.total_energy_j > 0
        assert result.average_power_w() == pytest.approx(
            result.total_energy_j / result.duration_s
        )

    def test_divisible_ratio_realizes_the_request(self):
        result = run_experiment(
            RunConfiguration(
                workload=kv(),
                profile=constant_profile(0.3, duration_s=1.0),
                policy="baseline",
            )
        )
        assert result.duration_s == pytest.approx(1.0)
        assert result.requested_duration_s == pytest.approx(1.0)
