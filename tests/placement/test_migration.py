"""Tests for the partition-migration protocol (quiesce, transfer, resume)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlacementError
from repro.dbms.engine import DatabaseEngine
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage
from repro.hardware.machine import Machine
from repro.placement import MigrationState
from repro.workloads.micro import COMPUTE_BOUND


def modeled_query(arrival, partitions, instructions=20_000):
    stage = QueryStage(
        [
            Message(query_id=-1, target_partition=p, cost=WorkCost(instructions))
            for p in partitions
        ]
    )
    return Query(arrival_s=arrival, stages=[stage], coordinator_socket=0)


@pytest.fixture
def loaded_engine(engine: DatabaseEngine):
    engine.set_workload_characteristics(COMPUTE_BOUND)
    return engine


class TestRequest:
    def test_same_socket_is_noop(self, loaded_engine):
        # Partition 0 already lives on socket 0 (round-robin).
        assert loaded_engine.request_migration(0, 0) is None
        assert loaded_engine.migrations.active_count == 0

    def test_unknown_target_rejected(self, loaded_engine):
        with pytest.raises(PlacementError):
            loaded_engine.request_migration(0, 9)

    def test_double_request_is_noop(self, loaded_engine):
        loaded_engine.hubs[0].acquire_specific(1, 0)  # hold to keep it active
        first = loaded_engine.request_migration(0, 1)
        assert first is not None
        assert loaded_engine.request_migration(0, 1) is None
        assert loaded_engine.migrations.active_count == 1
        loaded_engine.hubs[0].release_partition(1, 0)

    def test_quiesced_partition_not_acquirable(self, loaded_engine):
        loaded_engine.submit(modeled_query(0.0, [0]))
        loaded_engine.tick(0.001)  # deliver
        loaded_engine.request_migration(0, 1)
        assert not loaded_engine.hubs[0].acquire_specific(5, 0)
        assert loaded_engine.hubs[0].acquire_partition(5) != 0


class TestCompletion:
    def test_partition_rehomes_with_queue(self, loaded_engine):
        # Queue two messages, then migrate: the queue must ship along and
        # the messages must still execute on the new home.
        loaded_engine.submit(modeled_query(0.0, [0, 0]))
        record = loaded_engine.request_migration(0, 1)
        assert record.state is MigrationState.QUIESCING
        done = []
        for _ in range(6):
            done.extend(loaded_engine.tick(0.001).completions)
        assert record.state is MigrationState.COMPLETE
        assert loaded_engine.partitions.socket_of(0) == 1
        assert loaded_engine.router.home_socket(0) == 1
        assert record.messages_in_flight >= 1
        assert len(done) == 1
        assert loaded_engine.pending_messages() == 0

    def test_transfer_is_charged_to_both_sockets(self, loaded_engine):
        record = loaded_engine.request_migration(0, 1)
        result = loaded_engine.tick(0.001)
        assert record.cost_instructions_per_side > 0
        # The lump shows up as consumed overhead on both sides.
        assert result.consumed_by_socket[0] > 0
        assert result.consumed_by_socket[1] > 0

    def test_floor_applies_to_empty_tables(self, loaded_engine):
        record = loaded_engine.request_migration(0, 1)
        loaded_engine.tick(0.001)
        floor = loaded_engine.config.migration_floor_bytes
        assert record.data_bytes == pytest.approx(floor)

    def test_log_accumulates_in_completion_order(self, loaded_engine):
        loaded_engine.request_migration(0, 1)
        loaded_engine.request_migration(2, 1)
        loaded_engine.tick(0.001)
        assert [r.partition_id for r in loaded_engine.migration_log] == [0, 2]

    def test_in_flight_messages_survive_migration(self, loaded_engine):
        # A remote message is buffered toward socket 0 while partition 0
        # moves to socket 1: the flush delivers it into the frozen source
        # queue and the transfer ships it along — it must complete exactly
        # once on the new home, never be lost.
        q = modeled_query(0.0, [0])
        q = Query(arrival_s=0.0, stages=q.stages, coordinator_socket=1)
        loaded_engine.submit(q)  # buffered in router (1 -> 0)
        assert loaded_engine.router.total_buffered == 1
        loaded_engine.request_migration(0, 1)
        done = []
        for _ in range(6):
            done.extend(loaded_engine.tick(0.001).completions)
        assert len(done) == 1
        assert loaded_engine.partitions.socket_of(0) == 1
        assert loaded_engine.pending_messages() == 0


class TestRoundTrip:
    def test_migrate_away_and_back(self, loaded_engine):
        """A -> B -> A keeps the ownership/generation machinery coherent."""
        for target in (1, 0, 1, 0):
            loaded_engine.request_migration(0, target)
            for _ in range(4):
                loaded_engine.tick(0.001)
            assert loaded_engine.partitions.socket_of(0) == target
        # The partition still processes work afterwards.
        loaded_engine.submit(modeled_query(loaded_engine.machine.time_s, [0]))
        done = []
        for _ in range(4):
            done.extend(loaded_engine.tick(0.001).completions)
        assert len(done) == 1


@settings(max_examples=25, deadline=None)
@given(
    moves=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),  # tick to fire on
            st.integers(min_value=0, max_value=11),  # partition
            st.integers(min_value=0, max_value=1),  # target socket
        ),
        max_size=8,
    ),
    query_partitions=st.lists(
        st.integers(min_value=0, max_value=11), min_size=1, max_size=24
    ),
)
def test_property_conservation_under_migration(moves, query_partitions):
    """Forced mid-run migrations never lose or duplicate work.

    Queries land on random partitions while random partitions migrate at
    random ticks; every submitted query completes exactly once and no
    message is left behind.
    """
    machine = Machine(seed=3)
    engine = DatabaseEngine(machine, partition_count=12)
    engine.set_workload_characteristics(COMPUTE_BOUND)
    for p in query_partitions:
        engine.submit(modeled_query(0.0, [p], instructions=5_000))
    done = 0
    for tick_index in range(30):
        for at_tick, pid, target in moves:
            if at_tick == tick_index:
                engine.request_migration(pid, target)
        done += len(engine.tick(0.001).completions)
    assert done == len(query_partitions)
    assert engine.pending_messages() == 0
    assert engine.migrations.active_count == 0
    assert engine.tracker.in_flight == 0
