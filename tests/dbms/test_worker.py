"""Tests for worker processing and the elastic pool."""

import pytest

from repro.errors import MessagingError
from repro.dbms.elasticity import ElasticWorkerPool
from repro.dbms.intra_socket import IntraSocketHub
from repro.dbms.messages import Message, WorkCost
from repro.dbms.worker import Worker, WorkerState
from repro.hardware.topology import Topology
from repro.storage.partition import PartitionMap


def msg(partition: int, instructions: float = 100.0) -> Message:
    return Message(query_id=0, target_partition=partition, cost=WorkCost(instructions))


@pytest.fixture
def setup():
    hub = IntraSocketHub(0, [0, 1, 2])
    partitions = PartitionMap(3, 1)
    worker = Worker(worker_id=1, socket_id=0, hw_thread_id=1)
    return hub, partitions, worker


class TestProcessing:
    def test_processes_within_budget(self, setup):
        hub, partitions, worker = setup
        for _ in range(5):
            hub.enqueue(msg(0, 100))
        used, done = worker.process_quantum(hub, partitions, 250.0)
        assert len(done) == 2
        assert used == pytest.approx(200.0)
        assert hub.pending_messages == 3

    def test_drains_all_with_big_budget(self, setup):
        hub, partitions, worker = setup
        for p in range(3):
            hub.enqueue(msg(p, 50))
        used, done = worker.process_quantum(hub, partitions, 1e6)
        assert len(done) == 3
        assert hub.pending_messages == 0

    def test_releases_ownership_after_run(self, setup):
        hub, partitions, worker = setup
        hub.enqueue(msg(0))
        worker.process_quantum(hub, partitions, 1e6)
        assert hub.owner_of(0) is None

    def test_first_message_may_overdraw(self, setup):
        hub, partitions, worker = setup
        hub.enqueue(msg(0, 500))
        used, done = worker.process_quantum(hub, partitions, 100.0)
        assert len(done) == 1
        assert used == pytest.approx(500.0)

    def test_parked_worker_refuses(self, setup):
        hub, partitions, worker = setup
        worker.state = WorkerState.PARKED
        with pytest.raises(MessagingError):
            worker.process_quantum(hub, partitions, 100.0)

    def test_stats_accumulate(self, setup):
        hub, partitions, worker = setup
        hub.enqueue(msg(0, 100))
        worker.process_quantum(hub, partitions, 1e6)
        assert worker.stats.messages_processed == 1
        assert worker.stats.instructions_consumed == pytest.approx(100.0)
        assert worker.stats.acquisitions == 1

    def test_real_operation_executes(self, setup):
        hub, partitions, worker = setup
        from repro.storage.schema import DataType, Schema

        partitions.create_table_everywhere("t", Schema.of(k=DataType.INT64))

        def operation(partition):
            position = partition.table("t").insert((7,))
            return position, WorkCost(instructions=42.0)

        real = Message(query_id=0, target_partition=0, operation=operation)
        hub.enqueue(real)
        used, done = worker.process_quantum(hub, partitions, 1e6)
        assert done[0].result == 0
        assert partitions.partition(0).table("t").row_count == 1
        assert used == pytest.approx(42.0)


class TestElasticPool:
    @pytest.fixture
    def pool(self):
        topo = Topology.build(2, 2, 2)  # 8 threads
        hubs = {0: IntraSocketHub(0, [0, 2]), 1: IntraSocketHub(1, [1, 3])}
        return ElasticWorkerPool(topo, hubs), hubs

    def test_one_worker_per_thread(self, pool):
        p, _ = pool
        assert len(p.workers_on_socket(0)) == 4
        assert len(p.workers_on_socket(1)) == 4

    def test_sync_parks_and_unparks(self, pool):
        p, _ = pool
        p.sync_with_threads(0, {0})
        assert p.active_count(0) == 1
        assert p.worker(0).is_active
        assert not p.worker(1).is_active
        p.sync_with_threads(0, {0, 1})
        assert p.active_count(0) == 2

    def test_sync_releases_ownership_on_park(self, pool):
        p, hubs = pool
        hubs[0].enqueue(msg(0))
        hubs[0].acquire_specific(0, 0)  # worker 0 owns partition 0
        p.sync_with_threads(0, set())
        assert hubs[0].owner_of(0) is None
        # messages survive the park
        assert hubs[0].pending_messages == 1

    def test_park_all(self, pool):
        p, _ = pool
        p.park_all(1)
        assert p.active_count(1) == 0
        assert p.active_count(0) == 4

    def test_unknown_worker(self, pool):
        p, _ = pool
        with pytest.raises(MessagingError):
            p.worker(99)

    def test_total_stats(self, pool):
        p, _ = pool
        stats = p.total_stats()
        assert stats["messages_processed"] == 0.0
