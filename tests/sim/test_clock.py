"""Unit tests for the discrete tick timekeeping helpers."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import (
    EPSILON_S,
    OneShotDeadline,
    PeriodicDeadline,
    TickClock,
    at_or_after,
)


class TestTickClock:
    def test_divisible_ratio(self):
        clock = TickClock(tick_s=0.002, duration_s=4.0)
        assert clock.tick_count == 2000
        assert clock.realized_duration_s == pytest.approx(4.0)

    def test_non_divisible_rounds_to_nearest(self):
        # 1.0 / 0.3 = 3.33… → 3 ticks (0.9 s realized, closest match).
        assert TickClock(tick_s=0.3, duration_s=1.0).tick_count == 3
        # 1.0 / 0.4 = 2.5 → banker's rounding gives 2 ticks (0.8 s).
        assert TickClock(tick_s=0.4, duration_s=1.0).tick_count == 2
        # 1.0 / 0.7 = 1.43… → 1 tick.
        assert TickClock(tick_s=0.7, duration_s=1.0).tick_count == 1

    def test_duration_one_ulp_short_still_counts_full_tick(self):
        # 0.1 * 3 = 0.30000000000000004 ≠ 0.3; a floor-based count
        # would drop a tick, round() does not.
        duration = 0.1 + 0.1 + 0.1
        assert TickClock(tick_s=0.3, duration_s=duration).tick_count == 1
        assert TickClock(tick_s=0.1, duration_s=duration).tick_count == 3

    def test_zero_duration(self):
        clock = TickClock(tick_s=0.002, duration_s=0.0)
        assert clock.tick_count == 0
        assert clock.realized_duration_s == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            TickClock(tick_s=0.0, duration_s=1.0)
        with pytest.raises(SimulationError):
            TickClock(tick_s=-0.1, duration_s=1.0)
        with pytest.raises(SimulationError):
            TickClock(tick_s=0.002, duration_s=-1.0)


class TestAtOrAfter:
    def test_exact_and_past(self):
        assert at_or_after(1.0, 1.0)
        assert at_or_after(1.5, 1.0)
        assert not at_or_after(0.5, 1.0)

    def test_accumulated_float_error_tolerated(self):
        # 1000 × 0.002 accumulates to 1.9999999999999998 ≠ 2.0: a bare
        # >= comparison would miss the deadline by a few ULPs.
        now = 0.0
        for _ in range(1000):
            now += 0.002
        assert now != 2.0
        assert at_or_after(now, 2.0)

    def test_epsilon_is_tight(self):
        # The slack must not swallow a genuine whole-tick difference.
        assert not at_or_after(1.0 - 1e-6, 1.0)
        assert EPSILON_S < 1e-9


class TestPeriodicDeadline:
    def test_first_due_immediately_by_default(self):
        deadline = PeriodicDeadline(0.25)
        assert deadline.due(0.0)

    def test_advance_stays_phase_anchored(self):
        # Sampling semantics: deadlines at 0, T, 2T, … of simulation
        # time, regardless of when the due check happens.
        deadline = PeriodicDeadline(0.25, first_due_s=0.0)
        fired_at = []
        now = 0.0
        for _ in range(500):  # 1 s at 2 ms ticks
            if deadline.due(now):
                deadline.advance()
                fired_at.append(round(now, 6))
            now += 0.002
        assert fired_at == [0.0, 0.25, 0.5, 0.75]
        assert deadline.next_due_s == pytest.approx(1.0)

    def test_restart_re_anchors_at_now(self):
        # Governor semantics: next decision a full period after the
        # previous one fired, even when the check came late.
        deadline = PeriodicDeadline(0.1, first_due_s=0.0)
        assert deadline.due(0.137)
        deadline.restart(0.137)
        assert deadline.next_due_s == pytest.approx(0.237)
        assert not deadline.due(0.2)
        assert deadline.due(0.237)

    def test_validation(self):
        with pytest.raises(SimulationError):
            PeriodicDeadline(0.0)


class TestOneShotDeadline:
    def test_fires_exactly_once(self):
        deadline = OneShotDeadline(2.0)
        assert not deadline.fired
        assert not deadline.poll(1.9)
        assert deadline.poll(2.0)
        assert deadline.fired
        assert not deadline.poll(2.1)
        assert not deadline.poll(100.0)

    def test_disarmed_never_fires(self):
        deadline = OneShotDeadline(None)
        assert deadline.fired
        assert not deadline.poll(0.0)
        assert not deadline.poll(1e9)

    def test_tolerates_accumulated_error(self):
        deadline = OneShotDeadline(2.0)
        now = 0.0
        while now < 1.99:
            assert not deadline.poll(now)
            now += 0.002
        while not deadline.poll(now):
            now += 0.002
        # Fired on the tick whose mathematical time is 2.0, not one late.
        assert now == pytest.approx(2.0, abs=1e-9)
