"""The socket-level ECL: one control loop per processor (§5.1).

Runs periodically (default 1 Hz) and combines:

* the **utilization controller** — derives the demanded performance level
  from worker utilization;
* the **energy profile** — maps the level to the most energy-efficient
  configuration satisfying it;
* the **RTI controller** — realizes levels in the under-utilization zone
  by duty-cycling against idle;
* **profile maintenance** — online EWMA updates of whatever was applied,
  plus multiplexed re-evaluation slots after drift.

The loop is tick-driven: the simulation calls :meth:`SocketEcl.on_tick`
*before* every engine tick, so configuration changes take effect for the
upcoming tick and counter reads observe everything up to the tick start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ControlError, ProfileError
from repro.hardware.machine import Machine
from repro.hardware.rapl import RaplDomain
from repro.profiles.configuration import Configuration, ConfigurationMeasurement
from repro.profiles.profile import EnergyProfile
from repro.profiles.zones import RulingZone, zone_for_level
from repro.ecl.adaptation import ProfileMaintainer
from repro.ecl.rti import RtiController, RtiPlan
from repro.ecl.utilization import UtilizationController


@dataclass(frozen=True)
class EclParameters:
    """All tunables of the hierarchical ECL."""

    #: Socket-ECL period (1 Hz default; Fig. 13/14 also evaluate 2 Hz).
    interval_s: float = 1.0
    #: User-defined soft latency limit supervised by the system-level ECL.
    latency_limit_s: float = 0.1
    #: Configuration-apply settle time (meta calibration, Fig. 12).
    apply_time_s: float = 0.001
    #: Counter measurement window (meta calibration, Fig. 12).
    measure_time_s: float = 0.1
    #: Upper bound on the interval share spent in multiplexed slots.
    mux_fraction: float = 0.35
    #: EWMA weight of online profile updates.
    ewma_weight: float = 0.5
    #: Relative drift that triggers multiplexed re-evaluation.
    drift_threshold: float = 0.20
    #: Utilization above which demand discovery kicks in.
    full_threshold: float = 0.97
    #: Exponential discovery multipliers (relaxed / urgent).
    discovery_factor: float = 1.6
    urgent_discovery_factor: float = 2.6
    #: Race-to-idle on/off (ablation knob; the paper always runs with it).
    rti_enabled: bool = True
    #: RTI switching bounds ("up to 50 RTI cycles per 1 s interval").
    rti_max_cycles: int = 50
    rti_min_period_s: float = 0.02
    #: Compute overhead of the ECL itself: fraction of one hardware
    #: thread per socket (the paper measured ~2 %).
    overhead_thread_fraction: float = 0.02
    #: Profile maintenance strategy (the section 6.3 experiment):
    #: "static" (no adaptation), "online" (EWMA updates of applied
    #: configurations only), or "multiplexed" (online + stale-sweep).
    adaptation: str = "multiplexed"

    def __post_init__(self) -> None:
        if self.adaptation not in ("static", "online", "multiplexed"):
            raise ControlError(
                f"unknown adaptation mode {self.adaptation!r}"
            )
        if self.interval_s <= 0:
            raise ControlError(f"interval must be > 0, got {self.interval_s}")
        if not 0.0 <= self.mux_fraction < 0.9:
            raise ControlError(
                f"mux_fraction must be in [0, 0.9), got {self.mux_fraction}"
            )
        if self.measure_time_s <= 0 or self.apply_time_s <= 0:
            raise ControlError("apply/measure times must be > 0")


@dataclass
class _CounterWindow:
    """Open counter window: readings at the start of the window."""

    start_time_s: float
    start_package_j: float
    start_dram_j: float
    start_instructions: float


@dataclass
class _Accumulator:
    """Accumulated active-phase measurements within one interval."""

    energy_j: float = 0.0
    instructions: float = 0.0
    duration_s: float = 0.0

    def add(self, energy_j: float, instructions: float, duration_s: float) -> None:
        self.energy_j += energy_j
        self.instructions += instructions
        self.duration_s += duration_s


@dataclass
class _MuxSlot:
    """One in-flight multiplexed evaluation slot.

    Phases: *prepare* (idle to let backlog accumulate so the measured
    configuration will be saturated — the paper's "leverages the RTI
    controller to simulate high load situations"), then *settle*
    (configuration applied, counters not yet trusted), then *measure*.
    """

    configuration: Configuration
    prepare_until_s: float
    needed_backlog: float
    measure_from_s: float = 0.0
    measure_until_s: float = 0.0
    preparing: bool = True
    saturated_at_start: bool = False
    window: _CounterWindow | None = None


@dataclass
class SocketEclStatus:
    """Introspection snapshot for reports and the Fig. 11 bench."""

    time_s: float
    utilization: float
    performance_level: float
    zone: RulingZone | None
    plan_duty: float
    multiplexing: bool
    applied: str


class SocketEcl:
    """The per-socket control loop."""

    def __init__(
        self,
        machine: Machine,
        socket_id: int,
        profile: EnergyProfile,
        params: EclParameters,
        utilization_fn: Callable[[float], float],
        time_to_violation_fn: Callable[[], float],
        busy_fraction_fn: Callable[[float], float] | None = None,
        backlog_fn: Callable[[], float] | None = None,
    ):
        if profile.socket_id != socket_id:
            raise ControlError(
                f"profile is for socket {profile.socket_id}, not {socket_id}"
            )
        self.machine = machine
        self.socket_id = socket_id
        self.profile = profile
        self.params = params
        self.utilization_fn = utilization_fn
        self.time_to_violation_fn = time_to_violation_fn
        self.busy_fraction_fn = busy_fraction_fn or utilization_fn
        self.backlog_fn = backlog_fn or (lambda: 0.0)

        self.utilization_controller = UtilizationController(
            full_threshold=params.full_threshold,
            discovery_factor=params.discovery_factor,
            urgent_discovery_factor=params.urgent_discovery_factor,
        )
        self.rti_controller = RtiController(
            max_cycles_per_interval=params.rti_max_cycles,
            min_period_s=params.rti_min_period_s,
        )
        self.maintainer = ProfileMaintainer(
            profile,
            ewma_weight=params.ewma_weight,
            drift_threshold=params.drift_threshold,
            mark_stale_on_drift=params.adaptation == "multiplexed",
        )

        self._level = 0.0
        self._plan: RtiPlan | None = None
        self._applied: Configuration | None = None
        self._applied_at_s = -1.0
        self._next_interval_s = params.interval_s
        self._online_window: _CounterWindow | None = None
        self._online_acc = _Accumulator()
        self._mux_slot: _MuxSlot | None = None
        self._mux_budget_s = 0.0
        #: Failed saturation attempts per stale configuration.
        self._mux_attempts: dict[Configuration, int] = {}
        self.mux_max_attempts = 3
        self._last_utilization = 0.0
        self._last_zone: RulingZone | None = None
        #: True while the placement layer has drained this socket into
        #: package sleep: the loop stands down entirely (no decisions, no
        #: reconfiguration, no overhead) until the socket is re-populated.
        self._drained = False
        self.decisions = 0
        self.configuration_switches = 0
        self.mux_slots_started = 0
        #: Why :meth:`macro_horizon_s` last refused a span (telemetry).
        self.macro_cut: str = ""

    # -- counter plumbing -------------------------------------------------------

    def _read_counters(self) -> tuple[float, float, float]:
        """(package J, dram J, instructions) as visible right now."""
        package = self.machine.read_rapl(self.socket_id, RaplDomain.PACKAGE)
        dram = self.machine.read_rapl(self.socket_id, RaplDomain.DRAM)
        instr = self.machine.read_instructions(self.socket_id)
        return package.energy_j, dram.energy_j, instr.instructions

    def _open_window(self, now_s: float) -> _CounterWindow:
        pkg, dram, instr = self._read_counters()
        return _CounterWindow(
            start_time_s=now_s,
            start_package_j=pkg,
            start_dram_j=dram,
            start_instructions=instr,
        )

    def _close_window(
        self, window: _CounterWindow, now_s: float
    ) -> tuple[float, float, float]:
        """(energy J, instructions, duration s) since the window opened."""
        pkg, dram, instr = self._read_counters()
        energy = max(0.0, pkg - window.start_package_j) + max(
            0.0, dram - window.start_dram_j
        )
        instructions = max(0.0, instr - window.start_instructions)
        duration = now_s - window.start_time_s
        return energy, instructions, duration

    # -- configuration application -------------------------------------------------

    def _apply(self, configuration: Configuration, now_s: float) -> None:
        if self._applied == configuration:
            return
        # Close the online window before the hardware state changes.
        if self._online_window is not None:
            self._online_acc.add(*self._close_window(self._online_window, now_s))
            self._online_window = None
        configuration.apply(self.machine)
        self._applied = configuration
        self._applied_at_s = now_s
        self.configuration_switches += 1

    # -- interval decision ------------------------------------------------------------

    def _finish_online_measurement(self, now_s: float, busy_fraction: float) -> None:
        """Fold the interval's active-phase counters into the profile.

        Online measurements are only meaningful when the configuration was
        *saturated* while measured — instructions retired under partial
        demand underestimate the configuration's capacity and would look
        like workload drift.  A busy interval (utilization ≈ 1, which RTI
        active phases guarantee by construction: they run against backlog)
        is recorded unconditionally; an underutilized one only when the
        measurement does not undershoot the stored value (undershoot is
        then explained by missing demand, not by a workload change).
        """
        if self._plan is None:
            return
        if self._online_window is not None:
            self._online_acc.add(*self._close_window(self._online_window, now_s))
            self._online_window = None
        acc = self._online_acc
        self._online_acc = _Accumulator()
        if acc.duration_s < 0.5 * self.params.measure_time_s or acc.energy_j <= 0:
            return
        measurement = ConfigurationMeasurement(
            power_w=acc.energy_j / acc.duration_s,
            performance_score=acc.instructions / acc.duration_s,
            measured_at_s=now_s,
        )
        if self.params.adaptation == "static":
            return
        configuration = self._plan.active_configuration
        if busy_fraction < 0.50:
            # Mostly-idle interval: the counters say nothing about the
            # configuration's capacity; skip unless they show improvement.
            entry = self.profile.entry(configuration)
            if (
                entry.measurement is not None
                and measurement.performance_score
                < entry.measurement.performance_score
            ):
                return
        elif busy_fraction < 0.97:
            # Partially demand-bound: instructions/s undershoot capacity
            # by roughly the idle share of the busy time.  Correct the
            # first-order bias and fold the value in via EWMA, but do NOT
            # let it declare drift — only fully saturated intervals are
            # trustworthy enough to invalidate the whole profile.
            corrected = ConfigurationMeasurement(
                power_w=measurement.power_w,
                performance_score=measurement.performance_score / busy_fraction,
                measured_at_s=measurement.measured_at_s,
            )
            self.profile.record(
                configuration, corrected, blend_weight=self.params.ewma_weight
            )
            self.maintainer.online_updates += 1
            return
        if self.maintainer.record_online(configuration, measurement):
            self._mux_attempts.clear()  # new workload: retry everything

    def _decide(self, now_s: float) -> None:
        """The periodic socket-ECL decision (Fig. 11's per-second step)."""
        params = self.params
        utilization = self.utilization_fn(now_s)
        self._finish_online_measurement(now_s, self.busy_fraction_fn(now_s))
        self._last_utilization = utilization
        ttv = self.time_to_violation_fn()
        self.decisions += 1

        try:
            optimal = self.profile.most_efficient()
        except ProfileError:
            # Nothing evaluated yet: stay on the baseline configuration and
            # let the multiplexed sweep fill the profile.
            self._plan = None
            self._last_zone = None
            self._refill_mux_budget()
            return

        peak = self.profile.peak_performance()
        # The level tracks the *applied capability*: before the first plan
        # the baseline configuration (≈ peak performance) is in effect.
        current_capability = self._level if self._plan is not None else peak
        demand = self.utilization_controller.next_level(
            utilization, current_capability, ttv, params.interval_s
        )
        demand = min(demand, peak)
        zone = zone_for_level(self.profile, demand)
        self._last_zone = zone
        optimal_perf = optimal.measurement.performance_score

        if zone is RulingZone.UNDER_UTILIZATION:
            if params.rti_enabled:
                self._plan = self.rti_controller.plan(
                    demand_level=demand,
                    optimal_configuration=optimal.configuration,
                    optimal_performance=optimal_perf,
                    interval_s=params.interval_s,
                    time_to_violation_s=ttv,
                )
            else:
                self._plan = RtiPlan(
                    active_configuration=optimal.configuration,
                    duty=1.0,
                    period_s=params.interval_s,
                )
            self._level = self._plan.duty * optimal_perf
        elif zone is RulingZone.OPTIMAL:
            self._plan = RtiPlan(
                active_configuration=optimal.configuration,
                duty=1.0,
                period_s=params.interval_s,
            )
            self._level = optimal_perf
        else:  # over-utilization: cheapest configuration that satisfies
            entry = self.profile.best_for_performance(demand)
            self._plan = RtiPlan(
                active_configuration=entry.configuration,
                duty=1.0,
                period_s=params.interval_s,
            )
            self._level = entry.measurement.performance_score
        self._refill_mux_budget()

    def _refill_mux_budget(self) -> None:
        if self.params.adaptation != "multiplexed":
            self._mux_budget_s = 0.0
            return
        if self.maintainer.multiplexing_needed:
            self._mux_budget_s = self.params.mux_fraction * self.params.interval_s
        else:
            self._mux_budget_s = 0.0

    # -- multiplexed slots ------------------------------------------------------------

    def _estimated_capacity(self, configuration: Configuration) -> float:
        """Best guess of a configuration's throughput (for saturation)."""
        entry = self.profile.entry(configuration)
        if entry.measurement is not None:
            return entry.measurement.performance_score
        try:
            peak = self.profile.peak_performance()
        except ProfileError:
            return 0.0
        total_threads = self.machine.params_for(self.socket_id).threads_per_socket
        share = configuration.thread_count / max(1, total_threads)
        return peak * max(share, 0.05)

    def _maybe_start_mux_slot(self, now_s: float) -> None:
        if self._mux_slot is not None:
            return
        slot_cost = self.params.apply_time_s + self.params.measure_time_s
        if self._mux_budget_s < slot_cost:
            return
        configuration = self.maintainer.next_stale_configuration(
            relevance_level=self._level
        )
        while (
            configuration is not None
            and self._mux_attempts.get(configuration, 0) >= self.mux_max_attempts
        ):
            # Unmeasurable under the current load: keep the old value and
            # stop re-trying until the next drift event.
            self.profile.entry(configuration).stale = False
            configuration = self.maintainer.next_stale_configuration(
                relevance_level=self._level
            )
        if configuration is None:
            self._mux_budget_s = 0.0
            return
        # A valid measurement needs the configuration saturated throughout
        # the window; let backlog build up first ("simulate high load"),
        # but never longer than half the latency limit.
        needed = self._estimated_capacity(configuration) * (
            self.params.measure_time_s * 0.9
        )
        prepare_cap = min(
            0.25 * self.params.latency_limit_s, 0.25 * self.params.interval_s
        )
        self._mux_slot = _MuxSlot(
            configuration=configuration,
            prepare_until_s=now_s + prepare_cap,
            needed_backlog=needed,
        )
        self.mux_slots_started += 1
        self._mux_budget_s -= slot_cost
        if self.backlog_fn() < needed:
            self._apply(self.profile.idle_configuration, now_s)
        # else: _service_mux_slot starts the settle phase right away

    def _service_mux_slot(self, now_s: float) -> bool:
        """Advance an in-flight slot; True while the slot owns the socket."""
        slot = self._mux_slot
        if slot is None:
            return False
        if slot.preparing:
            backlog = self.backlog_fn()
            if (
                backlog < slot.needed_backlog
                and now_s + 1e-12 < slot.prepare_until_s
            ):
                return True  # keep idling, backlog is still building
            slot.preparing = False
            slot.saturated_at_start = backlog >= slot.needed_backlog
            slot.measure_from_s = now_s + self.params.apply_time_s
            slot.measure_until_s = (
                now_s + self.params.apply_time_s + self.params.measure_time_s
            )
            self._apply(slot.configuration, now_s)
            return True
        if slot.window is None and now_s + 1e-12 >= slot.measure_from_s:
            slot.window = self._open_window(now_s)
        if now_s + 1e-12 >= slot.measure_until_s:
            saturated = slot.saturated_at_start and self.backlog_fn() > 0
            if slot.window is not None and saturated:
                energy, instructions, duration = self._close_window(
                    slot.window, now_s
                )
                if duration > 0 and energy > 0:
                    self.maintainer.record_multiplexed(
                        slot.configuration,
                        ConfigurationMeasurement(
                            power_w=energy / duration,
                            performance_score=instructions / duration,
                            measured_at_s=now_s,
                        ),
                    )
                    self._mux_attempts.pop(slot.configuration, None)
            else:
                attempts = self._mux_attempts.get(slot.configuration, 0) + 1
                self._mux_attempts[slot.configuration] = attempts
            self._mux_slot = None
            return False
        return True

    # -- main entry point ------------------------------------------------------------

    @property
    def drained(self) -> bool:
        """Whether the socket is drained and this loop stands down."""
        return self._drained

    def set_drained(self, drained: bool) -> None:
        """Stand the loop down (or resume it) for a drained socket.

        While drained, the consolidation layer owns the socket's hardware
        state (all threads parked, memory vacated, uncore halted); the
        loop must not fight it by re-applying configurations.  On resume
        the next :meth:`on_tick` re-applies the planned configuration.
        """
        self._drained = bool(drained)

    def on_tick(self, now_s: float) -> None:
        """Drive the loop; call immediately before each engine tick."""
        if self._drained:
            return
        if now_s + 1e-12 >= self._next_interval_s:
            self._next_interval_s += self.params.interval_s
            self._decide(now_s)

        if self._service_mux_slot(now_s):
            return
        self._maybe_start_mux_slot(now_s)
        if self._mux_slot is not None:
            return

        plan = self._plan
        if plan is None:
            return  # bootstrap phase: whatever is applied stays applied
        if plan.is_active_phase(now_s):
            target = plan.active_configuration
        else:
            target = self.profile.idle_configuration
        self._apply(target, now_s)
        if (
            target == plan.active_configuration
            and self._online_window is None
            # Counters are unreliable right after a reconfiguration: wait
            # out the calibrated apply-settle time before opening.
            and now_s - self._applied_at_s >= self.params.apply_time_s
        ):
            self._online_window = self._open_window(now_s)

    def macro_tick_replayable(self, now_s: float) -> bool:
        """Whether :meth:`on_tick` at ``now_s`` leaves hardware untouched.

        True exactly when the upcoming tick's action is *hardware-inert*:
        a pure no-op, or a counter-window open (RAPL / instruction reads
        — RNG draws, but no machine mutation).  Such ticks can be
        replayed inside a macro span by calling :meth:`on_tick` at the
        exact tick time instead of dropping to per-tick mode, because
        the engine's steady-state fold stays valid across them.

        False when the tick applies a configuration or makes a decision
        that may: the interval decide, any multiplexed-slot transition
        that reaches :meth:`_apply` (prepare → settle, the close tick —
        which falls through to re-apply the plan target — and slot
        starts), and plan-target reconfigurations (RTI flips).  Those
        invalidate the engine's span assumptions and must run live.

        The branch structure mirrors :meth:`on_tick` exactly; keep the
        two in sync.
        """
        if self._drained:
            return True
        if now_s + 1e-12 >= self._next_interval_s:
            return False  # interval decision: may replan / reconfigure
        slot = self._mux_slot
        if slot is not None:
            if slot.preparing:
                # The prepare -> settle transition applies the probe
                # configuration; until then the slot just idles.
                return (
                    self.backlog_fn() < slot.needed_backlog
                    and now_s + 1e-12 < slot.prepare_until_s
                )
            # Settle waits and the window-open tick are pure reads; the
            # close tick falls through to re-apply the plan target.
            return now_s + 1e-12 < slot.measure_until_s
        slot_cost = self.params.apply_time_s + self.params.measure_time_s
        if self._mux_budget_s >= slot_cost:
            return False  # a new slot may start (and apply idle)
        plan = self._plan
        if plan is None:
            return True  # bootstrap: nothing to apply
        if plan.is_active_phase(now_s):
            target = plan.active_configuration
        else:
            target = self.profile.idle_configuration
        # A pending reconfiguration mutates; otherwise the only possible
        # action is opening the online counter window (reads).
        return self._applied == target

    def macro_horizon_s(self, now_s: float) -> float | None:
        """Earliest future time at which :meth:`on_tick` may act.

        The macro-stepping runner skips ticks strictly before the
        returned horizon; for every one of them this method promises
        :meth:`on_tick` would have been a pure no-op — no interval
        decision, no reconfiguration, no counter window, no profile or
        measurement-noise activity.

        An in-flight multiplexed slot is a *span program*, not a reason
        to force per-tick mode: between its scheduled transitions
        (prepare → settle → measure → close) :meth:`on_tick` only
        re-checks deadlines against constant state, so each phase
        contributes its end time as a horizon and only the transition
        ticks themselves — the ones that apply configurations or read
        counters (RNG) — run live.  During *prepare* the backlog is
        constant over a span (no arrivals, idle configuration), so the
        saturation check cannot flip mid-span; a slot that is already
        saturated transitions on the very next tick and returns ``None``.

        ``None`` declares the loop busy — the next tick acts (a phase
        transition, a newly startable slot, a pending reconfiguration, a
        counter window opening) — and forces per-tick execution;
        :attr:`macro_cut` records why, for span-cut attribution.  A
        drained loop returns from :meth:`on_tick` immediately, hence the
        unbounded horizon.
        """
        if self._drained:
            return float("inf")
        horizon = self._next_interval_s
        slot = self._mux_slot
        if slot is not None:
            if slot.preparing:
                if self.backlog_fn() >= slot.needed_backlog:
                    self.macro_cut = "mux-saturated"
                    return None  # transitions to settle on the next tick
                return min(horizon, slot.prepare_until_s)
            if slot.window is None:
                if now_s + 1e-12 >= slot.measure_from_s:
                    self.macro_cut = "mux-window-open"
                    return None  # the counter window opens next tick
                return min(horizon, slot.measure_from_s)
            if now_s + 1e-12 >= slot.measure_until_s:
                self.macro_cut = "mux-window-close"
                return None  # the counter window closes next tick
            return min(horizon, slot.measure_until_s)
        slot_cost = self.params.apply_time_s + self.params.measure_time_s
        if self._mux_budget_s >= slot_cost:
            self.macro_cut = "mux-start"
            return None  # a new slot starts on the next tick
        plan = self._plan
        if plan is None:
            return horizon  # bootstrap: on_tick no-ops until the interval
        if plan.is_active_phase(now_s):
            target = plan.active_configuration
        else:
            target = self.profile.idle_configuration
        if self._applied != target:
            self.macro_cut = "reconfig"
            return None  # the very next tick reconfigures
        if plan.uses_rti:
            horizon = min(horizon, plan.next_phase_change_s(now_s))
        if (
            target == plan.active_configuration
            and self._online_window is None
        ):
            opens_at = self._applied_at_s + self.params.apply_time_s
            if now_s >= opens_at:
                self.macro_cut = "window-open"
                return None  # the online window opens on the next tick
            horizon = min(horizon, opens_at)
        return horizon

    # -- introspection ---------------------------------------------------------------

    @property
    def performance_level(self) -> float:
        """The currently demanded performance level (instructions/s)."""
        return self._level

    @property
    def applied_configuration(self) -> Configuration | None:
        """The configuration currently applied by this loop."""
        return self._applied

    def capability_fraction(self) -> float:
        """Applied capability as a fraction of the socket's peak.

        The utilization the database runtime reports is demand relative
        to the capacity this loop currently *offers*, so a trimmed
        socket legitimately rides the controller's setpoint at any load.
        Multiplying by this fraction converts it into demand relative to
        the socket's full capacity — the signal a placement layer needs
        to tell genuine overload from the ECL merely running lean.
        Returns 1.0 before the profile holds any measurement (the
        baseline configuration is in effect, which is peak).
        """
        try:
            peak = self.profile.peak_performance()
        except ProfileError:
            return 1.0
        if peak <= 0.0:
            return 1.0
        capability = self._level if self._plan is not None else peak
        return min(1.0, capability / peak)

    def status(self, now_s: float) -> SocketEclStatus:
        """Snapshot for reports (Fig. 11 series)."""
        return SocketEclStatus(
            time_s=now_s,
            utilization=self._last_utilization,
            performance_level=self._level,
            zone=self._last_zone,
            plan_duty=self._plan.duty if self._plan else 1.0,
            multiplexing=self._mux_slot is not None
            or self.maintainer.multiplexing_needed,
            applied=self._applied.describe() if self._applied else "none",
        )
