"""Table 1 — relative energy savings for every workload × load profile.

Paper: savings range from 15.8 % (indexed OLTP) to ~40 % (non-indexed
KV); non-indexed (bandwidth-bound) workloads save more than indexed
(latency-bound) ones because parallel scans saturate the memory
controllers; the custom KV benchmark saves the most; TATP and SSB need
more threads at medium frequency due to cross-partition communication.
The table also reports the most energy-efficient configuration per
workload, which is mostly static per workload.
"""

from repro.loadprofiles import spike_profile, twitter_profile
from repro.profiles.evaluate import build_profile
from repro.hardware.machine import Machine
from repro.sim import RunConfiguration
from repro.sim.metrics import energy_saving_fraction
from repro.workloads import (
    KeyValueWorkload,
    SsbWorkload,
    TatpWorkload,
    WorkloadVariant,
)

from _shared import bench_duration_s, heading, run_experiments

WORKLOADS = [
    TatpWorkload(WorkloadVariant.INDEXED),
    TatpWorkload(WorkloadVariant.NON_INDEXED),
    SsbWorkload(WorkloadVariant.INDEXED),
    SsbWorkload(WorkloadVariant.NON_INDEXED),
    KeyValueWorkload(WorkloadVariant.INDEXED),
    KeyValueWorkload(WorkloadVariant.NON_INDEXED),
]


def run_table():
    duration = bench_duration_s()
    profiles = {
        "spike": spike_profile(duration_s=duration),
        "twitter": twitter_profile(duration_s=duration),
    }
    machine = Machine(seed=1)
    # One flat batch — the whole grid fans out across the suite's worker
    # processes and repeats replay from the on-disk cache.
    grid = [
        (workload, profile_name, policy)
        for workload in WORKLOADS
        for profile_name in profiles
        for policy in ("ecl", "baseline")
    ]
    results = run_experiments(
        [
            RunConfiguration(
                workload=workload,
                profile=profiles[profile_name],
                policy=policy,
            )
            for workload, profile_name, policy in grid
        ]
    )
    by_key = {
        (workload.full_name, profile_name, policy): result
        for (workload, profile_name, policy), result in zip(grid, results)
    }

    table = {}
    for workload in WORKLOADS:
        energy_profile = build_profile(machine, 0, workload.characteristics)
        optimal = energy_profile.most_efficient().configuration.describe()
        savings = {}
        for profile_name in profiles:
            ecl = by_key[(workload.full_name, profile_name, "ecl")]
            base = by_key[(workload.full_name, profile_name, "baseline")]
            savings[profile_name] = (
                energy_saving_fraction(base, ecl),
                ecl.violation_fraction(),
            )
        table[workload.full_name] = (optimal, savings)
    return table


def test_table1_energy_savings(run_once):
    table = run_once(run_table)

    heading("Table 1 — relative energy savings (ECL vs baseline)")
    print(
        f"{'workload':>22} {'optimal config':>22} {'spike':>8} {'twitter':>8}"
        f" {'viol(spike)':>11}"
    )
    for name, (optimal, savings) in table.items():
        print(
            f"{name:>22} {optimal:>22} "
            f"{savings['spike'][0]:8.1%} {savings['twitter'][0]:8.1%} "
            f"{savings['spike'][1]:11.1%}"
        )

    all_savings = [
        s[0] for _, savings in table.values() for s in savings.values()
    ]
    # Paper's headline: savings between ~15 % and ~40 % (we allow a band).
    assert min(all_savings) > 0.10
    assert max(all_savings) < 0.60
    assert max(all_savings) > 0.30

    def mean_saving(name):
        savings = table[name][1]
        return sum(s[0] for s in savings.values()) / len(savings)

    # Non-indexed beats indexed for every benchmark (bandwidth-bound
    # scans leave the most on the table).
    for bench in ("tatp", "ssb", "kv"):
        indexed = mean_saving(f"{bench} (indexed)")
        non_indexed = mean_saving(f"{bench} (non-indexed)")
        assert non_indexed > indexed, bench

    # The custom KV benchmark is at the top of the non-indexed group
    # (paper: it "achieves the most energy savings"; in our model SSB's
    # non-indexed scans land within a few points of it — see the
    # divergence notes in EXPERIMENTS.md).
    kv = mean_saving("kv (non-indexed)")
    assert kv >= mean_saving("tatp (non-indexed)") - 0.02
    assert kv >= mean_saving("ssb (non-indexed)") - 0.05
