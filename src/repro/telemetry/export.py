"""Metrics export: suite summary tables and trace-derived reports.

Two kinds of artifact come out of here, both consumed by ``repro
report``:

* **suite summaries** — one row per :class:`~repro.sim.metrics.RunResult`
  (the dict of :meth:`RunResult.to_dict`), rendered as CSV
  (:func:`summary_csv`, :func:`write_summary_csv`) or a markdown table
  (:func:`summary_table_markdown`); :func:`cached_results` loads every
  result pickled into an :class:`~repro.sim.suite.ExperimentSuite` cache
  directory;
* **trace reports** — :func:`render_trace_report` turns the JSONL event
  stream of a :class:`~repro.telemetry.trace.TraceRecorder` into a
  markdown run report, and :func:`trace_samples_csv` extracts its sample
  time series as CSV.
"""

from __future__ import annotations

import csv
import io
import os
import pickle
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import SimulationError
from repro.sim.metrics import RunResult

#: Column order of suite summary exports (keys of ``RunResult.to_dict``).
SUMMARY_COLUMNS = (
    "policy",
    "workload",
    "profile",
    "duration_s",
    "requested_duration_s",
    "total_energy_j",
    "average_power_w",
    "queries_submitted",
    "queries_completed",
    "mean_latency_s",
    "p50_latency_s",
    "p99_latency_s",
    "violation_fraction",
    "latency_limit_s",
    "sample_count",
    "environment",
    "wall_energy_j",
    "gco2_total_g",
    "cost_usd",
    "gco2_per_query_g",
    "cost_per_query_usd",
)


def _summary_rows(results: Sequence[RunResult]) -> list[dict[str, object]]:
    if not results:
        raise SimulationError("no run results to summarize")
    return [result.to_dict() for result in results]


def summary_csv(results: Sequence[RunResult]) -> str:
    """Suite-level summary table as CSV text (one row per run)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=SUMMARY_COLUMNS)
    writer.writeheader()
    writer.writerows(_summary_rows(results))
    return buffer.getvalue()


def write_summary_csv(
    results: Sequence[RunResult], path: "str | os.PathLike[str]"
) -> Path:
    """Write :func:`summary_csv` to ``path`` and return it."""
    target = Path(path)
    target.write_text(summary_csv(results), encoding="utf-8")
    return target


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def summary_table_markdown(results: Sequence[RunResult]) -> str:
    """Suite-level summary as a GitHub-flavoured markdown table."""
    rows = _summary_rows(results)
    columns = (
        "policy",
        "workload",
        "profile",
        "duration_s",
        "total_energy_j",
        "average_power_w",
        "queries_completed",
        "mean_latency_s",
        "p99_latency_s",
        "violation_fraction",
    )
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_cell(row[c]) for c in columns) + " |"
        )
    return "\n".join(lines)


def cached_results(cache_dir: "str | os.PathLike[str]") -> list[RunResult]:
    """Load every :class:`RunResult` pickled into a suite cache directory.

    Entries that fail to unpickle or hold another type are skipped (the
    suite treats them as cache misses, the report simply omits them).
    Sorted by file name — the content-hash key — for a deterministic
    report order.
    """
    directory = Path(cache_dir)
    if not directory.is_dir():
        raise SimulationError(f"no cache directory at {directory}")
    results = []
    for path in sorted(directory.glob("*.pkl")):
        try:
            with open(path, "rb") as fh:
                candidate = pickle.load(fh)
        except Exception:
            continue
        if isinstance(candidate, RunResult):
            results.append(candidate)
    return results


# -- trace reports ---------------------------------------------------------


def _events_of(events: Iterable[dict], kind: str) -> list[dict]:
    return [e for e in events if e.get("event") == kind]


def trace_samples_csv(events: Sequence[dict]) -> str:
    """The ``sample`` events of a trace as CSV text."""
    samples = _events_of(events, "sample")
    if not samples:
        raise SimulationError("trace contains no sample events")
    columns = (
        "time_s",
        "load_qps",
        "rapl_power_w",
        "psu_power_w",
        "avg_latency_s",
        "pending_messages",
        "in_flight_queries",
    )
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(columns)
    for sample in samples:
        writer.writerow(
            ["" if sample.get(c) is None else sample.get(c) for c in columns]
        )
    return buffer.getvalue()


def _stats_line(label: str, values: Sequence[float], unit: str) -> str:
    mean = sum(values) / len(values)
    return (
        f"- {label}: min {min(values):.4g} / mean {mean:.4g} / "
        f"max {max(values):.4g} {unit}"
    )


def render_trace_report(events: Sequence[dict]) -> str:
    """Render a markdown report from a JSONL trace's event stream."""
    if not events:
        raise SimulationError("empty trace")
    lines = ["# Run trace report", ""]

    starts = _events_of(events, "run_start")
    if starts:
        start = starts[0]
        lines += [
            f"- policy: `{start.get('policy')}`",
            f"- workload: `{start.get('workload')}`",
            f"- profile: `{start.get('profile')}`",
            f"- realized duration: {_format_cell(start.get('duration_s'))} s "
            f"(requested {_format_cell(start.get('requested_duration_s'))} s, "
            f"tick {_format_cell(start.get('tick_s'))} s)",
        ]

    counts: dict[str, int] = {}
    for event in events:
        kind = str(event.get("event", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    lines += ["", "## Events", "", "| event | count |", "| --- | --- |"]
    lines += [f"| {kind} | {n} |" for kind, n in sorted(counts.items())]

    reconfigs = _events_of(events, "reconfig")
    if reconfigs:
        times = [float(e["t"]) for e in reconfigs]
        lines += [
            "",
            "## Control activity",
            "",
            f"- {len(reconfigs)} hardware reconfigurations "
            f"(first at t={min(times):.3f} s, last at t={max(times):.3f} s)",
        ]

    migrations = _events_of(events, "migration")
    if migrations:
        moved_bytes = sum(float(e.get("data_bytes", 0.0)) for e in migrations)
        shipped = sum(int(e.get("messages_in_flight", 0)) for e in migrations)
        times = [float(e["t"]) for e in migrations if e.get("t") is not None]
        lines += [
            "",
            "## Partition migrations",
            "",
            f"- {len(migrations)} partitions moved "
            f"({moved_bytes / 1e6:.4g} MB copied, "
            f"{shipped} queued messages shipped)",
        ]
        if times:
            lines.append(
                f"- first completed at t={min(times):.3f} s, "
                f"last at t={max(times):.3f} s"
            )
        by_route: dict[tuple[object, object], int] = {}
        for e in migrations:
            route = (e.get("source"), e.get("target"))
            by_route[route] = by_route.get(route, 0) + 1
        lines += [
            f"- socket {src} -> {dst}: {n} partitions"
            for (src, dst), n in sorted(by_route.items())
        ]

    node_events = _events_of(events, "node_power")
    multi_node = bool(starts and starts[0].get("nodes"))
    if node_events or multi_node:
        # Only cluster runs record the ``nodes`` schema additions; a
        # single-node trace legitimately has neither, so it gets no
        # section rather than an empty one — while a cluster run with a
        # quiet fleet still reports that nothing transitioned.
        lines += ["", "## Node power", ""]
        if not node_events:
            lines.append("- no node power transitions recorded")
        # Per-node time-in-state: walk the transition stream; each event
        # carries the full state map, so gaps (ring-buffer drops) only
        # blur the interval they cover.  Events missing their timestamp
        # or state map (mixed/truncated traces) skip the walk instead of
        # crashing the report.
        off_time: dict[str, float] = {}
        booting: dict[str, int] = {}
        offs: dict[str, int] = {}
        previous: dict[str, str] | None = None
        previous_t = 0.0
        for e in node_events:
            raw_t = e.get("t")
            raw_states = e.get("states")
            if raw_t is None or not isinstance(raw_states, dict):
                continue
            t = float(raw_t)
            states = dict(raw_states)
            if previous is not None:
                for node, state in previous.items():
                    if state == "off":
                        off_time[node] = off_time.get(node, 0.0) + (t - previous_t)
            for node, state in states.items():
                if previous is not None and previous.get(node) == state:
                    continue
                if state == "booting":
                    booting[node] = booting.get(node, 0) + 1
                elif state == "off":
                    offs[node] = offs.get(node, 0) + 1
            previous, previous_t = states, t
        ends = _events_of(events, "run_end")
        end_t = previous_t
        if ends and ends[-1].get("duration_s") is not None:
            end_t = float(ends[-1]["duration_s"])  # type: ignore[arg-type]
        if previous is not None:
            for node, state in previous.items():
                if state == "off":
                    off_time[node] = off_time.get(node, 0.0) + (end_t - previous_t)
        if node_events:
            lines.append(f"- {len(node_events)} node power transitions")
        for node in sorted(offs | booting | off_time, key=int):
            lines.append(
                f"- node {node}: powered off {offs.get(node, 0)}x "
                f"({off_time.get(node, 0.0):.3g} s dark), "
                f"booted {booting.get(node, 0)}x"
            )

    macros = _events_of(events, "macro")
    if macros:
        macro = macros[-1]
        ticks = macro.get("ticks")
        skipped = macro.get("ticks_skipped", 0)
        folded = (
            f" ({float(skipped) / float(ticks):.1%} of {ticks} ticks folded)"
            if ticks
            else ""
        )
        lines += [
            "",
            "## Macro stepping",
            "",
            f"- {macro.get('spans')} spans skipped {skipped} ticks{folded}; "
            f"{macro.get('refusals')} attempts refused",
        ]
        cut_by = macro.get("cut_by") or {}
        if cut_by:
            lines.append(
                "- spans cut by: "
                + ", ".join(f"{k} {v}" for k, v in cut_by.items())
            )
        reasons = macro.get("policy_reasons") or {}
        if reasons:
            lines.append(
                "- policy refusals: "
                + ", ".join(f"{k} {v}" for k, v in reasons.items())
            )
        replays = macro.get("in_span_replays") or {}
        if replays:
            lines.append(
                "- control ticks replayed in-span: "
                + ", ".join(f"{k} {v}" for k, v in replays.items())
            )
        histogram = macro.get("span_lengths") or {}
        if histogram:
            # JSONL serialization sorts keys lexically; restore the
            # numeric bucket order ("1-9" before "10-29" before "300+").
            buckets = sorted(
                histogram.items(),
                key=lambda kv: int(str(kv[0]).split("-")[0].rstrip("+")),
            )
            lines.append(
                "- span lengths: "
                + ", ".join(f"{k}: {v}" for k, v in buckets)
            )

    env_events = _events_of(events, "environment")
    has_environment = bool(starts and starts[0].get("environment"))
    if has_environment or env_events:
        # Only environment-attached runs record the schema additions; a
        # plain run gets no section rather than an empty one.
        lines += ["", "## Environment", ""]
        if has_environment:
            start = starts[0]
            lines.append(f"- environment: `{start.get('environment')}`")
            if start.get("pue") is not None:
                lines.append(f"- PUE: {_format_cell(start.get('pue'))}")
        if env_events:
            lines.append(
                f"- {len(env_events)} signal changes observed on live ticks"
            )
            carbon = [
                float(e["carbon_g_per_kwh"])
                for e in env_events
                if e.get("carbon_g_per_kwh") is not None
            ]
            price = [
                float(e["price_usd_per_kwh"])
                for e in env_events
                if e.get("price_usd_per_kwh") is not None
            ]
            if carbon:
                lines.append(
                    _stats_line("carbon intensity", carbon, "gCO2/kWh")
                )
            if price:
                lines.append(_stats_line("electricity price", price, "$/kWh"))
        else:
            lines.append("- no signal changes within the run")
        run_ends = _events_of(events, "run_end")
        if run_ends:
            end = run_ends[-1]
            if end.get("wall_energy_j") is not None:
                lines.append(
                    f"- wall energy (PUE-inflated): "
                    f"{_format_cell(end.get('wall_energy_j'))} J"
                )
            if end.get("gco2_total_g") is not None:
                lines.append(
                    f"- carbon: {_format_cell(end.get('gco2_total_g'))} gCO2"
                )
            if end.get("cost_usd") is not None:
                lines.append(
                    f"- cost: ${_format_cell(end.get('cost_usd'))}"
                )

    completions = _events_of(events, "completion")
    samples = _events_of(events, "sample")
    if completions or samples:
        lines += ["", "## Measurements", ""]
    if completions:
        latencies = sorted(float(e["latency_s"]) for e in completions)
        p99 = latencies[min(len(latencies), -(-99 * len(latencies) // 100)) - 1]
        lines.append(_stats_line("latency", latencies, "s"))
        lines.append(f"- p99 latency: {p99:.4g} s over {len(latencies)} completions")
    if samples:
        lines.append(
            _stats_line(
                "PSU power", [float(s["psu_power_w"]) for s in samples], "W"
            )
        )
        lines.append(
            _stats_line(
                "RAPL power", [float(s["rapl_power_w"]) for s in samples], "W"
            )
        )

    ends = _events_of(events, "run_end")
    if ends:
        end = ends[-1]
        lines += [
            "",
            "## Totals",
            "",
            f"- queries: {end.get('queries_completed')}/"
            f"{end.get('queries_submitted')} completed",
            f"- total energy: {_format_cell(end.get('total_energy_j'))} J",
            f"- events: {end.get('total_events')} emitted, "
            f"{end.get('dropped_events')} dropped by the ring buffer",
        ]
    return "\n".join(lines)
