"""The paper's custom key-value store benchmark.

4-byte uniformly distributed keys and values (§6, Table 1).  Two
variants:

* **indexed** — point GETs/PUTs through a per-partition hash index:
  memory *latency*-bound (pointer chases dominate), favouring medium core
  frequencies and a low uncore clock;
* **non-indexed** — every GET scans its partition's key column: memory
  *bandwidth*-bound, saturating the memory controllers like Fig. 10(a)
  and yielding the largest energy savings in Table 1.

Client requests are batched: one simulated :class:`Query` stands for
``ops_per_query`` individual KV operations issued by one client, which
keeps end-to-end simulations tractable while preserving the demand the
hardware sees (the per-op costs and byte counts are unchanged).
"""

from __future__ import annotations

import numpy as np

from repro.dbms.execution import (
    insert_op,
    lookup_op,
    modeled_lookup_cost,
    modeled_scan_cost,
    scan_op,
)
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage
from repro.hardware.perfmodel import WorkloadCharacteristics
from repro.storage.partition import PartitionMap, hash_partition
from repro.storage.schema import DataType, Schema
from repro.workloads.base import Workload, WorkloadVariant, pick_partitions

#: Key space of the benchmark (4-byte keys).
KEY_SPACE = 2**31 - 1
#: Fraction of operations that are writes (PUT).
PUT_FRACTION = 0.05
#: Rows held by each partition's fragment in the modeled cost computation.
ROWS_PER_PARTITION = 350_000
#: Bytes per row: 4-byte key + 4-byte value.
ROW_BYTES = 8

_KV_SCHEMA = Schema.of(key=DataType.INT32, value=DataType.INT32)

INDEXED_CHARACTERISTICS = WorkloadCharacteristics(
    name="kv-indexed",
    base_cpi=0.80,
    ht_speedup=1.25,
    bytes_per_instr=0.30,
    miss_rate=0.004,
)

NON_INDEXED_CHARACTERISTICS = WorkloadCharacteristics(
    name="kv-non-indexed",
    base_cpi=0.70,
    ht_speedup=1.10,
    bytes_per_instr=2.0,
)


class KeyValueWorkload(Workload):
    """Key-value benchmark with client-side operation batching."""

    def __init__(
        self,
        variant: WorkloadVariant = WorkloadVariant.NON_INDEXED,
        ops_per_query: int | None = None,
        skew: float = 0.0,
    ):
        super().__init__(variant)
        if ops_per_query is None:
            # Indexed ops are ~3 orders of magnitude cheaper; batch more of
            # them so one simulated query is a comparable unit of work.
            ops_per_query = 25 if not self.is_indexed else 100_000
        if ops_per_query < 1:
            raise ValueError(f"ops_per_query must be >= 1, got {ops_per_query}")
        if skew < 0.0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.ops_per_query = ops_per_query
        #: Zipf-like partition skew: 0 = uniform; larger values focus the
        #: requests on fewer partitions.  Exercises the elasticity layer's
        #: implicit load balancing (any worker of a socket serves the hot
        #: partitions, paper section 3).
        self.skew = skew

    @property
    def name(self) -> str:
        return "kv"

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        if self.is_indexed:
            return INDEXED_CHARACTERISTICS
        return NON_INDEXED_CHARACTERISTICS

    @property
    def nominal_peak_qps(self) -> float:
        # Calibrated so that 1.0 load saturates the 2-socket machine under
        # the all-on baseline configuration (DESIGN.md §5).
        if self.is_indexed:
            return 1000.0 * (100_000 / self.ops_per_query)
        return 1300.0 * (25 / self.ops_per_query)

    # -- modeled mode ---------------------------------------------------------

    def _op_cost(self) -> WorkCost:
        """Modeled cost of one KV operation."""
        if self.is_indexed:
            return modeled_lookup_cost(probes=1.4)
        return modeled_scan_cost(
            rows=ROWS_PER_PARTITION, row_bytes=ROW_BYTES, selectivity=1e-6
        )

    def make_modeled_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        op_cost = self._op_cost()
        if self.is_indexed:
            fan_out = min(16, len(partitions))
        else:
            fan_out = min(4, len(partitions))
        ops_per_partition = max(1, self.ops_per_query // fan_out)
        if self.skew > 0.0:
            targets = self._skewed_partitions(rng, partitions, fan_out)
        else:
            targets = pick_partitions(rng, partitions, fan_out)
        messages = [
            Message(
                query_id=-1,
                target_partition=pid,
                cost=WorkCost(
                    instructions=op_cost.instructions * ops_per_partition,
                    bytes_accessed=op_cost.bytes_accessed * ops_per_partition,
                ),
            )
            for pid in targets
        ]
        coordinator = int(rng.integers(0, partitions.socket_count))
        return Query(
            arrival_s=arrival_s,
            stages=[QueryStage(messages)],
            coordinator_socket=coordinator,
        )

    def make_modeled_batch(
        self,
        rng: np.random.Generator,
        arrival_times_s: list[float],
        partitions: PartitionMap,
    ) -> list[Query]:
        # Hot-path override: per-query invariants (cost model, fan-out,
        # the shared per-partition WorkCost — frozen, so sharing is safe)
        # are hoisted out of the loop.  RNG draws stay in the exact order
        # of repeated make_modeled_query calls: partition picks, then the
        # coordinator draw, per query.
        op_cost = self._op_cost()
        if self.is_indexed:
            fan_out = min(16, len(partitions))
        else:
            fan_out = min(4, len(partitions))
        ops_per_partition = max(1, self.ops_per_query // fan_out)
        message_cost = WorkCost(
            instructions=op_cost.instructions * ops_per_partition,
            bytes_accessed=op_cost.bytes_accessed * ops_per_partition,
        )
        all_partitions = list(range(len(partitions)))
        socket_count = partitions.socket_count
        queries = []
        for arrival_s in arrival_times_s:
            if self.skew > 0.0:
                targets = self._skewed_partitions(rng, partitions, fan_out)
            elif fan_out == len(all_partitions):
                targets = all_partitions
            else:
                targets = [
                    int(p) for p in rng.choice(len(all_partitions), size=fan_out,
                                               replace=False)
                ]
            messages = [
                Message(query_id=-1, target_partition=pid, cost=message_cost)
                for pid in targets
            ]
            coordinator = int(rng.integers(0, socket_count))
            queries.append(
                Query(
                    arrival_s=arrival_s,
                    stages=[QueryStage(messages)],
                    coordinator_socket=coordinator,
                )
            )
        return queries

    def make_modeled_bank(
        self,
        rng: np.random.Generator,
        arrival_times_s: list[float],
        partitions: PartitionMap,
    ):
        # Columnar twin of make_modeled_batch: same query ids, same RNG
        # draw order per query (partition picks, then the coordinator
        # draw), same per-message costs — just no Message/Query objects.
        from repro.dbms.querybank import QueryBank
        from repro.dbms.queries import take_query_ids

        count = len(arrival_times_s)
        if not count:
            return None
        op_cost = self._op_cost()
        if self.is_indexed:
            fan_out = min(16, len(partitions))
        else:
            fan_out = min(4, len(partitions))
        ops_per_partition = max(1, self.ops_per_query // fan_out)
        all_partitions = np.arange(len(partitions), dtype=np.int64)
        socket_count = partitions.socket_count
        targets = np.empty(count * fan_out, dtype=np.int64)
        coordinators = np.empty(count, dtype=np.int64)
        # The partition and coordinator draws must interleave per query to
        # keep the rng stream identical to the scalar path, so this loop
        # stays scalar; the per-message object fabrication it replaces is
        # what the columns eliminate.
        for i in range(count):
            if self.skew > 0.0:
                picks = self._skewed_partitions(rng, partitions, fan_out)
                targets[i * fan_out : (i + 1) * fan_out] = picks
            elif fan_out == all_partitions.size:
                targets[i * fan_out : (i + 1) * fan_out] = all_partitions
            else:
                targets[i * fan_out : (i + 1) * fan_out] = rng.choice(
                    all_partitions.size, size=fan_out, replace=False
                )
            coordinators[i] = rng.integers(0, socket_count)
        instructions = np.full(
            count * fan_out, op_cost.instructions * ops_per_partition
        )
        bytes_accessed = np.full(
            count * fan_out, op_cost.bytes_accessed * ops_per_partition
        )
        return QueryBank(
            first_query_id=take_query_ids(count),
            fan_out=fan_out,
            arrivals_s=np.asarray(arrival_times_s, dtype=np.float64),
            coordinators=coordinators,
            targets=targets,
            instructions=instructions,
            bytes_accessed=bytes_accessed,
        )

    def _skewed_partitions(
        self, rng: np.random.Generator, partitions: PartitionMap, count: int
    ) -> list[int]:
        """Zipf-weighted distinct partition picks (hot partitions first)."""
        total = len(partitions)
        ranks = np.arange(1, total + 1, dtype=np.float64)
        weights = ranks ** -(1.0 + self.skew)
        weights /= weights.sum()
        picks = rng.choice(total, size=count, replace=False, p=weights)
        return [int(p) for p in picks]

    # -- real mode ---------------------------------------------------------------

    def setup_real(
        self, partitions: PartitionMap, scale: int, rng: np.random.Generator
    ) -> None:
        """Load ``scale`` rows, hash-partitioned on the key."""
        partitions.create_table_everywhere("kv", _KV_SCHEMA)
        keys = rng.integers(0, KEY_SPACE, size=scale)
        values = rng.integers(0, KEY_SPACE, size=scale)
        for key, value in zip(keys, values):
            partition = partitions.partition_for_key(int(key))
            partition.table("kv").insert((int(key), int(value)))
        if self.is_indexed:
            for partition in partitions:
                partition.table("kv").create_index("key")

    def make_real_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """One small real request: a handful of GETs (and maybe a PUT)."""
        ops = max(1, min(8, self.ops_per_query))
        messages = []
        for _ in range(ops):
            key = int(rng.integers(0, KEY_SPACE))
            pid = hash_partition(key, len(partitions))
            if rng.random() < PUT_FRACTION:
                operation = insert_op("kv", (key, int(rng.integers(0, KEY_SPACE))))
            elif self.is_indexed:
                operation = lookup_op("kv", "key", key)
            else:
                operation = scan_op("kv", "key", key, key, project=("key", "value"))
            messages.append(
                Message(query_id=-1, target_partition=pid, operation=operation)
            )
        coordinator = int(rng.integers(0, partitions.socket_count))
        return Query(
            arrival_s=arrival_s,
            stages=[QueryStage(messages)],
            coordinator_socket=coordinator,
        )
