"""Shared helpers for the benchmark harness (see conftest.py)."""

from __future__ import annotations

import os
from typing import Sequence

from repro.sim import ExperimentSuite, RunConfiguration, RunResult
from repro.sim.suite import suite_worker_count


def bench_duration_s() -> float:
    """Configured duration of end-to-end load-profile runs."""
    return float(os.environ.get("REPRO_BENCH_DURATION", "45"))


def suite_workers() -> int:
    """Worker processes per experiment batch.

    Set with ``--suite-workers`` (see conftest.py) or the
    ``REPRO_SUITE_WORKERS`` environment variable; defaults to 1 (inline,
    no subprocesses).
    """
    return suite_worker_count(default=1)


def run_experiments(
    configs: Sequence[RunConfiguration],
    durations: Sequence[float | None] | None = None,
) -> list[RunResult]:
    """Run a batch of configurations through the shared experiment suite.

    Fans out across ``suite_workers()`` processes and serves repeats from
    the on-disk result cache (``REPRO_CACHE_DIR``, default
    ``.repro_cache/``) — a second benchmark invocation with unchanged
    configurations replays from disk.
    """
    return ExperimentSuite(workers=suite_workers()).run(configs, durations)


def heading(title: str) -> None:
    """Print a figure/table heading."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
