"""Mixed (HTAP-style) workloads: concurrent heterogeneous query streams.

The paper's energy profiles explicitly "consider mutual interferences of
simultaneously running queries" — profiles are properties of the *mix* a
socket currently serves, not of a single benchmark.  This module makes
such mixes runnable end-to-end: a :class:`MixedWorkload` interleaves the
query streams of its components (e.g. TATP transactions next to SSB
analytics), tagging every message with its component's characteristics
so the engine reports the true instruction-weighted blend per socket.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.dbms.queries import Query
from repro.hardware.perfmodel import (
    WorkloadCharacteristics,
    blend_characteristics,
)
from repro.storage.partition import PartitionMap
from repro.workloads.base import Workload, WorkloadVariant


class MixedWorkload(Workload):
    """A weighted interleaving of component workloads.

    ``components`` are (workload, weight) pairs; weights give each
    component's share of the *query stream*.  At load fraction ``f`` the
    mix issues ``f × Σ weight_i × peak_i`` queries per second, each drawn
    from a component with probability proportional to
    ``weight_i × peak_i`` — i.e. every component runs at ``f`` of its own
    nominal rate, scaled by its weight.
    """

    def __init__(self, components: list[tuple[Workload, float]]):
        if not components:
            raise WorkloadError("a mixed workload needs >= 1 component")
        if any(weight <= 0 for _, weight in components):
            raise WorkloadError("component weights must be > 0")
        super().__init__(WorkloadVariant.INDEXED)
        self.components = components
        self._rates = [
            weight * workload.nominal_peak_qps for workload, weight in components
        ]
        total = sum(self._rates)
        self._pick_probabilities = [rate / total for rate in self._rates]

    @property
    def name(self) -> str:
        inner = "+".join(w.name for w, _ in self.components)
        return f"mix({inner})"

    @property
    def full_name(self) -> str:
        inner = ", ".join(
            f"{w.full_name}×{weight:g}" for w, weight in self.components
        )
        return f"mix[{inner}]"

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        """Rate-weighted blend — the warm-start/profile-seed view."""
        return blend_characteristics(
            [
                (workload.characteristics, rate)
                for (workload, _), rate in zip(self.components, self._rates)
            ]
        )

    @property
    def nominal_peak_qps(self) -> float:
        return sum(self._rates)

    def _pick(self, rng: np.random.Generator) -> Workload:
        index = int(
            rng.choice(len(self.components), p=self._pick_probabilities)
        )
        return self.components[index][0]

    def make_modeled_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """One query from a randomly drawn component, messages tagged."""
        component = self._pick(rng)
        query = component.make_modeled_query(rng, arrival_s, partitions)
        for stage in query.stages:
            for message in stage.messages:
                message.characteristics = component.characteristics
        return query

    def setup_real(
        self, partitions: PartitionMap, scale: int, rng: np.random.Generator
    ) -> None:
        """Load every component's data side by side."""
        for workload, _ in self.components:
            workload.setup_real(partitions, scale, rng)

    def make_real_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """One real query from a randomly drawn component, tagged."""
        component = self._pick(rng)
        query = component.make_real_query(rng, arrival_s, partitions)
        for stage in query.stages:
            for message in stage.messages:
                message.characteristics = component.characteristics
        return query
