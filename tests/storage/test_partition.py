"""Tests for partitions, placement, and key routing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PartitionError
from repro.storage.partition import PartitionMap, hash_partition
from repro.storage.schema import DataType, Schema


class TestHashPartition:
    def test_deterministic(self):
        assert hash_partition(123, 48) == hash_partition(123, 48)

    def test_in_range(self):
        for key in range(1000):
            assert 0 <= hash_partition(key, 48) < 48

    def test_rejects_zero_partitions(self):
        with pytest.raises(PartitionError):
            hash_partition(1, 0)

    def test_roughly_uniform(self):
        counts = [0] * 16
        for key in range(16000):
            counts[hash_partition(key, 16)] += 1
        assert min(counts) > 700  # perfectly uniform would be 1000


class TestPartitionMap:
    @pytest.fixture
    def pmap(self):
        return PartitionMap(48, 2)

    def test_len(self, pmap):
        assert len(pmap) == 48

    def test_round_robin_placement(self, pmap):
        assert pmap.socket_of(0) == 0
        assert pmap.socket_of(1) == 1
        assert pmap.socket_of(2) == 0

    def test_partitions_per_socket_balanced(self, pmap):
        assert len(pmap.partitions_on_socket(0)) == 24
        assert len(pmap.partitions_on_socket(1)) == 24

    def test_unknown_partition(self, pmap):
        with pytest.raises(PartitionError):
            pmap.partition(48)

    def test_partition_for_key_consistent(self, pmap):
        p1 = pmap.partition_for_key(999)
        p2 = pmap.partition_for_key(999)
        assert p1 is p2

    def test_invalid_sizes(self):
        with pytest.raises(PartitionError):
            PartitionMap(0, 2)
        with pytest.raises(PartitionError):
            PartitionMap(4, 0)

    def test_fewer_partitions_than_sockets_rejected(self):
        # Would leave sockets with zero partitions and degenerate demand.
        with pytest.raises(PartitionError, match="socket_count"):
            PartitionMap(1, 2)
        with pytest.raises(PartitionError, match="socket_count"):
            PartitionMap(3, 4)

    def test_explicit_assignment(self):
        pmap = PartitionMap(4, 2, assignment=[0, 0, 0, 1])
        assert pmap.assignment() == (0, 0, 0, 1)
        assert len(pmap.partitions_on_socket(0)) == 3

    def test_assignment_validation(self):
        with pytest.raises(PartitionError, match="covers"):
            PartitionMap(4, 2, assignment=[0, 1])
        with pytest.raises(PartitionError, match="unknown"):
            PartitionMap(4, 2, assignment=[0, 1, 0, 2])
        with pytest.raises(PartitionError, match="without partitions"):
            PartitionMap(4, 2, assignment=[0, 0, 0, 0])

    def test_move_partition(self, pmap):
        pmap.move_partition(0, 1)
        assert pmap.socket_of(0) == 1
        assert pmap.assignment()[0] == 1
        with pytest.raises(PartitionError):
            pmap.move_partition(0, 2)
        with pytest.raises(PartitionError):
            pmap.move_partition(99, 0)

    def test_create_table_everywhere(self, pmap):
        schema = Schema.of(k=DataType.INT64)
        pmap.create_table_everywhere("t", schema)
        for partition in pmap:
            assert partition.table("t").row_count == 0

    def test_duplicate_table_rejected(self, pmap):
        schema = Schema.of(k=DataType.INT64)
        pmap.partition(0).create_table("t", schema)
        with pytest.raises(PartitionError):
            pmap.partition(0).create_table("t", schema)

    def test_missing_table_rejected(self, pmap):
        with pytest.raises(PartitionError):
            pmap.partition(0).table("missing")

    def test_partition_accounting(self, pmap):
        schema = Schema.of(k=DataType.INT64)
        partition = pmap.partition(3)
        partition.create_table("t", schema)
        partition.table("t").insert((5,))
        assert partition.row_count == 1
        assert partition.bytes_used == 8


@given(
    keys=st.lists(st.integers(min_value=0, max_value=2**40), max_size=100),
    partitions=st.integers(min_value=2, max_value=64),
)
def test_property_routing_total_and_stable(keys, partitions):
    pmap = PartitionMap(partitions, socket_count=2)
    for key in keys:
        partition = pmap.partition_for_key(key)
        assert partition.partition_id == hash_partition(key, partitions)
        assert pmap.socket_of(partition.partition_id) in (0, 1)
