"""Tests for trace replay: exact per-tick arrival reproduction."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.loadprofiles import TraceReplayProfile, load_replay_trace, spike_profile
from repro.sim import RunConfiguration, SimulationRunner
from repro.telemetry import TraceRecorder
from repro.workloads import KeyValueWorkload, WorkloadVariant


class TestConstruction:
    def test_sorts_and_exposes_arrivals(self):
        profile = TraceReplayProfile([3.0, 1.0, 2.0], duration_s=4.0)
        assert list(profile.arrival_times_s) == [1.0, 2.0, 3.0]
        assert profile.arrival_count == 3
        assert profile.duration_s == 4.0

    def test_duration_defaults_to_last_arrival(self):
        profile = TraceReplayProfile([0.5, 2.5])
        assert profile.duration_s == 2.5

    def test_validation(self):
        with pytest.raises(SimulationError):
            TraceReplayProfile([])
        with pytest.raises(SimulationError):
            TraceReplayProfile([-1.0, 2.0])
        with pytest.raises(SimulationError):
            TraceReplayProfile([5.0], duration_s=2.0)  # arrival past end

    def test_display_fraction_peaks_at_one_by_default(self):
        profile = TraceReplayProfile(
            [0.1, 0.2, 0.3, 5.0], duration_s=10.0
        )
        times = np.linspace(0.0, 10.0, 1000)
        assert float(profile.fraction_array(times).max()) == pytest.approx(1.0)
        assert profile.fraction(-1.0) == 0.0
        assert profile.fraction(11.0) == 0.0


class TestCountsArray:
    def test_histograms_onto_the_tick_grid(self):
        profile = TraceReplayProfile(
            [0.001, 0.0015, 0.003, 0.0059], duration_s=0.008
        )
        counts = profile.counts_array(0.0, 0.002, 0, 4)
        assert list(counts) == [2, 1, 1, 0]

    def test_partial_windows_sum_to_the_whole(self):
        times = np.sort(np.random.default_rng(3).uniform(0.0, 1.0, 500))
        profile = TraceReplayProfile(times, duration_s=1.0)
        whole = profile.counts_array(0.0, 0.002, 0, 500)
        first = profile.counts_array(0.0, 0.002, 0, 200)
        rest = profile.counts_array(0.0, 0.002, 200, 300)
        assert int(whole.sum()) == 500
        assert list(whole) == list(first) + list(rest)

    def test_bad_tick_rejected(self):
        profile = TraceReplayProfile([0.5], duration_s=1.0)
        with pytest.raises(SimulationError):
            profile.counts_array(0.0, 0.0, 0, 1)


class TestFileLoading:
    def test_csv_with_counts(self, tmp_path):
        path = tmp_path / "arrivals.csv"
        path.write_text("time_s,count\n0.1,2\n0.5,1\n0.9,0\n")
        profile = load_replay_trace(path, duration_s=1.0)
        assert profile.arrival_count == 3
        assert list(profile.arrival_times_s) == [0.1, 0.1, 0.5]
        assert profile.name == "replay:arrivals"

    def test_csv_negative_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0.1,-2\n")
        with pytest.raises(SimulationError):
            TraceReplayProfile.from_csv(path)

    def test_generic_jsonl_rows(self, tmp_path):
        path = tmp_path / "curve.jsonl"
        path.write_text(
            '{"time_s": 0.25, "count": 3}\n{"t": 0.75}\n'
        )
        profile = load_replay_trace(path, duration_s=1.0)
        assert profile.arrival_count == 4

    def test_missing_file(self, tmp_path):
        with pytest.raises(SimulationError):
            load_replay_trace(tmp_path / "nope.jsonl")

    def test_trace_without_arrivals(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "run_start", "profile": "spike"}\n')
        with pytest.raises(SimulationError):
            TraceReplayProfile.from_trace(path)


class TestRoundTrip:
    """Export a run's trace, rebuild a replay profile from it, and the
    replayed per-tick arrival counts must match the original run's,
    tick for tick."""

    DURATION_S = 2.0

    def _config(self, profile, **kwargs):
        return RunConfiguration(
            workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
            profile=profile,
            policy="baseline",
            seed=9,
            **kwargs,
        )

    def _per_tick_counts(self, recorder, tick_s):
        ticks = round(self.DURATION_S / tick_s)
        counts = [0] * ticks
        for event in recorder.events():
            if event["event"] == "arrival":
                counts[int(event["t"] // tick_s)] += 1
        return counts

    def test_replayed_counts_match_the_recording(self, tmp_path):
        original = TraceRecorder()
        config = self._config(spike_profile(duration_s=self.DURATION_S))
        SimulationRunner(config, observers=[original]).run()
        trace = tmp_path / "run.jsonl"
        original.to_jsonl(trace)

        profile = TraceReplayProfile.from_trace(trace)
        assert profile.name == "replay:spike"
        assert profile.duration_s == self.DURATION_S

        replay_recorder = TraceRecorder()
        replay_result = SimulationRunner(
            self._config(profile), observers=[replay_recorder]
        ).run()

        original_counts = self._per_tick_counts(original, config.tick_s)
        replay_counts = self._per_tick_counts(replay_recorder, config.tick_s)
        assert replay_counts == original_counts
        assert replay_result.queries_submitted == sum(original_counts)
        assert replay_result.queries_submitted == profile.arrival_count

    def test_replay_is_stepping_invariant(self, tmp_path):
        recorder = TraceRecorder()
        SimulationRunner(
            self._config(spike_profile(duration_s=self.DURATION_S)),
            observers=[recorder],
        ).run()
        trace = tmp_path / "run.jsonl"
        recorder.to_jsonl(trace)
        profile = TraceReplayProfile.from_trace(trace)

        on = SimulationRunner(self._config(profile, macro_step=True)).run()
        off = SimulationRunner(self._config(profile, macro_step=False)).run()
        assert on.total_energy_j == off.total_energy_j
        assert on.queries_submitted == off.queries_submitted
        assert on.latencies_s == off.latencies_s
