"""Tests for the phased tick pipeline's observer hooks."""

import pytest

from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, SimulationRunner
from repro.sim.observers import ObserverList, RunObserver, SamplingObserver
from repro.workloads import KeyValueWorkload, WorkloadVariant


def kv(variant=WorkloadVariant.NON_INDEXED):
    return KeyValueWorkload(variant)


def config(duration_s=1.0, **kwargs):
    return RunConfiguration(
        workload=kv(),
        profile=constant_profile(0.3, duration_s=duration_s),
        **kwargs,
    )


class RecordingObserver(RunObserver):
    """Records every hook invocation in order."""

    def __init__(self):
        self.events = []
        self.runner = None
        self.result = None

    def on_run_start(self, runner, result):
        self.runner = runner
        self.result = result
        self.events.append("run_start")

    def before_arrivals(self, now_s, dt_s):
        self.events.append("before_arrivals")

    def on_arrival(self, now_s, query):
        self.events.append("arrival")

    def after_control(self, now_s, dt_s):
        self.events.append("after_control")

    def after_step(self, now_s, tick_result):
        self.events.append("after_step")

    def on_completion(self, now_s, completion):
        self.events.append("completion")

    def end_tick(self, now_s, tick_result):
        self.events.append("end_tick")

    def on_run_end(self, result):
        self.events.append("run_end")


class TestPipelineHooks:
    def test_hook_order_within_each_tick(self):
        observer = RecordingObserver()
        SimulationRunner(config(duration_s=0.5), observers=[observer]).run()

        assert observer.events[0] == "run_start"
        assert observer.events[-1] == "run_end"
        # Per-tick phase markers appear once per tick, in pipeline order.
        ticks = 250  # 0.5 s at 2 ms
        assert observer.events.count("before_arrivals") == ticks
        assert observer.events.count("after_control") == ticks
        assert observer.events.count("after_step") == ticks
        assert observer.events.count("end_tick") == ticks
        phases = [
            e
            for e in observer.events
            if e in ("before_arrivals", "after_control", "after_step", "end_tick")
        ]
        expected = ["before_arrivals", "after_control", "after_step", "end_tick"]
        assert phases == expected * ticks

    def test_arrivals_and_completions_hooked(self):
        observer = RecordingObserver()
        result = SimulationRunner(config(), observers=[observer]).run()
        assert observer.events.count("arrival") == result.queries_submitted
        assert observer.events.count("completion") == result.queries_completed
        assert result.queries_submitted > 0

    def test_arrival_lands_in_phase_one(self):
        observer = RecordingObserver()
        SimulationRunner(config(duration_s=0.2), observers=[observer]).run()
        markers = ("before_arrivals", "after_control", "after_step", "end_tick")
        last_marker = None
        saw_arrival = False
        for event in observer.events:
            if event in markers:
                last_marker = event
            elif event == "arrival":
                saw_arrival = True
                # Phase 1: between before_arrivals and after_control.
                assert last_marker == "before_arrivals"
        assert saw_arrival

    def test_add_observer_after_construction(self):
        observer = RecordingObserver()
        runner = SimulationRunner(config(duration_s=0.2))
        runner.add_observer(observer)
        runner.run()
        assert "run_start" in observer.events

    def test_observer_sees_final_totals(self):
        class TotalCheck(RunObserver):
            def __init__(self):
                self.energy = None

            def on_run_end(self, result):
                self.energy = result.total_energy_j

        check = TotalCheck()
        result = SimulationRunner(config(), observers=[check]).run()
        assert check.energy == result.total_energy_j
        assert check.energy > 0


class TestSamplingObserver:
    def test_sampling_is_phase_anchored(self):
        result = SimulationRunner(config(duration_s=2.0)).run()
        times = [s.time_s for s in result.samples]
        assert times[0] == pytest.approx(0.0)
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(0.25, abs=1e-9) for d in deltas)

    def test_standalone_observer_composes(self):
        # A second sampler at a different cadence runs independently.
        extra_result_holder = {}

        class SecondSampler(SamplingObserver):
            def on_run_start(self, runner, result):
                import copy

                # Sample into a private result so the runs don't mix.
                private = copy.deepcopy(result)
                extra_result_holder["result"] = private
                super().on_run_start(runner, private)

        runner = SimulationRunner(
            config(duration_s=1.0), observers=[SecondSampler(0.5)]
        )
        result = runner.run()
        assert len(result.samples) == 4  # 0, .25, .5, .75
        assert len(extra_result_holder["result"].samples) == 2  # 0, .5


class TestObserverList:
    def test_dispatch_order(self):
        first, second = RecordingObserver(), RecordingObserver()
        observers = ObserverList([first, second])
        observers.before_arrivals(0.0, 0.002)
        assert first.events == ["before_arrivals"]
        assert second.events == ["before_arrivals"]

    def test_iteration(self):
        first, second = RecordingObserver(), RecordingObserver()
        assert list(ObserverList([first, second])) == [first, second]
