"""A/B pin: the policy/pipeline refactor is bit-identical.

The goldens under ``tests/sim/goldens/`` are pickled
:class:`~repro.sim.metrics.RunResult` objects captured *before* the
control layer was refactored behind the policy registry and the phased
observer pipeline (see ``golden_config.py`` for the exact capture
commit and configuration).  The refactor's contract is behaviour
preservation: the same configuration must still produce the same result
object field-for-field — energies, every sample point, every latency.

If a deliberate model change breaks these on purpose, re-capture with::

    PYTHONPATH=src python tests/sim/golden_config.py
"""

import pickle

import pytest

from repro.sim import run_experiment

from .golden_config import (
    GOLDEN_POLICIES,
    golden_configuration,
    golden_path,
)


def load_golden(policy):
    path = golden_path(policy)
    if not path.exists():
        pytest.skip(f"golden for {policy!r} not captured ({path})")
    with open(path, "rb") as fh:
        return pickle.load(fh)


@pytest.mark.parametrize("policy", GOLDEN_POLICIES)
def test_run_result_bit_identical_to_golden(policy):
    golden = load_golden(policy)
    fresh = run_experiment(golden_configuration(policy))

    # Field-level diagnostics first, so a mismatch names the culprit.
    assert fresh.policy == golden.policy
    assert fresh.queries_submitted == golden.queries_submitted
    assert fresh.queries_completed == golden.queries_completed
    assert fresh.total_energy_j == golden.total_energy_j  # exact, no approx
    assert fresh.latencies_s == golden.latencies_s
    assert len(fresh.samples) == len(golden.samples)
    for fresh_sample, golden_sample in zip(fresh.samples, golden.samples):
        assert fresh_sample == golden_sample
    # The full dataclass comparison seals everything else.
    assert fresh == golden


def test_goldens_are_distinct_runs():
    """Guards against captures that accidentally pickled the same run."""
    energies = {p: load_golden(p).total_energy_j for p in GOLDEN_POLICIES}
    assert len(set(energies.values())) == len(GOLDEN_POLICIES)
    # And the paper's ordering holds even at golden scale (4 s spike).
    assert energies["ecl"] < energies["ondemand"] < energies["baseline"]


def test_new_policies_land_between_baseline_and_ecl():
    """§4/§7: single-technique policies recover part of the savings.

    ``performance`` (race-to-idle at turbo) and ``epb-only`` (hardware
    EPB/EET hints) must beat the uncontrolled baseline but not the full
    ECL — even at the goldens' 4 s spike scale.
    """
    ecl = load_golden("ecl").total_energy_j
    baseline = load_golden("baseline").total_energy_j
    for policy in ("performance", "epb-only"):
        result = run_experiment(golden_configuration(policy))
        assert result.queries_completed == result.queries_submitted
        assert ecl < result.total_energy_j < baseline


def test_legacy_annotation_fields_stay_empty():
    """The goldens pin ondemand/baseline samples to empty annotations.

    Before the refactor only the ECL populated ``performance_levels`` /
    ``applied``; the uniform annotation interface must not start
    populating them for the legacy policies.
    """
    for policy in GOLDEN_POLICIES:
        golden = load_golden(policy)
        populated = any(
            s.performance_levels or s.applied for s in golden.samples
        )
        if policy == "ecl":
            assert populated
        else:
            assert not populated
