"""Ordered secondary index: binary-searchable key → rows mapping.

Point lookups are the hash index's job (:mod:`repro.storage.hashindex`);
range predicates — SSB's ``lo_orderdate BETWEEN a AND b``, TATP's
time-window scans — need an *ordered* structure.  This implementation
keeps a sorted numpy array of (key, row) pairs with a small unsorted
append buffer that is merged on demand (the classic "sorted run + delta"
design): appends stay O(1) amortized, range queries are two binary
searches plus a slice, and the periodic merge costs O(n) but is charged
to the inserts that caused it.

Like the hash index, it counts comparison steps so the execution layer
can charge realistic instruction costs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError

#: Delta buffer capacity before an automatic merge into the sorted run.
_DELTA_LIMIT = 256


class OrderedIndex:
    """Sorted (key, row) index over int64 keys supporting range queries."""

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.int64)
        self._rows = np.empty(0, dtype=np.int64)
        self._delta: list[tuple[int, int]] = []
        self.comparison_count = 0
        self.merge_count = 0

    # -- size -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys) + len(self._delta)

    @property
    def sorted_size(self) -> int:
        """Entries in the sorted run (excludes the delta buffer)."""
        return len(self._keys)

    @property
    def delta_size(self) -> int:
        """Entries waiting in the unsorted delta buffer."""
        return len(self._delta)

    # -- mutation ------------------------------------------------------------

    def insert(self, key: int, row: int) -> None:
        """Insert a (key, row) pair; duplicates are allowed.

        Raises:
            StorageError: on negative row positions.
        """
        if row < 0:
            raise StorageError(f"row positions must be >= 0, got {row}")
        self._delta.append((int(key), int(row)))
        if len(self._delta) >= _DELTA_LIMIT:
            self._merge()

    def _merge(self) -> None:
        """Fold the delta buffer into the sorted run."""
        if not self._delta:
            return
        delta_keys = np.array([k for k, _ in self._delta], dtype=np.int64)
        delta_rows = np.array([r for _, r in self._delta], dtype=np.int64)
        keys = np.concatenate([self._keys, delta_keys])
        rows = np.concatenate([self._rows, delta_rows])
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._rows = rows[order]
        self._delta.clear()
        self.merge_count += 1

    def compact(self) -> None:
        """Force-merge the delta buffer (e.g. after bulk loading)."""
        self._merge()

    # -- queries ------------------------------------------------------------

    def range_rows(self, low: int, high: int) -> list[int]:
        """Row positions with ``low <= key <= high`` (unordered).

        Raises:
            StorageError: if ``low > high``.
        """
        if low > high:
            raise StorageError(f"empty range [{low}, {high}]")
        left = int(np.searchsorted(self._keys, low, side="left"))
        right = int(np.searchsorted(self._keys, high, side="right"))
        # Two binary searches over the sorted run...
        if len(self._keys):
            self.comparison_count += 2 * int(np.log2(len(self._keys)) + 1)
        result = [int(r) for r in self._rows[left:right]]
        # ...plus a linear pass over the (small) delta buffer.
        self.comparison_count += len(self._delta)
        result.extend(r for k, r in self._delta if low <= k <= high)
        return result

    def lookup(self, key: int) -> list[int]:
        """Row positions stored under exactly ``key``."""
        return self.range_rows(key, key)

    def min_key(self) -> int | None:
        """Smallest stored key, or None when empty."""
        candidates = []
        if len(self._keys):
            candidates.append(int(self._keys[0]))
        if self._delta:
            candidates.append(min(k for k, _ in self._delta))
        return min(candidates) if candidates else None

    def max_key(self) -> int | None:
        """Largest stored key, or None when empty."""
        candidates = []
        if len(self._keys):
            candidates.append(int(self._keys[-1]))
        if self._delta:
            candidates.append(max(k for k, _ in self._delta))
        return max(candidates) if candidates else None
