"""Queries: multi-stage message graphs and their completion tracking.

A query fans out into stage-0 messages (one per target partition); when
every message of a stage has been processed, the next stage is dispatched
(e.g. a join/aggregation step at a coordinator partition).  When the last
stage completes, the query's latency is the interval from arrival to the
final message completion — the metric the system-level ECL supervises
against the user-defined limit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.dbms.messages import Message

_query_ids = itertools.count()


@dataclass
class QueryStage:
    """One stage: messages dispatched together once the prior stage ends."""

    messages: list[Message]

    def __post_init__(self) -> None:
        if not self.messages:
            raise SimulationError("a query stage needs at least one message")


@dataclass
class Query:
    """One client query: an ordered list of stages."""

    arrival_s: float
    stages: list[QueryStage]
    coordinator_socket: int = 0
    query_id: int = field(default_factory=lambda: next(_query_ids))

    def __post_init__(self) -> None:
        if not self.stages:
            raise SimulationError("a query needs at least one stage")
        for stage in self.stages:
            for message in stage.messages:
                message.query_id = self.query_id
                message.created_at_s = self.arrival_s


@dataclass(frozen=True)
class QueryCompletion:
    """Completion record of one query."""

    query_id: int
    arrival_s: float
    completion_s: float

    @property
    def latency_s(self) -> float:
        """End-to-end query latency."""
        return self.completion_s - self.arrival_s


class QueryTracker:
    """Tracks outstanding messages of in-flight queries.

    The engine calls :meth:`dispatch` on arrival (getting the stage-0
    messages to route) and :meth:`on_message_done` per processed message
    (getting either follow-up messages to route or a completion record).
    """

    def __init__(self) -> None:
        self._queries: dict[int, Query] = {}
        self._stage_index: dict[int, int] = {}
        self._remaining: dict[int, int] = {}
        self.completed_count = 0
        self.dispatched_count = 0

    @property
    def in_flight(self) -> int:
        """Number of queries currently being processed."""
        return len(self._queries)

    def dispatch(self, query: Query) -> list[Message]:
        """Register a query and return its stage-0 messages.

        Raises:
            SimulationError: if the query id is already in flight.
        """
        if query.query_id in self._queries:
            raise SimulationError(f"query {query.query_id} already dispatched")
        self._queries[query.query_id] = query
        self._stage_index[query.query_id] = 0
        first = query.stages[0]
        self._remaining[query.query_id] = len(first.messages)
        self.dispatched_count += 1
        return list(first.messages)

    def on_message_done(
        self, message: Message, now_s: float
    ) -> tuple[list[Message], QueryCompletion | None]:
        """Account one processed message.

        Returns ``(followup_messages, completion)`` where at most one of
        the two is non-empty/None.  Unknown query ids raise
        :class:`SimulationError` (a message must never outlive its query).
        """
        qid = message.query_id
        if qid not in self._queries:
            raise SimulationError(f"message for unknown query {qid}")
        self._remaining[qid] -= 1
        if self._remaining[qid] > 0:
            return [], None

        query = self._queries[qid]
        stage = self._stage_index[qid] + 1
        if stage < len(query.stages):
            self._stage_index[qid] = stage
            next_stage = query.stages[stage]
            for msg in next_stage.messages:
                msg.created_at_s = now_s
            self._remaining[qid] = len(next_stage.messages)
            return list(next_stage.messages), None

        del self._queries[qid]
        del self._stage_index[qid]
        del self._remaining[qid]
        self.completed_count += 1
        completion = QueryCompletion(
            query_id=qid, arrival_s=query.arrival_s, completion_s=now_s
        )
        return [], completion
