"""The Twitter load profile (Fig. 14).

The paper replays a 2-hour load trace derived from Twitter statuses [1]
within 3 minutes: a slowly drifting base rate with sudden spikes and
frequent alternation between rising and falling load.  The original trace
is not redistributable, so this module generates a deterministic
synthetic replica with the same structure: a diurnal-style drift, a
dense ripple, and a handful of sharp bursts (the feature the paper uses
to show the ECL's reactive lag and the benefit of a 2 Hz base frequency).
"""

from __future__ import annotations

import math

import numpy as np

from repro.loadprofiles.base import LoadProfile, SegmentProfile

#: (position in [0, 1], burst height added to the base curve)
_BURSTS: tuple[tuple[float, float], ...] = (
    (0.14, 0.45),
    (0.27, 0.30),
    (0.38, 0.55),
    (0.52, 0.25),
    (0.63, 0.50),
    (0.71, 0.35),
    (0.86, 0.40),
)


def twitter_profile(
    duration_s: float = 180.0,
    base_fraction: float = 0.40,
    seed: int = 1,
    resolution_s: float = 0.5,
) -> LoadProfile:
    """Build the synthetic Twitter-like profile.

    The curve is ``base + diurnal drift + ripple + bursts`` sampled every
    ``resolution_s`` seconds into a piecewise-linear profile.  It is
    deterministic for a fixed ``seed``.
    """
    rng = np.random.default_rng(seed)
    steps = max(4, int(duration_s / resolution_s))
    ripple_phase = rng.uniform(0, 2 * math.pi, size=3)
    points: list[tuple[float, float]] = []
    for i in range(steps + 1):
        t = i * duration_s / steps
        x = t / duration_s
        drift = 0.15 * math.sin(2 * math.pi * (x - 0.25))
        ripple = (
            0.05 * math.sin(14 * math.pi * x + ripple_phase[0])
            + 0.04 * math.sin(34 * math.pi * x + ripple_phase[1])
            + 0.03 * math.sin(58 * math.pi * x + ripple_phase[2])
        )
        level = base_fraction + drift + ripple
        for position, height in _BURSTS:
            # Sharp asymmetric burst: fast rise, exponential decay.
            dt = x - position
            if 0 <= dt < 0.035:
                level += height * math.exp(-dt / 0.008)
        points.append((t, max(0.0, level)))
    points[-1] = (duration_s, 0.0)
    return SegmentProfile("twitter", points)
