#!/usr/bin/env python3
"""Quickstart: run the ECL against a load profile and read the results.

This is the one-screen tour of the library:

1. build a workload (the paper's non-indexed key-value benchmark) and a
   load profile (a constant 40 % load),
2. run it twice — once under the Energy-Control Loop, once under the
   uncontrolled race-to-idle baseline,
3. compare energy, power, and latency.

Run:  python examples/quickstart.py
"""

from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, run_experiment
from repro.sim.metrics import energy_saving_fraction
from repro.workloads import KeyValueWorkload, WorkloadVariant


def main() -> None:
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    profile = constant_profile(0.40, duration_s=20.0)

    print(f"workload: {workload.full_name}")
    print(f"profile:  {profile.name} for {profile.duration_s:.0f} s")
    print(f"load:     {workload.queries_per_second(0.40):.0f} queries/s")
    print()

    results = {}
    for policy in ("baseline", "ecl"):
        print(f"running {policy} ...")
        results[policy] = run_experiment(
            RunConfiguration(workload=workload, profile=profile, policy=policy)
        )

    print()
    print(f"{'':>10} {'energy':>10} {'avg power':>10} {'mean lat':>9} {'p99 lat':>9}")
    for policy, result in results.items():
        print(
            f"{policy:>10} {result.total_energy_j:8.0f} J "
            f"{result.average_power_w():8.1f} W "
            f"{1000 * result.mean_latency_s():7.1f} ms "
            f"{1000 * result.percentile_latency_s(99):7.1f} ms"
        )

    saving = energy_saving_fraction(results["baseline"], results["ecl"])
    print(f"\nenergy saving with the ECL: {saving:.1%}")
    print(
        "latency limit (100 ms) violations under the ECL: "
        f"{results['ecl'].violation_fraction():.1%} of queries"
    )


if __name__ == "__main__":
    main()
