"""Fig. 6 — memory bandwidth and power vs core/uncore frequencies.

Paper: bandwidth is governed by the uncore clock; running every core at
the minimum P-state still reaches (nearly) full bandwidth as long as the
uncore sits at its maximum.
"""

from repro.hardware.machine import Machine
from repro.hardware.perfmodel import ActiveCore
from repro.workloads.micro import MEMORY_BOUND

from _shared import heading


def sweep():
    machine = Machine(seed=4)
    model = machine.perf_model
    core_freqs = (1.2, 1.9, 2.6)
    uncore_freqs = (1.2, 1.8, 2.4, 3.0)
    table = {}
    for core_ghz in core_freqs:
        for uncore_ghz in uncore_freqs:
            cores = [
                ActiveCore(0, i, core_ghz, sibling_count=1) for i in range(12)
            ]
            perf = model.socket_capacity(cores, uncore_ghz, MEMORY_BOUND)
            table[(core_ghz, uncore_ghz)] = perf.traffic_gbs
    return table


def test_fig06_bandwidth(run_once):
    table = run_once(sweep)

    heading("Fig. 6 — delivered memory bandwidth (GB/s), 12 cores active")
    uncores = (1.2, 1.8, 2.4, 3.0)
    print(f"{'core GHz':>9} " + " ".join(f"u{u:>5}" for u in uncores))
    for core in (1.2, 1.9, 2.6):
        print(
            f"{core:>9} "
            + " ".join(f"{table[(core, u)]:6.1f}" for u in uncores)
        )

    # Bandwidth grows with the uncore clock at every core frequency.
    for core in (1.2, 1.9, 2.6):
        values = [table[(core, u)] for u in uncores]
        assert values == sorted(values)
        assert values[-1] > 1.8 * values[0]

    # Minimum core clock reaches ≈ full bandwidth at max uncore.
    full = max(table.values())
    assert table[(1.2, 3.0)] > 0.95 * full

    # Raising the core clock beyond the minimum barely helps (saturated).
    assert table[(2.6, 3.0)] < 1.05 * table[(1.2, 3.0)]
