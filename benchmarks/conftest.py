"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the same rows/series the paper reports (so a human can eyeball the shape)
and asserts the qualitative structure — who wins, by roughly what factor,
where crossovers fall.  Absolute numbers are model outputs, not testbed
measurements (see EXPERIMENTS.md).

Environment knobs:

* ``REPRO_BENCH_DURATION`` — seconds per end-to-end load-profile run
  (default 45; the paper replays 3-minute profiles, use 180 for the full
  reproduction).
* ``REPRO_SUITE_WORKERS`` — processes per experiment batch (default 1 =
  inline); also settable via the ``--suite-workers`` pytest option.
* ``REPRO_CACHE_DIR`` — experiment result cache (default
  ``.repro_cache/``); delete it to force recomputation.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--suite-workers",
        type=int,
        default=None,
        help="processes per experiment batch (default: REPRO_SUITE_WORKERS "
             "or 1 = inline)",
    )


def pytest_configure(config: pytest.Config) -> None:
    workers = config.getoption("--suite-workers")
    if workers is not None:
        # Published as the env knob so helpers (and worker subprocesses
        # they spawn) see one consistent setting.
        os.environ["REPRO_SUITE_WORKERS"] = str(workers)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The experiments are long simulations; repeating them for statistical
    timing would multiply hours, so each executes a single round.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
