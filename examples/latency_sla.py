#!/usr/bin/env python3
"""Latency SLAs vs energy: how tight can the limit be?

The ECL treats the user-defined response-time limit as a soft
constraint.  A tighter limit forces it to keep more hardware awake
(shorter or no race-to-idle stints, more aggressive discovery), trading
energy for latency headroom.  This example sweeps the limit and reports
the trade-off under the bursty Twitter-style load.

Run:  python examples/latency_sla.py
"""

from repro.ecl.socket_ecl import EclParameters
from repro.loadprofiles import twitter_profile
from repro.sim import RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, WorkloadVariant


def main() -> None:
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    profile = twitter_profile(duration_s=45.0)

    print("sweeping the query-latency limit under the twitter load profile")
    print(
        f"\n{'limit':>8} {'energy':>9} {'avg power':>10} "
        f"{'mean lat':>9} {'p99 lat':>9} {'violations':>11}"
    )

    results = {}
    for limit_ms in (400.0, 100.0, 50.0, 25.0):
        params = EclParameters(latency_limit_s=limit_ms / 1000.0)
        result = run_experiment(
            RunConfiguration(
                workload=workload,
                profile=profile,
                policy="ecl",
                ecl_params=params,
            )
        )
        results[limit_ms] = result
        print(
            f"{limit_ms:6.0f}ms {result.total_energy_j:7.0f} J "
            f"{result.average_power_w():8.1f} W "
            f"{1000 * result.mean_latency_s():7.1f} ms "
            f"{1000 * result.percentile_latency_s(99):7.1f} ms "
            f"{result.violation_fraction():10.1%}"
        )

    loosest = results[max(results)]
    tightest = results[min(results)]
    print(
        f"\ntightening the limit from {max(results):.0f} ms to "
        f"{min(results):.0f} ms costs "
        f"{tightest.total_energy_j - loosest.total_energy_j:+.0f} J "
        f"({(tightest.total_energy_j / loosest.total_energy_j - 1):+.1%}) "
        "— the price of latency headroom."
    )


if __name__ == "__main__":
    main()
