"""Wall-time attribution across the five pipeline phases of a run.

Every tick of :class:`~repro.sim.runner.SimulationRunner` passes through
``arrivals → control → engine step → completions → sampling``; knowing
where the wall time goes tells you whether a slow experiment is paying
for load generation, the control policy, or the engine model.
:class:`PhaseTimingObserver` reads a monotonic clock at each phase
boundary hook and accumulates per-phase totals — pure observation, no
effect on simulated behaviour.

Attribution notes:

* the *sampling* bucket covers the ``end_tick`` dispatch up to this
  observer's own hook — attach it **last** (the runner appends extra
  observers after the built-ins, so the default placement is right) so
  the built-in sampler's work lands in the bucket;
* work of observers attached *after* this one, and the loop bookkeeping
  between ticks, is uncounted — the table reports the gap as
  ``untimed``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

from repro.sim.observers import RunObserver

if TYPE_CHECKING:
    from repro.dbms.engine import EngineTickResult
    from repro.sim.metrics import RunResult
    from repro.sim.runner import SimulationRunner

#: The five pipeline phases, in tick order.
PIPELINE_PHASES = ("arrivals", "control", "engine", "completions", "sampling")


@dataclass(frozen=True)
class PhaseTimings:
    """Per-phase wall-time totals of one run.

    Attributes:
        seconds: wall seconds attributed to each pipeline phase.
        ticks: ticks executed.
        wall_s: total wall time between run start and run end.
    """

    seconds: Mapping[str, float]
    ticks: int
    wall_s: float

    @property
    def measured_s(self) -> float:
        """Wall time attributed to any phase."""
        return sum(self.seconds.values())

    @property
    def untimed_s(self) -> float:
        """Run wall time outside every phase bucket (loop overhead,
        observers attached after the timer)."""
        return max(0.0, self.wall_s - self.measured_s)

    def per_tick_us(self, phase: str) -> float:
        """Mean microseconds one tick spends in ``phase``."""
        if self.ticks == 0:
            return 0.0
        return 1e6 * self.seconds[phase] / self.ticks

    def table(self) -> str:
        """Aligned per-phase timing table (CLI ``--timings`` output)."""
        header = f"{'phase':>12} {'wall s':>9} {'share':>7} {'us/tick':>9}"
        rows = [header, "-" * len(header)]
        denominator = self.wall_s if self.wall_s > 0 else 1.0
        for phase in PIPELINE_PHASES:
            seconds = self.seconds[phase]
            rows.append(
                f"{phase:>12} {seconds:9.3f} {seconds / denominator:7.1%} "
                f"{self.per_tick_us(phase):9.1f}"
            )
        rows.append(
            f"{'untimed':>12} {self.untimed_s:9.3f} "
            f"{self.untimed_s / denominator:7.1%} {'':>9}"
        )
        rows.append(
            f"total {self.wall_s:.3f} s over {self.ticks} ticks "
            f"({1e6 * self.wall_s / self.ticks if self.ticks else 0.0:.1f} us/tick)"
        )
        return "\n".join(rows)


class PhaseTimingObserver(RunObserver):
    """Accumulates wall time per pipeline phase at the boundary hooks.

    Args:
        clock: monotonic time source (injectable for deterministic
            tests); defaults to :func:`time.perf_counter`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._seconds = {phase: 0.0 for phase in PIPELINE_PHASES}
        self._ticks = 0
        self._run_start: float | None = None
        self._wall_s = 0.0
        self._mark = 0.0

    def on_run_start(self, runner: "SimulationRunner", result: "RunResult") -> None:
        self._seconds = {phase: 0.0 for phase in PIPELINE_PHASES}
        self._ticks = 0
        self._wall_s = 0.0
        self._run_start = self._clock()

    def _advance(self, phase: str) -> None:
        now = self._clock()
        self._seconds[phase] += now - self._mark
        self._mark = now

    def before_arrivals(self, now_s: float, dt_s: float) -> None:
        self._mark = self._clock()

    def after_arrivals(self, now_s: float, dt_s: float) -> None:
        self._advance("arrivals")

    def after_control(self, now_s: float, dt_s: float) -> None:
        self._advance("control")

    def after_step(self, now_s: float, tick_result: "EngineTickResult") -> None:
        self._advance("engine")

    def after_completions(self, now_s: float) -> None:
        self._advance("completions")

    def end_tick(self, now_s: float, tick_result: "EngineTickResult") -> None:
        self._advance("sampling")
        self._ticks += 1

    def on_run_end(self, result: "RunResult") -> None:
        assert self._run_start is not None
        self._wall_s = self._clock() - self._run_start

    @property
    def timings(self) -> PhaseTimings:
        """The accumulated totals (final once the run has ended)."""
        return PhaseTimings(
            seconds=dict(self._seconds),
            ticks=self._ticks,
            wall_s=self._wall_s,
        )
