"""Tests for the ecl-consolidate control policy (drain, sleep, wake)."""

from repro.loadprofiles import constant_profile
from repro.placement import MigrationRequest, round_robin_assignment
from repro.sim import (
    EclConsolidatePolicy,
    RunConfiguration,
    SimulationRunner,
    registered_policies,
)
from repro.workloads import KeyValueWorkload, WorkloadVariant


def low_load_config(policy="ecl-consolidate", duration_s=2.5, **kwargs):
    return RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=constant_profile(duration_s=duration_s, fraction=0.18),
        policy=policy,
        seed=0,
        **kwargs,
    )


class TestRegistration:
    def test_registered(self):
        assert "ecl-consolidate" in registered_policies()

    def test_default_planner_is_consolidate(self):
        runner = SimulationRunner(low_load_config())
        assert isinstance(runner.policy, EclConsolidatePolicy)
        assert runner.policy.planner.name == "consolidate"

    def test_configured_placement_becomes_planner(self):
        runner = SimulationRunner(low_load_config(placement="balance"))
        assert runner.policy.planner.name == "balance"


class TestDrain:
    def test_low_load_drains_one_socket(self):
        runner = SimulationRunner(low_load_config())
        result = runner.run()
        policy = runner.policy
        engine = runner.engine
        machine = runner.machine
        # One socket fully drained: no partitions, workers parked, query
        # intake redirected, memory vacated, package allowed to sleep.
        assert policy.drained_sockets == frozenset({1})
        assert not engine.hubs[1].partition_ids
        assert not engine.socket_is_online(1)
        assert machine.cstates.memory_is_vacated(1)
        assert machine.resolve_uncore(1)[1]  # uncore halted
        assert engine.partitions.partitions_on_socket(0)
        # One wave: every socket-1 partition moved exactly once.
        moved = [r.partition_id for r in engine.migration_log]
        assert sorted(moved) == sorted(
            pid
            for pid, sid in enumerate(round_robin_assignment(48, [0, 1]))
            if sid == 1
        )
        # Conservation through the wave.
        assert result.queries_completed == result.queries_submitted
        assert engine.pending_messages() == 0

    def test_drained_socket_ecl_stands_down(self):
        runner = SimulationRunner(low_load_config())
        runner.run()
        assert runner.policy.inner.sockets[1].drained

    def test_annotations_delegate_to_inner_ecl(self):
        runner = SimulationRunner(low_load_config(duration_s=0.5))
        runner.run()
        assert runner.policy.annotate_sample() is not None


class _MoveBackPlanner:
    """Stub planner: first pack onto socket 0, then demand socket 1 back."""

    name = "move-back"

    def __init__(self):
        self.phase = 0

    def initial_assignment(self, partition_count, socket_ids):
        return round_robin_assignment(partition_count, socket_ids)

    def plan(self, view):
        self.phase += 1
        if self.phase == 1:
            return [
                MigrationRequest(pid, 0, reason="pack")
                for pid in view.socket(1).partition_ids
            ]
        return [MigrationRequest(0, 1, reason="spread")]


class TestWake:
    def test_planning_toward_drained_socket_wakes_it(self):
        runner = SimulationRunner(low_load_config(duration_s=4.0))
        policy = runner.policy
        policy.planner = _MoveBackPlanner()
        policy.cooldown_intervals = 0
        result = runner.run()
        engine = runner.engine
        # The second plan targeted the drained socket: it must be back
        # online, unparked, with its memory no longer vacated.
        assert policy.drained_sockets == frozenset()
        assert engine.socket_is_online(1)
        assert not runner.machine.cstates.memory_is_vacated(1)
        assert not policy.inner.sockets[1].drained
        assert engine.partitions.socket_of(0) == 1
        # Conservation through the wave: nothing lost — every submitted
        # query either completed or is still legitimately in flight
        # (arrivals continue until the very last tick).
        in_flight = engine.tracker.in_flight
        assert result.queries_completed + in_flight == result.queries_submitted
        assert in_flight <= 5
