"""Tests for the RAPL counter model: lag, quantization, window noise."""

import numpy as np
import pytest

from repro.errors import HardwareError
from repro.hardware.presets import haswell_ep_two_socket
from repro.hardware.rapl import RaplCounter, RaplDomain


@pytest.fixture
def counter():
    return RaplCounter(
        haswell_ep_two_socket(), RaplDomain.PACKAGE, np.random.default_rng(3)
    )


class TestAccumulation:
    def test_true_energy_tracks_exactly(self, counter):
        counter.accumulate(100.0, 0.5, 0.5)
        counter.accumulate(50.0, 0.5, 1.0)
        assert counter.true_energy_j == pytest.approx(75.0)

    def test_negative_interval_rejected(self, counter):
        with pytest.raises(HardwareError):
            counter.accumulate(10.0, -0.1, 0.0)

    def test_negative_power_rejected(self, counter):
        with pytest.raises(HardwareError):
            counter.accumulate(-1.0, 0.1, 0.1)


class TestReads:
    def test_read_is_quantized(self, counter):
        params = haswell_ep_two_socket()
        counter.accumulate(100.0, 1.0, 1.0)
        reading = counter.read()
        remainder = reading.energy_j % params.rapl_energy_unit_j
        assert remainder == pytest.approx(0.0, abs=1e-9) or remainder == pytest.approx(
            params.rapl_energy_unit_j, abs=1e-9
        )

    def test_read_close_to_truth_for_large_windows(self, counter):
        counter.accumulate(100.0, 10.0, 10.0)
        reading = counter.read()
        assert reading.energy_j == pytest.approx(1000.0, rel=0.01)

    def test_long_window_power_accurate(self, counter):
        counter.accumulate(100.0, 0.01, 0.01)
        start = counter.read()
        counter.accumulate(100.0, 1.0, 1.01)
        end = counter.read()
        power = counter.window_power_w(start, end)
        assert power == pytest.approx(100.0, rel=0.02)

    def test_short_windows_noisier_than_long(self):
        """The property the meta calibration exploits (Fig. 12)."""
        params = haswell_ep_two_socket()

        def window_errors(window_s: float, n: int = 60) -> float:
            rng = np.random.default_rng(5)
            counter = RaplCounter(params, RaplDomain.PACKAGE, rng)
            t = 0.0
            errors = []
            for _ in range(n):
                start = counter.read()
                t += window_s
                counter.accumulate(100.0, window_s, t)
                end = counter.read()
                measured = counter.window_energy_j(start, end)
                errors.append(abs(measured - 100.0 * window_s) / (100.0 * window_s))
            return float(np.mean(errors))

        assert window_errors(0.002) > 3.0 * window_errors(0.1)

    def test_switch_noise_decays(self):
        params = haswell_ep_two_socket()
        rng = np.random.default_rng(11)
        counter = RaplCounter(params, RaplDomain.PACKAGE, rng)
        counter.accumulate(100.0, 0.5, 0.5)
        counter.note_configuration_switch(0.5)
        # Right after the switch, repeated reads scatter more than later.
        early = [counter.read().energy_j for _ in range(50)]
        counter.accumulate(100.0, 0.5, 1.0)  # 0.5 s later
        late = [counter.read().energy_j for _ in range(50)]
        assert np.std(early) > np.std(late)

    def test_unordered_window_rejected(self, counter):
        counter.accumulate(100.0, 1.0, 1.0)
        reading = counter.read()
        with pytest.raises(HardwareError):
            counter.window_power_w(reading, reading)

    def test_window_energy_never_negative(self, counter):
        counter.accumulate(100.0, 0.001, 0.001)
        a = counter.read()
        counter.accumulate(100.0, 0.001, 0.002)
        b = counter.read()
        assert counter.window_energy_j(a, b) >= 0.0
