"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the same rows/series the paper reports (so a human can eyeball the shape)
and asserts the qualitative structure — who wins, by roughly what factor,
where crossovers fall.  Absolute numbers are model outputs, not testbed
measurements (see EXPERIMENTS.md).

Environment knobs:

* ``REPRO_BENCH_DURATION`` — seconds per end-to-end load-profile run
  (default 45; the paper replays 3-minute profiles, use 180 for the full
  reproduction).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The experiments are long simulations; repeating them for statistical
    timing would multiply hours, so each executes a single round.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
