"""Run results: time series and aggregate metrics of a simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(frozen=True)
class SampleAnnotations:
    """Per-sample observations a control policy volunteers.

    Every registered policy returns one of these from
    ``annotate_sample()``; the sampling observer copies the fields into
    the :class:`SamplePoint` it emits.  Policies with no internal state
    worth plotting return the empty default.

    Attributes:
        performance_levels: per-socket demanded performance level (the
            ECL's utilization-controller output), ascending socket id.
        applied: per-socket human-readable description of the currently
            applied configuration, ascending socket id.
    """

    performance_levels: tuple[float, ...] = ()
    applied: tuple[str, ...] = ()


@dataclass(frozen=True)
class SamplePoint:
    """One periodic sample of the running system.

    The trailing two fields are uniform policy-provided annotations (see
    :class:`SampleAnnotations`) — not ECL special cases: whatever policy
    drives the run decides what they contain.
    """

    time_s: float
    load_qps: float
    rapl_power_w: float
    psu_power_w: float
    avg_latency_s: float | None
    pending_messages: int
    in_flight_queries: int
    performance_levels: tuple[float, ...] = ()
    applied: tuple[str, ...] = ()


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    policy: str
    workload_name: str
    profile_name: str
    duration_s: float
    samples: list[SamplePoint] = field(default_factory=list)
    total_energy_j: float = 0.0
    queries_submitted: int = 0
    queries_completed: int = 0
    latencies_s: list[float] = field(default_factory=list)
    latency_limit_s: float | None = None

    # -- latency statistics ---------------------------------------------------

    def mean_latency_s(self) -> float | None:
        """Mean end-to-end query latency."""
        if not self.latencies_s:
            return None
        return sum(self.latencies_s) / len(self.latencies_s)

    def percentile_latency_s(self, percentile: float) -> float | None:
        """Latency percentile (e.g. 99.0)."""
        if not self.latencies_s:
            return None
        if not 0 < percentile <= 100:
            raise SimulationError(f"percentile must be in (0, 100], got {percentile}")
        ordered = sorted(self.latencies_s)
        index = min(
            len(ordered) - 1, max(0, round(percentile / 100 * len(ordered)) - 1)
        )
        return ordered[index]

    def violation_fraction(self) -> float:
        """Fraction of queries exceeding the latency limit."""
        if not self.latencies_s or self.latency_limit_s is None:
            return 0.0
        over = sum(1 for v in self.latencies_s if v > self.latency_limit_s)
        return over / len(self.latencies_s)

    # -- power / energy ----------------------------------------------------------

    def average_power_w(self) -> float:
        """Time-average RAPL power."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_energy_j / self.duration_s

    def overload_exit_time_s(self, capacity_qps: float) -> float | None:
        """First sample time after which the backlog stays cleared.

        Used by the Fig. 13 analysis ("the baseline stays for about 50 s
        in the overload state, while the ECL only resides for about 20 s
        there"): the moment pending work returns to a trivial level after
        the overload peak.
        """
        if not self.samples:
            return None
        peak_pending = max(s.pending_messages for s in self.samples)
        if peak_pending == 0:
            return None
        peak_time = next(
            s.time_s
            for s in self.samples
            if s.pending_messages == peak_pending
        )
        for sample in self.samples:
            if sample.time_s <= peak_time:
                continue
            if sample.pending_messages <= max(4, peak_pending * 0.01):
                return sample.time_s
        return None


def energy_saving_fraction(baseline: RunResult, controlled: RunResult) -> float:
    """Relative energy saving of ``controlled`` versus ``baseline``.

    Raises:
        SimulationError: when the baseline consumed no energy.
    """
    if baseline.total_energy_j <= 0:
        raise SimulationError("baseline consumed no energy")
    return 1.0 - controlled.total_energy_j / baseline.total_energy_j
