#!/usr/bin/env python3
"""Watch the ECL adapt its energy profile to a workload change (§6.3).

The run starts with the indexed key-value benchmark (memory
latency-bound) and flips to the non-indexed one (memory bandwidth-bound)
halfway through — a major workload change that invalidates the energy
profile.  Three maintenance strategies are compared: none ("static"),
online-only, and online + multiplexed.

Run:  python examples/workload_switch.py
"""

from repro.ecl.socket_ecl import EclParameters
from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, WorkloadVariant

DURATION_S = 60.0
SWITCH_AT_S = 27.0


def main() -> None:
    indexed = KeyValueWorkload(WorkloadVariant.INDEXED)
    non_indexed = KeyValueWorkload(WorkloadVariant.NON_INDEXED)

    print(
        f"50 % load; {indexed.full_name} -> {non_indexed.full_name} "
        f"at t={SWITCH_AT_S:.0f}s"
    )

    runs = {}
    for mode in ("static", "online", "multiplexed"):
        print(f"running adaptation={mode} ...")
        runs[mode] = run_experiment(
            RunConfiguration(
                workload=indexed,
                profile=constant_profile(0.5, duration_s=DURATION_S),
                policy="ecl",
                ecl_params=EclParameters(adaptation=mode),
                switch_at_s=SWITCH_AT_S,
                switch_workload=non_indexed,
            )
        )

    print(f"\npower over time (W):\n{'t':>6}", end="")
    for mode in runs:
        print(f"{mode:>13}", end="")
    print()
    length = min(len(r.samples) for r in runs.values())
    for i in range(0, length, 16):
        t = runs["static"].samples[i].time_s
        marker = " <= switch" if abs(t - SWITCH_AT_S) < 2.1 else ""
        print(f"{t:6.1f}", end="")
        for run in runs.values():
            print(f"{run.samples[i].rapl_power_w:13.1f}", end="")
        print(marker)

    print(f"\n{'strategy':>12} {'energy':>9} {'post-switch W':>14} {'violations':>11}")
    for mode, run in runs.items():
        tail = [s.rapl_power_w for s in run.samples if s.time_s > SWITCH_AT_S + 8]
        print(
            f"{mode:>12} {run.total_energy_j:7.0f} J "
            f"{sum(tail) / len(tail):12.1f} W "
            f"{run.violation_fraction():10.1%}"
        )

    print(
        "\nwithout adaptation the stale profile keeps recommending "
        "configurations tuned for the old workload — the adapting "
        "strategies settle into the new optimum within a few ECL intervals."
    )


if __name__ == "__main__":
    main()
