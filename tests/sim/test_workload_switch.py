"""The §6.3 workload switch under every registered policy.

The switch used to be an inline special case in the runner's tick loop;
it is now a :class:`~repro.sim.observers.WorkloadSwitchObserver`, so it
must compose with *any* control policy — including ones registered out
of tree — without the policy being notified.
"""

import pytest

from repro.loadprofiles import constant_profile
from repro.sim import (
    RunConfiguration,
    SimulationRunner,
    registered_policies,
)
from repro.sim.observers import WorkloadSwitchObserver
from repro.workloads import KeyValueWorkload, WorkloadVariant


def switch_config(policy):
    return RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.INDEXED),
        profile=constant_profile(0.3, duration_s=3.0),
        policy=policy,
        switch_at_s=1.5,
        switch_workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
    )


@pytest.mark.parametrize("policy", registered_policies())
def test_switch_under_policy(policy):
    runner = SimulationRunner(switch_config(policy))
    result = runner.run()

    # The engine's declared characteristics flipped...
    assert runner.engine.workload_characteristics(0).name == "kv-non-indexed"
    # ...the load generator now draws from the new workload...
    assert runner.loadgen.workload.characteristics.name == "kv-non-indexed"
    # ...and the run kept serving queries across the switch.
    assert result.queries_completed > 0
    late_arrivals = result.queries_submitted - result.queries_completed
    assert late_arrivals < 0.5 * result.queries_submitted


def test_switch_observer_reports_state():
    runner = SimulationRunner(switch_config(registered_policies()[0]))
    switch = WorkloadSwitchObserver(
        1.5, KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    )
    switch.on_run_start(runner, None)
    assert not switch.switched
    switch.before_arrivals(1.0, 0.002)
    assert not switch.switched
    switch.before_arrivals(1.5, 0.002)
    assert switch.switched
    assert runner.loadgen.workload.characteristics.name == "kv-non-indexed"


def test_no_switch_configured_means_no_observer():
    config = RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.INDEXED),
        profile=constant_profile(0.3, duration_s=1.0),
    )
    runner = SimulationRunner(config)
    assert not any(
        isinstance(o, WorkloadSwitchObserver)
        for o in runner._built_in_observers()
    )
