"""A static performance governor: race-to-idle at maximum clocks.

The classic "performance first" deployment from the paper's comparison
space (§6/§7 discussion): the operating system's performance governor
requests the highest available P-state — the turbo step — on every
core, the performance EPB drops the energy-efficient-turbo dwell so
turbo engages immediately (Fig. 7), and the race-to-idle philosophy is
taken literally: the moment the machine runs out of work, every
hardware thread parks into the deep C-state, to be woken by the next
arrival.

Expectation (asserted by the ablation bench): this lands *between* the
uncontrolled baseline and the ECL.  It saves real energy during the
idle valleys of a load profile — it drains backlog faster and parks
without the OS's tickless-idle grace period — but all-core turbo blows
the thermal budget on sustained load and burns turbo voltage on
memory-bound work that cannot use the extra clocks (the Fig. 7
pathology), so it recovers only a fraction of what the profile-guided
ECL does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dbms.engine import DatabaseEngine
from repro.hardware.frequency import EnergyPerformanceBias
from repro.sim.metrics import SampleAnnotations

if TYPE_CHECKING:
    from repro.sim.runner import RunConfiguration


class StaticPerformancePolicy:
    """Immediate turbo everywhere; park the instant the machine is dry."""

    def __init__(self, engine: DatabaseEngine):
        self.engine = engine
        self.machine = engine.machine
        self._parked = False
        self._initialized = False

    @classmethod
    def build(
        cls, engine: DatabaseEngine, config: "RunConfiguration"
    ) -> "StaticPerformancePolicy":
        """Control-policy factory (see :mod:`repro.sim.policy`)."""
        return cls(engine)

    def _apply_active_state(self) -> None:
        machine = self.machine
        all_threads = {t.global_id for t in machine.topology.iter_threads()}
        machine.cstates.set_active_threads(all_threads)
        for sock in machine.topology.sockets:
            turbo = machine.params_for(sock.socket_id).core_turbo_ghz
            machine.frequency.set_socket_core_frequencies(
                sock.socket_id,
                {core.core_id: turbo for core in sock.cores},
                machine.time_s,
            )
        machine.set_epb_all(EnergyPerformanceBias.PERFORMANCE)
        for sock in machine.topology.sockets:
            machine.frequency.set_uncore_auto(sock.socket_id)
        self._parked = False

    def on_tick(self, now_s: float, dt_s: float) -> None:
        """Race: full throttle under work, deep sleep the moment it ends."""
        if not self._initialized:
            self._apply_active_state()
            self._initialized = True

        has_work = (
            self.engine.pending_messages() > 0
            or self.engine.tracker.in_flight > 0
        )
        if has_work:
            if self._parked:
                self._apply_active_state()
        elif not self._parked:
            self.machine.cstates.set_active_threads(set())
            self._parked = True

    def macro_view(
        self, now_s: float, dt_s: float
    ) -> tuple[float, dict[int, float]] | None:
        """Steady-state view for the macro-stepping runner.

        The policy is a two-state machine keyed off the (span-frozen)
        ``has_work`` predicate: in either matching state — racing with
        work, or parked and dry — :meth:`on_tick` is a no-op; in a
        transition state the very next tick reconfigures.
        """
        if not self._initialized:
            return None
        has_work = (
            self.engine.pending_messages() > 0
            or self.engine.tracker.in_flight > 0
        )
        if has_work != self._parked:
            return float("inf"), {}
        return None  # the next tick parks or unparks

    def annotate_sample(self) -> SampleAnnotations:
        """Whether the race is currently on or the machine is parked."""
        state = "parked" if self._parked else "turbo"
        return SampleAnnotations(
            applied=tuple(
                state for _ in self.machine.topology.sockets
            ),
        )
