"""Fig. 15 & 16 — energy-profile adaptation after a workload change.

Paper: at fixed 50 % load, the workload switches from the indexed to the
non-indexed KV benchmark at 40 s.  Without adaptation (ECL static) the
stale profile misjudges performance levels — power is higher and the
response-time limit is frequently missed.  Online adaptation recovers
quickly; multiplexed adaptation takes longer (it re-measures every
configuration) but both consume ~25 % less power than static after the
switch while staying within the limit.
"""

from repro.ecl.socket_ecl import EclParameters
from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, WorkloadVariant

from _shared import bench_duration_s, heading


def run_all():
    duration = max(60.0, bench_duration_s())
    switch_at = duration * 40.0 / 90.0
    indexed = KeyValueWorkload(WorkloadVariant.INDEXED)
    non_indexed = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    runs = {}
    for mode in ("static", "online", "multiplexed"):
        runs[mode] = run_experiment(
            RunConfiguration(
                workload=indexed,
                profile=constant_profile(0.5, duration_s=duration),
                policy="ecl",
                ecl_params=EclParameters(adaptation=mode),
                switch_at_s=switch_at,
                switch_workload=non_indexed,
            )
        )
    return runs, switch_at, duration


def test_fig15_16_adaptation(run_once):
    runs, switch_at, duration = run_once(run_all)

    heading("Fig. 15 — power over time across adaptation strategies")
    print(f"{'t':>6} {'static W':>9} {'online W':>9} {'mux W':>9}")
    for s_s, s_o, s_m in zip(
        runs["static"].samples[::8],
        runs["online"].samples[::8],
        runs["multiplexed"].samples[::8],
    ):
        print(
            f"{s_s.time_s:6.1f} {s_s.rapl_power_w:9.1f} "
            f"{s_o.rapl_power_w:9.1f} {s_m.rapl_power_w:9.1f}"
        )

    def post_switch_power(run):
        tail = [
            s.rapl_power_w
            for s in run.samples
            if s.time_s > switch_at + 0.25 * (duration - switch_at)
        ]
        return sum(tail) / len(tail)

    heading("Fig. 15/16 — totals per adaptation strategy")
    stats = {}
    for mode, run in runs.items():
        stats[mode] = (
            run.total_energy_j,
            post_switch_power(run),
            run.violation_fraction(),
            run.mean_latency_s(),
        )
        print(
            f"{mode:>12}: energy {run.total_energy_j:8.0f} J  "
            f"post-switch power {post_switch_power(run):6.1f} W  "
            f"violations {run.violation_fraction():6.1%}  "
            f"mean latency {1000 * run.mean_latency_s():6.1f} ms"
        )

    static_power = stats["static"][1]
    online_power = stats["online"][1]
    mux_power = stats["multiplexed"][1]

    # Fig. 15: without adaptation the stale profile wastes power after the
    # switch; both adaptation strategies draw noticeably less.
    assert online_power < static_power - 8.0
    assert mux_power < static_power - 8.0

    # Fig. 15: total energy ordering — static draws the most.
    assert stats["static"][0] > stats["online"][0]
    assert stats["static"][0] > stats["multiplexed"][0] * 0.98

    # Fig. 16: the adapting strategies stay essentially within the limit.
    assert stats["online"][2] < 0.10
    assert stats["multiplexed"][2] < 0.15
