"""Tests for the Machine facade and counters wiring."""

import pytest

from repro.errors import ConfigurationError, HardwareError
from repro.hardware.counters import InstructionCounter
from repro.hardware.firestarter import apply_full_load, apply_idle
from repro.hardware.machine import IDLE_CHARACTERISTICS, Machine
from repro.hardware.perfmodel import SocketLoad
from repro.hardware.rapl import RaplDomain
from repro.workloads.micro import COMPUTE_BOUND, MEMORY_BOUND


class TestStepping:
    def test_time_advances(self, machine: Machine):
        machine.step(0.25)
        machine.step(0.25)
        assert machine.time_s == pytest.approx(0.5)

    def test_zero_step_rejected(self, machine: Machine):
        with pytest.raises(ConfigurationError):
            machine.step(0.0)

    def test_idle_machine_executes_nothing(self, machine: Machine):
        apply_idle(machine)
        result = machine.step(1.0)
        for socket in result.sockets.values():
            assert socket.executed_instructions == 0.0
            assert socket.uncore_halted

    def test_loaded_machine_executes(self, machine: Machine):
        apply_full_load(machine)
        result = machine.step(1.0)
        for socket in result.sockets.values():
            assert socket.executed_instructions > 1e9

    def test_energy_accumulates(self, machine: Machine):
        apply_full_load(machine)
        machine.step(1.0)
        e1 = machine.true_total_energy_j()
        machine.step(1.0)
        e2 = machine.true_total_energy_j()
        assert e2 > e1 > 0

    def test_rapl_counters_follow_truth(self, machine: Machine):
        apply_full_load(machine)
        machine.step(2.0)
        reading = machine.read_rapl(0, RaplDomain.PACKAGE)
        truth = machine.rapl_counter(0, RaplDomain.PACKAGE).true_energy_j
        assert reading.energy_j == pytest.approx(truth, rel=0.02)

    def test_instruction_counter_matches_executed(self, machine: Machine):
        apply_full_load(machine)
        result = machine.step(1.0)
        counted = machine.read_instructions(0).instructions
        assert counted == pytest.approx(
            result.sockets[0].executed_instructions, rel=1e-9
        )

    def test_psu_power_above_rapl(self, machine: Machine):
        apply_full_load(machine)
        result = machine.step(0.5)
        assert result.psu_power_w > result.rapl_power_w


class TestLoadManagement:
    def test_set_and_get_load(self, machine: Machine):
        load = SocketLoad(COMPUTE_BOUND, demand_instructions_per_s=1e9)
        machine.set_socket_load(0, load)
        assert machine.socket_load(0) is load

    def test_set_idle(self, machine: Machine):
        machine.set_socket_load(0, SocketLoad(MEMORY_BOUND, None))
        machine.set_idle(0)
        assert machine.socket_load(0).characteristics is IDLE_CHARACTERISTICS

    def test_unknown_socket_rejected(self, machine: Machine):
        with pytest.raises(ConfigurationError):
            machine.set_socket_load(9, SocketLoad(COMPUTE_BOUND, None))


class TestThreadApplication:
    def test_apply_threads_per_socket(self, machine: Machine):
        machine.apply_socket_threads(0, {0, 1})
        machine.apply_socket_threads(1, {13})
        assert machine.cstates.active_threads == frozenset({0, 1, 13})

    def test_foreign_threads_rejected(self, machine: Machine):
        with pytest.raises(ConfigurationError):
            machine.apply_socket_threads(0, {13})

    def test_other_socket_untouched(self, machine: Machine):
        machine.apply_socket_threads(1, {13, 14})
        machine.apply_socket_threads(0, {0})
        assert 13 in machine.cstates.active_threads
        assert 14 in machine.cstates.active_threads


class TestStateSnapshot:
    def test_snapshot_contents(self, machine: Machine):
        machine.apply_socket_threads(0, {0})
        machine.frequency.set_core_frequency(0, 0, 1.5, machine.time_s)
        machine.frequency.set_uncore_frequency(0, 2.0)
        state = machine.state()
        assert state.core_frequencies_ghz[(0, 0)] == pytest.approx(1.5)
        assert state.uncore_frequencies_ghz[0] == pytest.approx(2.0)
        assert 0 in state.active_threads
        assert not state.uncore_halted[0]

    def test_idle_snapshot_halts_uncore(self, machine: Machine):
        apply_idle(machine)
        state = machine.state()
        assert state.uncore_halted[0] and state.uncore_halted[1]


class TestInstructionCounter:
    def test_window_rate(self):
        counter = InstructionCounter()
        counter.accumulate(1e9, 1.0)
        start = counter.read()
        counter.accumulate(2e9, 2.0)
        end = counter.read()
        assert InstructionCounter.window_rate(start, end) == pytest.approx(2e9)

    def test_negative_rejected(self):
        counter = InstructionCounter()
        with pytest.raises(HardwareError):
            counter.accumulate(-1.0, 0.0)

    def test_unordered_window_rejected(self):
        counter = InstructionCounter()
        counter.accumulate(1.0, 1.0)
        reading = counter.read()
        with pytest.raises(HardwareError):
            InstructionCounter.window_rate(reading, reading)


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        readings = []
        for _ in range(2):
            machine = Machine(seed=123)
            apply_full_load(machine)
            machine.step(0.5)
            readings.append(machine.read_rapl(0, RaplDomain.PACKAGE).energy_j)
        assert readings[0] == readings[1]

    def test_different_seed_different_noise(self):
        values = []
        for seed in (1, 2):
            machine = Machine(seed=seed)
            apply_full_load(machine)
            machine.step(0.013)
            values.append(machine.read_rapl(0, RaplDomain.PACKAGE).energy_j)
        assert values[0] != values[1]
