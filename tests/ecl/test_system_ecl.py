"""Tests for the system-level ECL latency supervision."""

import pytest

from repro.errors import ControlError
from repro.dbms.stats import LatencyTracker
from repro.ecl.system_ecl import SystemEcl


@pytest.fixture
def tracker():
    return LatencyTracker(window_s=10.0)


class TestSupervision:
    def test_no_data_is_relaxed(self, tracker):
        ecl = SystemEcl(tracker, latency_limit_s=0.1)
        ecl.on_tick(0.0)
        assert ecl.time_to_violation_s() == float("inf")
        assert ecl.average_latency_s() is None
        assert not ecl.limit_violated

    def test_growing_latency_produces_finite_estimate(self, tracker):
        ecl = SystemEcl(tracker, latency_limit_s=0.1)
        for i in range(10):
            tracker.record(float(i), 0.01 + 0.008 * i)
        ecl.on_tick(9.0)
        ttv = ecl.time_to_violation_s()
        assert 0.0 < ttv < 20.0

    def test_violation_detected(self, tracker):
        ecl = SystemEcl(tracker, latency_limit_s=0.1)
        tracker.record(0.0, 0.5)
        ecl.on_tick(0.0)
        assert ecl.limit_violated
        assert ecl.time_to_violation_s() == 0.0
        assert ecl.violations == 1

    def test_check_interval_caches(self, tracker):
        ecl = SystemEcl(tracker, latency_limit_s=0.1, check_interval_s=1.0)
        ecl.on_tick(0.0)
        tracker.record(0.1, 0.9)  # violation arrives after the check
        ecl.on_tick(0.5)  # within the interval: cached value reused
        assert not ecl.limit_violated
        ecl.on_tick(1.0)
        assert ecl.limit_violated

    def test_violation_fraction(self):
        short = LatencyTracker(window_s=1.0)
        ecl = SystemEcl(short, latency_limit_s=0.1, check_interval_s=1.0)
        short.record(0.0, 0.5)
        ecl.on_tick(0.0)
        short.record(2.0, 0.01)
        short.record(2.1, 0.01)
        ecl.on_tick(2.5)  # the violating sample has left the window
        assert 0.0 < ecl.violation_fraction() < 1.0

    def test_validation(self, tracker):
        with pytest.raises(ControlError):
            SystemEcl(tracker, latency_limit_s=0.0)
        with pytest.raises(ControlError):
            SystemEcl(tracker, latency_limit_s=0.1, check_interval_s=0.0)
