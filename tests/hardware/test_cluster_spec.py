"""Cluster hardware layer: spec validation, socket axis, node power."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.hardware.cluster import (
    CLUSTER_PRESETS,
    ClusterSpec,
    NodePowerState,
    NodeSpec,
    build_cluster,
    homogeneous_cluster,
    mixed_cluster,
)
from repro.hardware.machine import Machine
from repro.hardware.presets import HaswellEPParameters, get_preset


class TestClusterSpecValidation:
    def test_zero_node_cluster_rejected(self):
        with pytest.raises(SimulationError, match="at least one node"):
            ClusterSpec(nodes=())

    def test_zero_node_builder_rejected(self):
        with pytest.raises(SimulationError, match="at least one node"):
            homogeneous_cluster(0)
        with pytest.raises(SimulationError, match="at least one node"):
            mixed_cluster(0)

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(SimulationError, match="duplicate node id 3"):
            ClusterSpec(
                nodes=(NodeSpec(node_id=3), NodeSpec(node_id=3))
            )

    def test_negative_power_fields_rejected(self):
        with pytest.raises(SimulationError, match="power_up_s"):
            ClusterSpec(nodes=(NodeSpec(node_id=0, power_up_s=-1.0),))
        with pytest.raises(SimulationError, match="off_residual_w"):
            ClusterSpec(nodes=(NodeSpec(node_id=0, off_residual_w=-1.0),))

    def test_unknown_preset_rejected(self):
        with pytest.raises(SimulationError, match="unknown cluster preset"):
            build_cluster("rack-of-toasters", 2)

    def test_every_preset_builds(self):
        for name in CLUSTER_PRESETS:
            spec = build_cluster(name, 3)
            assert spec.node_count == 3
            assert spec.total_sockets >= 3


class TestSocketAxis:
    def test_node_major_socket_ids(self):
        spec = homogeneous_cluster(3)
        per_node = get_preset("haswell_ep").socket_count
        assert spec.total_sockets == 3 * per_node
        node_map = spec.socket_node_map()
        assert node_map == tuple(
            node for node in range(3) for _ in range(per_node)
        )
        for node, sids in enumerate(spec.node_socket_ids()):
            assert all(node_map[sid] == node for sid in sids)

    def test_mixed_cluster_heterogeneous_params(self):
        spec = mixed_cluster(3)
        params = spec.socket_params()
        brawny = get_preset("haswell_ep")
        wimpy = get_preset("wimpy_node")
        assert params[0].cores_per_socket == brawny.cores_per_socket
        assert params[-1].cores_per_socket == wimpy.cores_per_socket
        assert spec.total_threads == (
            brawny.total_threads + 2 * wimpy.total_threads
        )


def _park_node(machine: Machine, node: int) -> None:
    """Park every thread of ``node``'s sockets so it can be powered off."""
    for sid in machine.node_sockets(node):
        machine.apply_socket_threads(sid, ())
    machine.power_off_node(node)


class TestClusterMachine:
    def test_params_and_cluster_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            Machine(params=HaswellEPParameters(),
                    cluster=homogeneous_cluster(2))

    def test_homogeneous_idle_psu_scales_linearly(self):
        single = Machine(seed=0)
        double = Machine(seed=0, cluster=homogeneous_cluster(2))
        one = single.step(0.1)
        two = double.step(0.1)
        assert two.psu_power_w == pytest.approx(2.0 * one.psu_power_w)

    def test_node_mapping_helpers(self):
        machine = Machine(cluster=homogeneous_cluster(2))
        assert machine.node_count == 2
        for node in range(2):
            for sid in machine.node_sockets(node):
                assert machine.node_of_socket(sid) == node
            assert machine.node_power_state(node) is NodePowerState.ON

    def test_single_node_machine_has_one_node(self):
        machine = Machine(seed=0)
        assert machine.node_count == 1
        assert machine.node_power_state(0) is NodePowerState.ON

    def test_power_off_requires_parked_threads(self):
        # Machines boot with every thread active; node 1 cannot be
        # powered off until its sockets are parked.
        machine = Machine(cluster=homogeneous_cluster(2))
        with pytest.raises(ConfigurationError, match="active threads"):
            machine.power_off_node(1)
        for sid in machine.node_sockets(1):
            machine.apply_socket_threads(sid, ())
        machine.power_off_node(1)
        assert machine.node_power_state(1) is NodePowerState.OFF

    def test_off_node_draws_exactly_residual(self):
        spec = homogeneous_cluster(2, off_residual_w=6.0)
        machine = Machine(cluster=spec)
        _park_node(machine, 1)
        on = Machine(seed=0)
        dark = machine.step(1.0)
        lit = on.step(1.0)
        # The ON node matches a single-node machine; the OFF node adds
        # its residual wattage with no PSU overhead on top.
        assert dark.psu_power_w == pytest.approx(lit.psu_power_w + 6.0)

    def test_boot_latency_and_settle(self):
        spec = homogeneous_cluster(2, power_up_s=2.0, boot_power_w=60.0)
        machine = Machine(cluster=spec)
        _park_node(machine, 1)
        machine.power_on_node(1)
        assert machine.node_power_state(1) is NodePowerState.BOOTING
        machine.step(1.0)
        assert machine.node_power_state(1) is NodePowerState.BOOTING
        machine.step(1.5)
        # Settling happens at the start of a step; the deadline passed
        # mid-step, so fold it in explicitly (as the controller does).
        machine.settle_node_power()
        assert machine.node_power_state(1) is NodePowerState.ON

    def test_booting_deadline_bounds_internal_events(self):
        spec = homogeneous_cluster(2, power_up_s=2.0)
        machine = Machine(cluster=spec)
        _park_node(machine, 1)
        machine.power_on_node(1)
        assert machine.next_internal_event_s() <= machine.time_s + 2.0

    def test_instant_boot_when_power_up_zero(self):
        spec = homogeneous_cluster(2, power_up_s=0.0)
        machine = Machine(cluster=spec)
        _park_node(machine, 1)
        machine.power_on_node(1)
        assert machine.node_power_state(1) is NodePowerState.ON

    def test_node_power_version_counts_transitions(self):
        machine = Machine(cluster=homogeneous_cluster(2, power_up_s=0.5))
        base = machine.node_power_version
        _park_node(machine, 1)
        machine.power_on_node(1)
        machine.step(1.0)
        machine.settle_node_power()  # BOOTING -> ON
        assert machine.node_power_version == base + 3

    def test_dark_sockets_produce_no_work(self):
        machine = Machine(cluster=homogeneous_cluster(2))
        _park_node(machine, 1)
        result = machine.step(0.01)
        for sid in machine.node_sockets(1):
            socket_result = result.sockets[sid]
            assert socket_result.performance.capacity_ips == 0.0
            assert socket_result.executed_instructions == 0.0
            assert socket_result.uncore_halted
            assert socket_result.power.cores_w == 0.0
            assert socket_result.power.dram_w == 0.0
            assert socket_result.power.package_w > 0.0  # the residual
