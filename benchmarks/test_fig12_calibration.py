"""Fig. 12 — meta calibration of apply and measure times.

Paper: applying a configuration is accurate even with a 1 ms budget
(C/P-state transitions cost microseconds), while counter measurements
degrade below ~100 ms windows; 100 ms is the chosen trade-off.
"""

from repro.ecl.calibration import MetaCalibrator
from repro.hardware.machine import Machine

from _shared import heading


def calibrate():
    machine = Machine(seed=12)
    return MetaCalibrator(machine, 0).run()


def test_fig12_calibration(run_once):
    result = run_once(calibrate)

    heading("Fig. 12 — meta calibration deviations")
    print("measure-window deviation from reference:")
    for window, deviation in sorted(result.measure_deviation.items(), reverse=True):
        marker = " <= chosen" if window == result.measure_time_s else ""
        print(f"  {window*1000:7.1f} ms: {deviation:7.2%}{marker}")
    print("apply-settle deviation from reference:")
    for settle, deviation in sorted(result.apply_deviation.items(), reverse=True):
        marker = " <= chosen" if settle == result.apply_time_s else ""
        print(f"  {settle*1000:7.1f} ms: {deviation:7.2%}{marker}")
    print(
        f"\nchosen: apply {result.apply_time_s*1000:.1f} ms, "
        f"measure {result.measure_time_s*1000:.1f} ms "
        "(paper: ~1 ms / ~100 ms)"
    )

    # Applying is accurate at the millisecond scale.
    assert result.apply_time_s <= 0.002
    # Measuring needs a window in the tens-to-hundreds of ms.
    assert 0.02 <= result.measure_time_s <= 0.2
    # Short windows are visibly worse than long ones.
    longest = max(result.measure_deviation)
    shortest = min(result.measure_deviation)
    assert result.measure_deviation[shortest] > result.measure_deviation[longest]
