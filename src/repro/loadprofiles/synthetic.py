"""Synthetic load profiles for tests, calibration, and ablations."""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.loadprofiles.base import LoadProfile, SegmentProfile


def constant_profile(
    fraction: float, duration_s: float = 60.0, name: str | None = None
) -> LoadProfile:
    """A flat profile at a fixed load fraction."""
    if fraction < 0:
        raise SimulationError(f"fraction must be >= 0, got {fraction}")
    return SegmentProfile(
        name or f"constant-{fraction:.0%}",
        [(0.0, fraction), (duration_s, fraction)],
    )


def step_profile(
    levels: list[tuple[float, float]], name: str = "step"
) -> LoadProfile:
    """A staircase profile from (duration, fraction) segments.

    Each segment holds its fraction for its duration; transitions are
    instantaneous (realized as 1 ms ramps so the profile stays a valid
    piecewise-linear curve).
    """
    if not levels:
        raise SimulationError("step profile needs >= 1 segment")
    points: list[tuple[float, float]] = []
    t = 0.0
    for duration, fraction in levels:
        if duration <= 0:
            raise SimulationError(f"segment duration must be > 0, got {duration}")
        if points:
            points.append((t + 1e-3, fraction))
        else:
            points.append((0.0, fraction))
        t += duration
        points.append((t, fraction))
    return SegmentProfile(name, points)


class SineProfile(LoadProfile):
    """A sinusoid between ``low`` and ``high`` with a given period."""

    def __init__(
        self, low: float, high: float, period_s: float, duration_s: float
    ):
        if not 0 <= low <= high:
            raise SimulationError(f"need 0 <= low <= high, got {low}, {high}")
        if period_s <= 0 or duration_s <= 0:
            raise SimulationError("period and duration must be > 0")
        self.low = low
        self.high = high
        self.period_s = period_s
        self._duration_s = duration_s

    @property
    def name(self) -> str:
        return f"sine-{self.low:.0%}-{self.high:.0%}"

    @property
    def duration_s(self) -> float:
        return self._duration_s

    def fraction(self, t_s: float) -> float:
        if not 0 <= t_s <= self._duration_s:
            return 0.0
        mid = (self.low + self.high) / 2.0
        amp = (self.high - self.low) / 2.0
        return mid + amp * math.sin(2 * math.pi * t_s / self.period_s)


def sine_profile(
    low: float = 0.1, high: float = 0.9, period_s: float = 30.0,
    duration_s: float = 120.0,
) -> LoadProfile:
    """Convenience constructor for :class:`SineProfile`."""
    return SineProfile(low, high, period_s, duration_s)
