"""Partitions and partition maps.

In the data-oriented architecture every data object is implicitly
partitioned and a partition is accessed exclusively by whichever worker
currently *owns* it (paper §3).  A :class:`Partition` bundles the table
fragments of one partition; the :class:`PartitionMap` routes keys and
partition ids to sockets.

Partition-to-socket placement is decided by a placement policy
(:mod:`repro.placement`) at construction and may change at runtime
through :meth:`PartitionMap.move_partition` — driven by the migration
protocol in :mod:`repro.placement.migration`, never directly by query
execution.  The static partition-to-*worker* binding is likewise gone,
handled by :mod:`repro.dbms.intra_socket`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import PartitionError
from repro.storage.schema import Schema
from repro.storage.table import Table

#: Multiplicative constant of the 64-bit Fibonacci hash (key routing).
_FIB = 11400714819323198485


def hash_partition(key: int, partition_count: int) -> int:
    """Map an integer key to a partition id by Fibonacci hashing."""
    if partition_count <= 0:
        raise PartitionError(f"partition_count must be >= 1, got {partition_count}")
    h = (key * _FIB) & 0xFFFFFFFFFFFFFFFF
    return (h >> 33) % partition_count


@dataclass
class Partition:
    """One data partition: table fragments plus bookkeeping."""

    partition_id: int
    socket_id: int
    tables: dict[str, Table] = field(default_factory=dict)

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create a table fragment inside this partition.

        Raises:
            PartitionError: if the fragment already exists.
        """
        if name in self.tables:
            raise PartitionError(
                f"table {name!r} already exists in partition {self.partition_id}"
            )
        table = Table(f"{name}@p{self.partition_id}", schema)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table fragment.

        Raises:
            PartitionError: if the fragment does not exist.
        """
        try:
            return self.tables[name]
        except KeyError:
            raise PartitionError(
                f"no table {name!r} in partition {self.partition_id}"
            ) from None

    @property
    def bytes_used(self) -> int:
        """Approximate bytes held by all fragments."""
        return sum(t.bytes_used for t in self.tables.values())

    @property
    def row_count(self) -> int:
        """Total rows across all fragments."""
        return sum(t.row_count for t in self.tables.values())


class PartitionMap:
    """All partitions of a database and their socket placement.

    Without an explicit ``assignment`` partitions are placed round-robin
    across sockets so every socket holds an equal share (the paper sets
    the worker:partition ratio to 1:1 with one partition per hardware
    thread); placement policies pass their own assignment.  Every socket
    must hold at least one partition at construction — in particular
    ``partition_count < socket_count`` is rejected, since it would leave
    sockets with zero partitions and make demand reporting degenerate.
    Runtime re-placement goes through :meth:`move_partition`.
    """

    def __init__(
        self,
        partition_count: int,
        socket_count: int,
        assignment: Sequence[int] | None = None,
    ):
        if partition_count <= 0:
            raise PartitionError(
                f"partition_count must be >= 1, got {partition_count}"
            )
        if socket_count <= 0:
            raise PartitionError(f"socket_count must be >= 1, got {socket_count}")
        if partition_count < socket_count:
            raise PartitionError(
                f"partition_count ({partition_count}) must be >= socket_count "
                f"({socket_count}); fewer partitions than sockets would leave "
                f"sockets without data"
            )
        if assignment is None:
            assignment = [pid % socket_count for pid in range(partition_count)]
        else:
            assignment = list(assignment)
            if len(assignment) != partition_count:
                raise PartitionError(
                    f"assignment covers {len(assignment)} partitions, "
                    f"expected {partition_count}"
                )
            for pid, sid in enumerate(assignment):
                if not 0 <= sid < socket_count:
                    raise PartitionError(
                        f"assignment places partition {pid} on unknown "
                        f"socket {sid} (socket_count {socket_count})"
                    )
            if len(set(assignment)) != socket_count:
                empty = sorted(set(range(socket_count)) - set(assignment))
                raise PartitionError(
                    f"assignment leaves sockets {empty} without partitions"
                )
        self.socket_count = socket_count
        self._partitions = [
            Partition(partition_id=pid, socket_id=sid)
            for pid, sid in enumerate(assignment)
        ]

    def __len__(self) -> int:
        return len(self._partitions)

    def __iter__(self) -> Iterator[Partition]:
        return iter(self._partitions)

    def partition(self, partition_id: int) -> Partition:
        """Look up a partition by id.

        Raises:
            PartitionError: for unknown ids.
        """
        if not 0 <= partition_id < len(self._partitions):
            raise PartitionError(f"unknown partition id {partition_id}")
        return self._partitions[partition_id]

    def partition_for_key(self, key: int) -> Partition:
        """The partition responsible for an integer key."""
        return self._partitions[hash_partition(key, len(self._partitions))]

    def socket_of(self, partition_id: int) -> int:
        """Socket holding a partition."""
        return self.partition(partition_id).socket_id

    def assignment(self) -> tuple[int, ...]:
        """Current socket id per partition id (a placement snapshot)."""
        return tuple(p.socket_id for p in self._partitions)

    def move_partition(self, partition_id: int, socket_id: int) -> None:
        """Re-home a partition onto another socket.

        Only the catalog changes; quiescing workers, shipping the queue,
        and charging the transfer are the migration protocol's job
        (:mod:`repro.placement.migration`).

        Raises:
            PartitionError: for unknown partition or socket ids.
        """
        if not 0 <= socket_id < self.socket_count:
            raise PartitionError(f"unknown socket id {socket_id}")
        self.partition(partition_id).socket_id = socket_id

    def partitions_on_socket(self, socket_id: int) -> tuple[Partition, ...]:
        """All partitions resident on one socket."""
        return tuple(
            p for p in self._partitions if p.socket_id == socket_id
        )

    def create_table_everywhere(self, name: str, schema: Schema) -> None:
        """Create a table fragment in every partition."""
        for partition in self._partitions:
            partition.create_table(name, schema)
