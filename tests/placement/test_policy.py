"""Tests for placement policies and their name registry."""

import pytest

from repro.errors import PlacementError
from repro.placement import (
    DEFAULT_PLACEMENT,
    BalancePlacement,
    ConsolidatePlacement,
    MigrationRequest,
    PlacementPolicy,
    PlacementView,
    SocketView,
    StaticPlacement,
    build_placement,
    get_placement,
    register_placement,
    registered_placements,
    round_robin_assignment,
    unregister_placement,
    validate_placement_name,
)


def view(*sockets: SocketView) -> PlacementView:
    return PlacementView(time_s=1.0, sockets=tuple(sockets))


def sv(sid, pids, util, active=True) -> SocketView:
    return SocketView(
        socket_id=sid,
        partition_ids=tuple(pids),
        utilization=util,
        pending_instructions=0.0,
        active=active,
    )


class TestRoundRobin:
    def test_matches_historical_modulo(self):
        assert round_robin_assignment(5, [0, 1]) == [0, 1, 0, 1, 0]

    def test_non_contiguous_socket_ids(self):
        assert round_robin_assignment(4, [3, 7]) == [3, 7, 3, 7]

    def test_no_sockets_rejected(self):
        with pytest.raises(PlacementError):
            round_robin_assignment(4, [])


class TestStatic:
    def test_never_migrates(self):
        policy = StaticPlacement()
        assert policy.plan(view(sv(0, [0], 0.01), sv(1, [1], 0.99))) == []

    def test_assignment_is_round_robin(self):
        policy = StaticPlacement()
        assert policy.initial_assignment(4, [0, 1]) == [0, 1, 0, 1]


class TestConsolidate:
    def test_packs_cold_sockets(self):
        policy = ConsolidatePlacement(pack_below=0.35, spread_above=0.85)
        plan = policy.plan(view(sv(0, [0, 2], 0.1), sv(1, [1, 3], 0.1)))
        # The highest-id socket is drained entirely onto the other.
        assert {r.partition_id for r in plan} == {1, 3}
        assert all(r.target_socket == 0 for r in plan)

    def test_no_pack_above_threshold(self):
        policy = ConsolidatePlacement(pack_below=0.35, spread_above=0.85)
        assert policy.plan(view(sv(0, [0], 0.5), sv(1, [1], 0.5))) == []

    def test_no_pack_when_projection_overloads(self):
        # Mean is below pack_below but the merged load would exceed
        # spread_above on the single survivor.
        policy = ConsolidatePlacement(pack_below=0.5, spread_above=0.85)
        assert policy.plan(view(sv(0, [0], 0.45), sv(1, [1], 0.45))) == []

    def test_spreads_overloaded_socket(self):
        policy = ConsolidatePlacement()
        plan = policy.plan(view(sv(0, [0, 1, 2, 3], 0.95), sv(1, [], 0.0)))
        assert len(plan) == 2  # half the partitions
        assert all(r.target_socket == 1 for r in plan)

    def test_spread_takes_priority_over_pack(self):
        # The hot socket re-spreads onto the empty one before any packing
        # is considered.
        policy = ConsolidatePlacement(pack_below=0.5, spread_above=0.9)
        plan = policy.plan(view(sv(0, [0, 1], 0.95), sv(1, [], 0.0)))
        assert plan and all(r.target_socket == 1 for r in plan)

    def test_inactive_sockets_are_not_receivers(self):
        policy = ConsolidatePlacement()
        plan = policy.plan(
            view(sv(0, [0], 0.1), sv(1, [1], 0.1), sv(2, [2], 0.1, active=False))
        )
        assert plan
        assert all(r.target_socket != 2 for r in plan)

    def test_threshold_validation(self):
        with pytest.raises(PlacementError):
            ConsolidatePlacement(pack_below=0.9, spread_above=0.5)
        with pytest.raises(PlacementError):
            ConsolidatePlacement(pack_below=0.0)


class TestBalance:
    def test_evens_out_counts(self):
        policy = BalancePlacement()
        plan = policy.plan(view(sv(0, [0, 1, 2, 3], 0.5), sv(1, [4], 0.5)))
        assert len(plan) == 1  # 4/1 -> 3/2 is within tolerance 1
        assert plan[0].target_socket == 1

    def test_within_tolerance_is_stable(self):
        policy = BalancePlacement(tolerance=1)
        assert policy.plan(view(sv(0, [0, 1], 0.5), sv(1, [2], 0.5))) == []

    def test_tolerance_validation(self):
        with pytest.raises(PlacementError):
            BalancePlacement(tolerance=-1)


class TestView:
    def test_socket_lookup(self):
        v = view(sv(0, [0], 0.5), sv(1, [1], 0.5))
        assert v.socket(1).socket_id == 1
        with pytest.raises(PlacementError):
            v.socket(9)


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = registered_placements()
        assert names[0] == "static"
        assert {"static", "consolidate", "balance"} <= set(names)
        assert DEFAULT_PLACEMENT == "static"

    def test_build_returns_protocol_instances(self):
        for name in registered_placements():
            policy = build_placement(name)
            assert isinstance(policy, PlacementPolicy)
            assert policy.name == name

    def test_validate_round_trips(self):
        assert validate_placement_name("consolidate") == "consolidate"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(PlacementError, match="static"):
            get_placement("nope")

    def test_duplicate_rejected(self):
        with pytest.raises(PlacementError):
            register_placement("static", StaticPlacement)

    def test_empty_name_rejected(self):
        with pytest.raises(PlacementError):
            register_placement("", StaticPlacement)

    def test_register_unregister_cycle(self):
        register_placement("test-only", StaticPlacement, description="x")
        try:
            assert "test-only" in registered_placements()
            assert get_placement("test-only").description == "x"
        finally:
            unregister_placement("test-only")
        assert "test-only" not in registered_placements()
        with pytest.raises(PlacementError):
            unregister_placement("test-only")


class TestRequest:
    def test_request_fields(self):
        request = MigrationRequest(partition_id=3, target_socket=1, reason="r")
        assert (request.partition_id, request.target_socket) == (3, 1)
