"""The full hierarchical Energy-Control Loop, wired to a database engine.

``EnergyControlLoop`` owns one :class:`~repro.ecl.socket_ecl.SocketEcl`
per processor plus the single :class:`~repro.ecl.system_ecl.SystemEcl`,
builds the per-socket energy profiles from the configuration generator,
and charges its own (small) compute overhead against the engine.

Two ways to initialize the profiles:

* :meth:`EnergyControlLoop.bootstrap_multiplexed` — the honest runtime
  path: every configuration starts stale and the multiplexed adaptation
  sweeps through them using real (noisy) counter measurements.  This is
  what happens after any major workload change anyway.
* :meth:`EnergyControlLoop.warm_start_from_model` — fills the profiles
  from the analytical models in one shot.  Used by benchmarks that study
  steady-state behaviour and don't want to simulate the initial sweep;
  online adaptation keeps the entries honest afterwards.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ControlError
from repro.dbms.engine import DatabaseEngine
from repro.hardware.perfmodel import WorkloadCharacteristics
from repro.profiles.configuration import Configuration
from repro.profiles.evaluate import measure_configuration
from repro.profiles.generator import ConfigurationGenerator, GeneratorParameters
from repro.profiles.profile import EnergyProfile
from repro.sim.metrics import SampleAnnotations
from repro.ecl.calibration import CalibrationResult, MetaCalibrator
from repro.ecl.socket_ecl import EclParameters, SocketEcl
from repro.ecl.system_ecl import SystemEcl

if TYPE_CHECKING:
    from repro.sim.runner import RunConfiguration


class EnergyControlLoop:
    """Hierarchical ECL (socket-level loops + system-level loop)."""

    def __init__(
        self,
        engine: DatabaseEngine,
        params: EclParameters | None = None,
        generator_params: GeneratorParameters | None = None,
    ):
        self.engine = engine
        self.machine = engine.machine
        self.params = params or EclParameters()
        self.generator_params = generator_params or GeneratorParameters()

        self.system = SystemEcl(
            engine.latency,
            latency_limit_s=self.params.latency_limit_s,
            check_interval_s=min(0.1, self.params.interval_s / 2),
        )
        #: The ECL's own compute overhead in instructions/s per socket —
        #: constant over a run (params and the nominal clock never
        #: change), so the per-tick hot path multiplies once instead of
        #: re-deriving it.  Per-socket because wimpy and brawny nodes
        #: clock their control threads differently.
        self._overhead_rate_ips = {
            sock.socket_id: (
                self.params.overhead_thread_fraction
                * self.machine.params_for(sock.socket_id).core_nominal_ghz
                * 1e9
            )
            for sock in self.machine.topology.sockets
        }
        #: Why :meth:`macro_view` last refused a span (telemetry).
        self.macro_cut: str = ""

        self.profiles: dict[int, EnergyProfile] = {}
        self.sockets: dict[int, SocketEcl] = {}
        for sock in self.machine.topology.sockets:
            sid = sock.socket_id
            generator = ConfigurationGenerator(
                self.machine.topology, self.machine.params_for(sid), sid,
                self.generator_params,
            )
            profile = EnergyProfile(generator.generate())
            self.profiles[sid] = profile
            self.sockets[sid] = SocketEcl(
                machine=self.machine,
                socket_id=sid,
                profile=profile,
                params=self.params,
                utilization_fn=self._utilization_fn(sid),
                time_to_violation_fn=self.system.time_to_violation_s,
                busy_fraction_fn=self._busy_fraction_fn(sid),
                backlog_fn=self._backlog_fn(sid),
            )
        self.calibration: CalibrationResult | None = None

    @classmethod
    def build(
        cls, engine: DatabaseEngine, config: "RunConfiguration"
    ) -> "EnergyControlLoop":
        """Control-policy factory (see :mod:`repro.sim.policy`).

        Initializes the profiles the way the run configuration asks:
        warm-started from the analytical model, or left stale for the
        honest multiplexed runtime sweep.
        """
        ecl = cls(
            engine,
            params=config.ecl_params,
            generator_params=config.generator_params,
        )
        if config.warm_start:
            ecl.warm_start_from_model(chars=config.workload.characteristics)
        else:
            ecl.bootstrap_multiplexed()
        return ecl

    def _utilization_fn(self, socket_id: int):
        def read(now_s: float) -> float:
            return self.engine.utilization.utilization(socket_id, now_s)

        return read

    def _busy_fraction_fn(self, socket_id: int):
        def read(now_s: float) -> float:
            return self.engine.utilization.busy_fraction(socket_id, now_s)

        return read

    def _backlog_fn(self, socket_id: int):
        hub = self.engine.hubs[socket_id]

        def read() -> float:
            return hub.pending_cost_instructions()

        return read

    # -- initialization -----------------------------------------------------------

    def calibrate(self, socket_id: int = 0) -> CalibrationResult:
        """Run the meta calibration and adopt its apply/measure times.

        Mutates the machine (it steps time); run before query processing
        starts, as the paper's ECL does once at startup.
        """
        result = MetaCalibrator(self.machine, socket_id).run()
        self.calibration = result
        object.__setattr__(self.params, "apply_time_s", result.apply_time_s)
        object.__setattr__(self.params, "measure_time_s", result.measure_time_s)
        return result

    def apply_baseline(self) -> None:
        """Start from the uncontrolled state: everything on, max clocks."""
        for sock in self.machine.topology.sockets:
            params = self.machine.params_for(sock.socket_id)
            socket = self.machine.topology.socket(sock.socket_id)
            config = Configuration.build(
                sock.socket_id,
                set(socket.thread_ids()),
                {c.core_id: params.core_nominal_ghz for c in socket.cores},
                params.uncore_max_ghz,
            )
            config.apply(self.machine)

    def bootstrap_multiplexed(self) -> None:
        """Leave all profile entries stale for the runtime sweep."""
        for profile in self.profiles.values():
            profile.mark_all_stale()
        self.apply_baseline()

    def warm_start_from_model(
        self,
        chars: WorkloadCharacteristics | None = None,
        chars_by_socket: dict[int, WorkloadCharacteristics] | None = None,
    ) -> None:
        """Fill every profile from the analytical models (fast start).

        Raises:
            ControlError: when neither characteristics source is given.
        """
        if chars is None and chars_by_socket is None:
            raise ControlError(
                "warm start needs chars= or chars_by_socket="
            )
        for sid, profile in self.profiles.items():
            socket_chars = (
                chars_by_socket[sid] if chars_by_socket is not None else chars
            )
            assert socket_chars is not None
            for configuration in profile.configurations():
                measurement = measure_configuration(
                    self.machine, configuration, socket_chars
                )
                profile.record(configuration, measurement)
            os_idle = measure_configuration(
                self.machine,
                profile.idle_configuration,
                socket_chars,
                assume_machine_idle_for_idle=False,
            )
            profile.os_idle_power_w = os_idle.power_w
        self.apply_baseline()

    # -- main loop -----------------------------------------------------------------

    def on_tick(self, now_s: float, dt_s: float) -> None:
        """Run all loops for the upcoming tick; call before engine.tick."""
        self.system.on_tick(now_s)
        overhead = self.engine.overhead_balances()
        for sid, socket_ecl in self.sockets.items():
            if socket_ecl.drained:
                # The socket-level loop's thread is parked along with its
                # socket; it neither decides nor costs anything.
                continue
            socket_ecl.on_tick(now_s)
            overhead[sid] += self._overhead_rate_ips[sid] * dt_s

    def macro_view(
        self, now_s: float, dt_s: float
    ) -> tuple[float, dict[int, float]] | None:
        """Steady-state span program for the macro-stepping runner.

        Returns ``(horizon_s, tick_charges)`` promising that for every
        tick starting strictly before ``horizon_s`` on which the
        simulation state does not otherwise change, :meth:`on_tick` is
        exactly equivalent to charging ``tick_charges[sid]`` overhead
        instructions per socket — no decisions, no reconfigurations, no
        counter or RNG activity.  The horizon folds every scheduled
        control event: the system-level check, each socket loop's
        interval deadline, its RTI phase flips, and the phase transitions
        of any in-flight multiplexed measurement slot (see
        :meth:`SocketEcl.macro_horizon_s`).  ``None`` means some loop
        acts on the very next tick and it must run live; the reason is
        left in :attr:`macro_cut` for span-cut attribution.

        The system-level latency check deliberately does NOT bound the
        horizon: it is exactly replayable after the fact (see
        :meth:`macro_replay`), so spans leap across it.
        """
        horizon = float("inf")
        charges: dict[int, float] = {}
        for sid, socket_ecl in self.sockets.items():
            if socket_ecl.drained:
                continue  # stood down: no decisions and no overhead
            h = socket_ecl.macro_horizon_s(now_s)
            if h is None:
                self.macro_cut = socket_ecl.macro_cut
                return None
            if h < horizon:
                horizon = h
            charges[sid] = self._overhead_rate_ips[sid] * dt_s
        return horizon, charges

    def macro_step_tick(self, now_s: float, dt_s: float) -> bool:
        """Replay one hardware-inert control tick inside a macro span.

        Called by the composite span executor when :meth:`macro_view`
        refuses because some loop acts on the very next tick.  If every
        non-drained socket loop's action is *replayable* — a no-op or a
        counter-window open, i.e. RNG reads but no machine mutation (see
        :meth:`SocketEcl.macro_tick_replayable`) — this runs the control
        phase of the tick at ``now_s`` exactly as the live pipeline
        would (system check first, then the socket loops in dict order,
        preserving RNG draw order) and returns True; the runner then
        continues the span across the tick.  Returns False, touching
        nothing, when any loop's action mutates hardware state and the
        tick must run live.

        No overhead is charged here: the tick itself is committed by the
        *following* span segment, whose per-tick charges cover it — or
        by the live fallback, where :meth:`on_tick` re-runs as a pure
        no-op (every action taken here is idempotent at the same
        timestamp) and charges normally.
        """
        live = [s for s in self.sockets.values() if not s.drained]
        for socket_ecl in live:
            if not socket_ecl.macro_tick_replayable(now_s):
                return False
        self.system.on_tick(now_s)
        for socket_ecl in live:
            socket_ecl.on_tick(now_s)
        return True

    def macro_replay(self, start_s: float, dt_s: float, n_ticks: int) -> None:
        """Replay the system-level latency checks of a committed span.

        The socket loops are provably inert across a span (that is what
        :meth:`macro_view`'s horizon promised), but the system check has
        its own cadence and *does* fire inside long spans.  Firing it at
        the exact tick times the per-tick path would have used is
        bit-identical to ticking through: the latency tracker is frozen
        in-span (no completions), non-fire ticks are pure deadline
        comparisons, and its published time-to-violation is only read at
        the socket loops' interval decisions — which always land on live
        ticks.  The tick grid is the same left fold of ``+ dt_s`` the
        engine commits (``np.add.accumulate`` is a strict left-to-right
        fold), so the fire times match bit for bit.
        """
        system = self.system
        # Fast exit with a coarse overestimate of the span end; the 1 ms
        # slack dwarfs the fold's accumulated rounding error.
        if system.next_check_s > start_s + (n_ticks + 1) * dt_s + 1e-3:
            return
        # The skipped control phases ran at start_s, start_s + dt_s, ...:
        # the span's first tick replaces the control phase at ``start_s``
        # itself (the attempt happens where that phase would have run),
        # so the grid starts there — not one tick later, which would
        # fire a check due exactly at the span boundary one tick late.
        times = np.add.accumulate(
            np.concatenate(([start_s], np.full(n_ticks - 1, dt_s)))
        ).tolist()
        j = 0
        while True:
            target = system.next_check_s
            # Land at or just before the first due tick, then settle on
            # it with the deadline's own predicate (bisect alone could
            # land one tick off within float rounding).
            j = bisect_left(times, target - 2e-12, j)
            while j < n_ticks and times[j] + 1e-12 < target:
                j += 1
            if j >= n_ticks:
                return
            system.on_tick(times[j])
            j += 1

    def annotate_sample(self) -> SampleAnnotations:
        """Per-socket demanded levels and applied configurations."""
        return SampleAnnotations(
            performance_levels=tuple(
                self.sockets[sid].performance_level
                for sid in sorted(self.sockets)
            ),
            applied=tuple(
                (
                    cfg.describe()
                    if (cfg := self.sockets[sid].applied_configuration)
                    else "none"
                )
                for sid in sorted(self.sockets)
            ),
        )
