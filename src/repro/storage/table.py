"""Tables: schema-validated collections of columns with optional indexes.

A table fragment lives inside exactly one partition (see
:mod:`repro.storage.partition`); the table itself does not know about
partitioning.  Indexes are maintained transparently on insert/update.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.errors import SchemaError, StorageError
from repro.storage.column import Column
from repro.storage.hashindex import HashIndex
from repro.storage.orderedindex import OrderedIndex
from repro.storage.schema import DataType, Schema


class Table:
    """One in-memory columnar table (fragment)."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._columns = [
            Column(spec.dtype, name=spec.name) for spec in schema.columns
        ]
        self._indexes: dict[str, HashIndex] = {}
        self._ordered_indexes: dict[str, OrderedIndex] = {}
        self._row_count = 0

    # -- size -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._row_count

    @property
    def row_count(self) -> int:
        """Number of rows stored."""
        return self._row_count

    @property
    def bytes_used(self) -> int:
        """Approximate live data bytes across all columns."""
        return sum(c.bytes_used for c in self._columns)

    # -- columns / indexes ---------------------------------------------------------

    def column(self, name: str) -> Column:
        """Access a column by name."""
        return self._columns[self.schema.position(name)]

    def create_index(self, column_name: str) -> HashIndex:
        """Create (or return) a hash index over an integer column."""
        spec = self.schema.column(column_name)
        if spec.dtype not in (DataType.INT32, DataType.INT64):
            raise StorageError(
                f"hash indexes require integer columns, {column_name} is "
                f"{spec.dtype.value}"
            )
        if column_name in self._indexes:
            return self._indexes[column_name]
        index = HashIndex(initial_capacity=max(16, self._row_count * 2))
        col = self.column(column_name)
        for row in range(self._row_count):
            index.insert(int(col.get(row)), row)
        self._indexes[column_name] = index
        return index

    def index(self, column_name: str) -> HashIndex | None:
        """The index on a column, or None."""
        return self._indexes.get(column_name)

    def create_ordered_index(self, column_name: str) -> OrderedIndex:
        """Create (or return) an ordered index over an integer column.

        Ordered indexes serve range predicates (``scan_range`` uses one
        automatically when present); they are maintained on insert and
        rebuilt on update of the indexed column.
        """
        spec = self.schema.column(column_name)
        if spec.dtype not in (DataType.INT32, DataType.INT64):
            raise StorageError(
                f"ordered indexes require integer columns, {column_name} is "
                f"{spec.dtype.value}"
            )
        if column_name in self._ordered_indexes:
            return self._ordered_indexes[column_name]
        index = OrderedIndex()
        col = self.column(column_name)
        for row in range(self._row_count):
            index.insert(int(col.get(row)), row)
        index.compact()
        self._ordered_indexes[column_name] = index
        return index

    def ordered_index(self, column_name: str) -> OrderedIndex | None:
        """The ordered index on a column, or None."""
        return self._ordered_indexes.get(column_name)

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        """Names of indexed columns."""
        return tuple(self._indexes)

    # -- mutation -----------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Insert one row; returns its position."""
        values = self.schema.validate_row(row)
        position = self._row_count
        for column, value in zip(self._columns, values):
            column.append(value)
        self._row_count += 1
        for name, idx in self._indexes.items():
            idx.insert(int(values[self.schema.position(name)]), position)
        for name, ordered in self._ordered_indexes.items():
            ordered.insert(int(values[self.schema.position(name)]), position)
        return position

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> None:
        """Insert several rows."""
        for row in rows:
            self.insert(row)

    def update(self, position: int, column_name: str, value: Any) -> None:
        """Update one field of one row, keeping indexes consistent."""
        if not 0 <= position < self._row_count:
            raise StorageError(f"row {position} out of range")
        column = self.column(column_name)
        if column_name in self._indexes:
            old = int(column.get(position))
            column.set(position, value)
            idx = self._indexes[column_name]
            idx.delete(old, position)
            idx.insert(int(value), position)
        else:
            column.set(position, value)
        if column_name in self._ordered_indexes:
            # Sorted runs do not support point deletion; rebuild lazily.
            del self._ordered_indexes[column_name]
            self.create_ordered_index(column_name)

    # -- access -----------------------------------------------------------------

    def get_row(self, position: int) -> tuple[Any, ...]:
        """Materialize a full row."""
        if not 0 <= position < self._row_count:
            raise StorageError(f"row {position} out of range")
        return tuple(c.get(position) for c in self._columns)

    def get_value(self, position: int, column_name: str) -> Any:
        """One field of one row."""
        return self.column(column_name).get(position)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over all rows."""
        for position in range(self._row_count):
            yield self.get_row(position)

    # -- query operators ------------------------------------------------------------

    def lookup(self, column_name: str, key: int) -> list[int]:
        """Index lookup (falls back to a scan when no index exists)."""
        idx = self._indexes.get(column_name)
        if idx is not None:
            return idx.lookup(key)
        return [int(p) for p in self.column(column_name).scan_equal(key)]

    def scan_equal(self, column_name: str, value: Any) -> np.ndarray:
        """Full scan for equality, returning row positions."""
        return self.column(column_name).scan_equal(value)

    def scan_range(self, column_name: str, low: Any, high: Any) -> np.ndarray:
        """Row positions for a closed range.

        Served by the ordered index when one exists (two binary searches),
        else by a full column scan.
        """
        ordered = self._ordered_indexes.get(column_name)
        if ordered is not None:
            return np.array(
                sorted(ordered.range_rows(int(low), int(high))), dtype=np.int64
            )
        return self.column(column_name).scan_range(low, high)

    def select(
        self, positions: np.ndarray | Sequence[int], column_names: Sequence[str]
    ) -> list[tuple[Any, ...]]:
        """Materialize a projection of the given rows.

        Gathers each column in one vectorized pass and zips the results
        into row tuples.
        """
        if not isinstance(positions, np.ndarray):
            positions = np.asarray(list(positions), dtype=np.int64)
        columns = [self.column(n) for n in column_names]
        if not columns:
            return [() for _ in positions]
        return list(zip(*(c.gather(positions) for c in columns)))

    def aggregate_sum(
        self, column_name: str, positions: np.ndarray | None = None
    ) -> float:
        """Sum a numeric column over all rows or a position subset."""
        spec = self.schema.column(column_name)
        if not spec.dtype.is_numeric:
            raise SchemaError(f"cannot sum string column {column_name!r}")
        return self.column(column_name).sum(positions)
