"""Tests for cost-accounted operator execution."""

import pytest

from repro.dbms.execution import (
    aggregate_op,
    insert_op,
    lookup_op,
    modeled_insert_cost,
    modeled_lookup_cost,
    modeled_scan_cost,
    scan_op,
    update_op,
)
from repro.storage.partition import Partition
from repro.storage.schema import DataType, Schema


@pytest.fixture
def partition():
    p = Partition(partition_id=0, socket_id=0)
    table = p.create_table(
        "t", Schema.of(k=DataType.INT64, v=DataType.INT64)
    )
    for i in range(100):
        table.insert((i, i * 10))
    return p


@pytest.fixture
def indexed_partition(partition):
    partition.table("t").create_index("k")
    return partition


class TestRealOperators:
    def test_insert(self, partition):
        result, cost = insert_op("t", (200, 2000))(partition)
        assert partition.table("t").row_count == 101
        assert cost.instructions > 0
        assert cost.bytes_accessed > 0

    def test_insert_with_index_costs_more(self, indexed_partition):
        plain_partition = _strip_index(indexed_partition)
        _, plain = insert_op("t", (201, 1))(plain_partition)
        _, indexed = insert_op("t", (202, 1))(indexed_partition)
        assert indexed.instructions > plain.instructions

    def test_lookup_indexed(self, indexed_partition):
        rows, cost = lookup_op("t", "k", 42)(indexed_partition)
        assert rows == [(42, 420)]
        # An index probe is far cheaper than a 100-row scan.
        _, scan_cost_value = lookup_op("t", "k", 42)(
            _strip_index(indexed_partition)
        )
        assert cost.instructions < scan_cost_value.instructions

    def test_lookup_missing_key(self, indexed_partition):
        rows, _ = lookup_op("t", "k", 999999)(indexed_partition)
        assert rows == []

    def test_lookup_projection(self, indexed_partition):
        rows, _ = lookup_op("t", "k", 5, project=("v",))(indexed_partition)
        assert rows == [(50,)]

    def test_update(self, indexed_partition):
        count, cost = update_op("t", "k", 10, "v", 77)(indexed_partition)
        assert count == 1
        assert indexed_partition.table("t").get_value(10, "v") == 77
        assert cost.instructions > 0

    def test_scan_range(self, partition):
        rows, cost = scan_op("t", "k", 10, 14, project=("k",))(partition)
        assert [r[0] for r in rows] == [10, 11, 12, 13, 14]
        assert cost.bytes_accessed >= 100 * 8  # whole column touched

    def test_aggregate(self, partition):
        total, cost = aggregate_op("t", "k", 0, 9, "v")(partition)
        assert total == pytest.approx(sum(i * 10 for i in range(10)))
        assert cost.instructions > 100


def _strip_index(partition: Partition) -> Partition:
    """A copy-free trick: build an identical partition without the index."""
    fresh = Partition(partition_id=1, socket_id=0)
    table = fresh.create_table("t", partition.table("t").schema)
    for row in partition.table("t").rows():
        table.insert(row)
    return fresh


class TestModeledCosts:
    def test_lookup_cost_scales_with_probes(self):
        assert (
            modeled_lookup_cost(probes=4.0).instructions
            > modeled_lookup_cost(probes=1.0).instructions
        )

    def test_scan_cost_scales_with_rows(self):
        small = modeled_scan_cost(1000, 8)
        big = modeled_scan_cost(100_000, 8)
        assert big.instructions > 50 * small.instructions
        assert big.bytes_accessed == pytest.approx(800_000)

    def test_insert_cost_index_overhead(self):
        assert (
            modeled_insert_cost(indexed=True).instructions
            > modeled_insert_cost(indexed=False).instructions
        )

    def test_modeled_close_to_real_lookup(self, indexed_partition):
        """Modeled costs should be in the ballpark of executed ones."""
        _, real = lookup_op("t", "k", 42)(indexed_partition)
        modeled = modeled_lookup_cost()
        assert modeled.instructions == pytest.approx(real.instructions, rel=0.5)
