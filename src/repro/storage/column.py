"""Typed growable columns backed by numpy arrays.

Numeric columns live in contiguous numpy buffers (doubling growth), which
keeps scans vectorized and makes the bytes-touched cost accounting honest.
String columns fall back to a Python list — the benchmarks only use them
for small attribute fields.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import StorageError
from repro.storage.schema import DataType

_NUMPY_DTYPES = {
    DataType.INT32: np.int32,
    DataType.INT64: np.int64,
    DataType.FLOAT64: np.float64,
}

_INITIAL_CAPACITY = 64


class Column:
    """One typed column with append/get/scan/aggregate operations."""

    def __init__(self, dtype: DataType, name: str = ""):
        self.name = name
        self.dtype = dtype
        self._length = 0
        if dtype is DataType.STRING:
            self._strings: list[str] = []
            self._buffer: np.ndarray | None = None
        else:
            self._strings = []
            self._buffer = np.zeros(_INITIAL_CAPACITY, dtype=_NUMPY_DTYPES[dtype])

    # -- size -------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def bytes_used(self) -> int:
        """Approximate bytes of live data (not capacity)."""
        return self._length * self.dtype.width_bytes

    # -- mutation ------------------------------------------------------------

    def append(self, value: Any) -> int:
        """Validate and append one value; returns its row position."""
        value = self.dtype.validate(value)
        if self.dtype is DataType.STRING:
            self._strings.append(value)
        else:
            assert self._buffer is not None
            if self._length == len(self._buffer):
                grown = np.zeros(len(self._buffer) * 2, dtype=self._buffer.dtype)
                grown[: self._length] = self._buffer
                self._buffer = grown
            self._buffer[self._length] = value
        self._length += 1
        return self._length - 1

    def _reserve(self, additional: int) -> None:
        """Grow the buffer (doubling) to fit ``additional`` more values."""
        assert self._buffer is not None
        needed = self._length + additional
        capacity = len(self._buffer)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.zeros(capacity, dtype=self._buffer.dtype)
        grown[: self._length] = self._buffer[: self._length]
        self._buffer = grown

    def _coerce_bulk(self, values: Any) -> np.ndarray | None:
        """Coerce ``values`` to a clean 1-D array of this column's dtype.

        Returns None when the input cannot be validated wholesale (mixed
        types, bools, out-of-range integers, object arrays) — the caller
        falls back to per-value appends, which raise the usual errors.
        """
        try:
            array = np.asarray(values)
        except (ValueError, TypeError, OverflowError):
            return None
        if array.ndim != 1:
            return None
        kind = array.dtype.kind
        if self.dtype is DataType.FLOAT64:
            if kind not in "iuf":
                return None
            return array.astype(np.float64, copy=False)
        if kind not in "iu":
            return None
        if self.dtype is DataType.INT32:
            if array.size and (
                int(array.min()) < -(2**31) or int(array.max()) >= 2**31
            ):
                return None
            return array.astype(np.int32, copy=False)
        if kind == "u" and array.size and int(array.max()) >= 2**63:
            return None
        return array.astype(np.int64, copy=False)

    def extend(self, values: Any) -> None:
        """Append many values.

        Numeric columns take a vectorized path — one bulk buffer copy —
        when the input coerces to a clean numeric array.  The bulk path
        additionally accepts numpy scalar types that the per-value
        ``append`` would reject; anything it cannot validate wholesale
        falls back to per-value appends with identical error behaviour.
        """
        if self.dtype is DataType.STRING:
            for value in values:
                self.append(value)
            return
        if not isinstance(values, np.ndarray):
            values = list(values)
            if not values:
                return
        elif not len(values):
            return
        array = self._coerce_bulk(values)
        if array is None:
            for value in values:
                self.append(value)
            return
        count = len(array)
        self._reserve(count)
        assert self._buffer is not None
        self._buffer[self._length : self._length + count] = array
        self._length += count

    def set(self, position: int, value: Any) -> None:
        """Overwrite the value at ``position`` (in-place update)."""
        self._check_position(position)
        value = self.dtype.validate(value)
        if self.dtype is DataType.STRING:
            self._strings[position] = value
        else:
            assert self._buffer is not None
            self._buffer[position] = value

    # -- access ---------------------------------------------------------------

    def get(self, position: int) -> Any:
        """Value at ``position``."""
        self._check_position(position)
        if self.dtype is DataType.STRING:
            return self._strings[position]
        assert self._buffer is not None
        value = self._buffer[position]
        return float(value) if self.dtype is DataType.FLOAT64 else int(value)

    def _check_position(self, position: int) -> None:
        if not 0 <= position < self._length:
            raise StorageError(
                f"position {position} out of range [0, {self._length})"
            )

    def values(self) -> Iterator[Any]:
        """Iterate over all values in row order."""
        if self.dtype is DataType.STRING:
            yield from self._strings
        else:
            assert self._buffer is not None
            for i in range(self._length):
                yield self.get(i)

    def view(self) -> np.ndarray:
        """Zero-copy numpy view of a numeric column's live data.

        Raises:
            StorageError: for string columns.
        """
        if self._buffer is None:
            raise StorageError("string columns have no numpy view")
        return self._buffer[: self._length]

    # -- query operators --------------------------------------------------------

    def scan_equal(self, value: Any) -> np.ndarray:
        """Row positions where the column equals ``value`` (full scan)."""
        if self.dtype is DataType.STRING:
            return np.array(
                [i for i, v in enumerate(self._strings) if v == value],
                dtype=np.int64,
            )
        return np.flatnonzero(self.view() == value).astype(np.int64)

    def scan_range(self, low: Any, high: Any) -> np.ndarray:
        """Row positions where ``low <= value <= high`` (numeric only)."""
        if self.dtype is DataType.STRING:
            raise StorageError("range scans are numeric-only")
        data = self.view()
        return np.flatnonzero((data >= low) & (data <= high)).astype(np.int64)

    def scan_predicate(self, predicate: Callable[[Any], bool]) -> np.ndarray:
        """Row positions satisfying an arbitrary predicate (slow path)."""
        return np.fromiter(
            (i for i, v in enumerate(self.values()) if predicate(v)),
            dtype=np.int64,
        )

    def sum(self, positions: np.ndarray | None = None) -> float:
        """Sum of the column (optionally restricted to ``positions``)."""
        if self.dtype is DataType.STRING:
            raise StorageError("cannot sum a string column")
        data = self.view()
        if positions is None:
            return float(data.sum())
        return float(data[positions].sum())

    def gather(self, positions: np.ndarray) -> list[Any]:
        """Materialize the values at the given row positions.

        Numeric columns use one fancy-indexing read; bounds are checked
        explicitly first (negative indices would otherwise wrap silently).

        Raises:
            StorageError: for out-of-range positions.
        """
        if self.dtype is DataType.STRING:
            return [self.get(int(p)) for p in positions]
        index = np.asarray(positions, dtype=np.int64)
        if index.size:
            low = int(index.min())
            high = int(index.max())
            if low < 0 or high >= self._length:
                bad = low if low < 0 else high
                raise StorageError(
                    f"position {bad} out of range [0, {self._length})"
                )
        return self.view()[index].tolist()
