"""Simulation-core throughput: engine+machine ticks per second.

Not a paper figure — a harness microbenchmark guarding the fast
simulation core (memoized hardware step resolution, idle fast path,
heap-based partition acquisition).  It reports ticks/second for a
baseline (all-on) run and an ECL-controlled run and asserts the floor
that keeps the full experiment grid tractable.
"""

import time

from repro.loadprofiles import sine_profile
from repro.sim import RunConfiguration, SimulationRunner
from repro.telemetry import PhaseTimingObserver, TraceRecorder
from repro.workloads import SsbWorkload

from _shared import heading

#: Simulated seconds per measured run (small: this is a microbenchmark).
DURATION_S = 4.0

#: Conservative floor — the seed tree ran ~1.6k ticks/s for the ECL
#: policy on the reference container; the fast core runs ~3x that.
MIN_TICKS_PER_S = 1000.0


def _measure(policy: str, observers=None) -> tuple[float, float]:
    config = RunConfiguration(
        workload=SsbWorkload(),
        profile=sine_profile(low=0.1, high=0.8, period_s=2.0, duration_s=DURATION_S),
        policy=policy,
        seed=7,
    )
    runner = SimulationRunner(config, observers=observers or [])
    ticks = round(DURATION_S / config.tick_s)
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    assert result.queries_completed > 0
    return ticks / elapsed, elapsed


def test_tick_throughput(run_once):
    rates = run_once(
        lambda: {policy: _measure(policy) for policy in ("baseline", "ecl")}
    )

    heading("Simulation core — engine ticks per second")
    for policy, (ticks_per_s, elapsed) in rates.items():
        print(f"{policy:>9}: {ticks_per_s:10,.0f} ticks/s  ({elapsed:.2f} s wall)")

    for policy, (ticks_per_s, _) in rates.items():
        assert ticks_per_s > MIN_TICKS_PER_S, policy


def test_telemetry_overhead(run_once):
    """Telemetry must be pay-for-use: with no observers attached the
    tick rate stays above the floor, and full tracing (event recorder +
    phase timer) costs at most half the throughput."""
    rates = run_once(
        lambda: {
            "off": _measure("ecl"),
            "on": _measure("ecl", [TraceRecorder(), PhaseTimingObserver()]),
        }
    )

    heading("Telemetry overhead — ECL ticks per second")
    for mode, (ticks_per_s, elapsed) in rates.items():
        print(f"{mode:>9}: {ticks_per_s:10,.0f} ticks/s  ({elapsed:.2f} s wall)")
    off, on = rates["off"][0], rates["on"][0]
    print(f" overhead: {1 - on / off:8.1%}")

    assert off > MIN_TICKS_PER_S
    assert on > 0.5 * off


def test_tick_throughput_extra_info(benchmark):
    """Record the ECL tick rate in the pytest-benchmark report."""
    ticks_per_s, _ = benchmark.pedantic(
        _measure, args=("ecl",), rounds=1, iterations=1
    )
    benchmark.extra_info["ticks_per_s"] = round(ticks_per_s)
