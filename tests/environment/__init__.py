"""Tests for the repro.environment scenario layer."""
