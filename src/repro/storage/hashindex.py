"""Open-addressing hash index over int64 keys.

A real index implementation (not a dict wrapper): linear probing over
numpy buckets, power-of-two capacity, tombstone-free deletes via
backward-shift, and probe-count statistics that feed the execution cost
model (an index lookup costs instructions proportional to probes and one
potential DRAM miss).

Duplicate keys are supported by chaining row ids in an overflow list per
slot, since benchmark tables (e.g. TATP ``call_forwarding``) contain
non-unique secondary keys.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import StorageError

_MIN_CAPACITY = 16
_MAX_LOAD = 0.7

#: Multiplicative constant of the 64-bit Fibonacci hash.
_FIB = 11400714819323198485
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _hash(key: int, mask: int) -> int:
    """Fibonacci hash of an int64 key into [0, mask]."""
    h = ((int(key) & _MASK64) * _FIB) & _MASK64
    return (h >> (64 - (mask + 1).bit_length() + 1)) & mask


class HashIndex:
    """Hash index mapping int64 keys to row positions."""

    def __init__(self, initial_capacity: int = _MIN_CAPACITY):
        capacity = max(_MIN_CAPACITY, initial_capacity)
        capacity = 1 << (capacity - 1).bit_length()  # round up to power of two
        self._keys = np.zeros(capacity, dtype=np.int64)
        self._rows = np.zeros(capacity, dtype=np.int64)
        self._used = np.zeros(capacity, dtype=bool)
        #: Overflow row ids for duplicate keys, per occupied slot.
        self._overflow: dict[int, list[int]] = {}
        self._size = 0  # occupied slots
        self._entries = 0  # total (key, row) pairs incl. duplicates
        self.probe_count = 0  # cumulative probes, for cost accounting

    # -- size -------------------------------------------------------------

    def __len__(self) -> int:
        return self._entries

    @property
    def distinct_keys(self) -> int:
        """Number of distinct keys stored."""
        return self._size

    @property
    def capacity(self) -> int:
        """Current bucket-array capacity."""
        return len(self._keys)

    @property
    def load_factor(self) -> float:
        """Occupied slots / capacity."""
        return self._size / len(self._keys)

    # -- internals ------------------------------------------------------------

    def _mask(self) -> int:
        return len(self._keys) - 1

    def _probe(self, key: int) -> Iterator[int]:
        """Yield slot indices of the linear-probe sequence for ``key``."""
        mask = self._mask()
        slot = _hash(key, mask)
        for _ in range(len(self._keys)):
            yield slot
            slot = (slot + 1) & mask

    def _grow(self) -> None:
        old_keys, old_rows, old_overflow = self._keys, self._rows, self._overflow
        old_used = self._used
        capacity = len(old_keys) * 2
        self._keys = np.zeros(capacity, dtype=np.int64)
        self._rows = np.zeros(capacity, dtype=np.int64)
        self._used = np.zeros(capacity, dtype=bool)
        self._overflow = {}
        self._size = 0
        self._entries = 0
        for slot in range(len(old_keys)):
            if not old_used[slot]:
                continue
            key = int(old_keys[slot])
            self.insert(key, int(old_rows[slot]))
            for row in old_overflow.get(slot, ()):
                self.insert(key, row)

    # -- operations ------------------------------------------------------------

    def insert(self, key: int, row: int) -> None:
        """Insert a (key, row) pair; duplicates chain in overflow lists."""
        if row < 0:
            raise StorageError(f"row positions must be >= 0, got {row}")
        if (self._size + 1) / len(self._keys) > _MAX_LOAD:
            self._grow()
        for slot in self._probe(key):
            self.probe_count += 1
            if not self._used[slot]:
                self._keys[slot] = key
                self._rows[slot] = row
                self._used[slot] = True
                self._size += 1
                self._entries += 1
                return
            if self._keys[slot] == key:
                self._overflow.setdefault(slot, []).append(row)
                self._entries += 1
                return
        raise StorageError("hash index full despite load-factor guard")

    def lookup(self, key: int) -> list[int]:
        """All row positions stored under ``key`` (empty list if absent)."""
        for slot in self._probe(key):
            self.probe_count += 1
            if not self._used[slot]:
                return []
            if self._keys[slot] == key:
                rows = [int(self._rows[slot])]
                rows.extend(self._overflow.get(slot, ()))
                return rows
        return []

    def lookup_one(self, key: int) -> int | None:
        """First row position stored under ``key``, or None."""
        rows = self.lookup(key)
        return rows[0] if rows else None

    def contains(self, key: int) -> bool:
        """Whether any row is stored under ``key``."""
        return self.lookup_one(key) is not None

    def delete(self, key: int, row: int | None = None) -> int:
        """Delete entries for ``key``.

        With ``row`` given, removes only that pairing; otherwise removes
        all entries of the key.  Returns the number of removed pairs.
        Slot vacation uses backward-shift deletion to keep probe chains
        intact without tombstones.
        """
        for slot in self._probe(key):
            self.probe_count += 1
            if not self._used[slot]:
                return 0
            if self._keys[slot] != key:
                continue
            overflow = self._overflow.get(slot, [])
            removed = 0
            if row is not None:
                if int(self._rows[slot]) == row:
                    if overflow:
                        self._rows[slot] = overflow.pop(0)
                    else:
                        self._vacate(slot)
                        self._size -= 1
                    removed = 1
                elif row in overflow:
                    overflow.remove(row)
                    removed = 1
            else:
                removed = 1 + len(overflow)
                self._overflow.pop(slot, None)
                self._vacate(slot)
                self._size -= 1
            if slot in self._overflow and not self._overflow[slot]:
                del self._overflow[slot]
            self._entries -= removed
            return removed
        return 0

    def _vacate(self, slot: int) -> None:
        """Backward-shift deletion starting at ``slot``."""
        mask = self._mask()
        self._used[slot] = False
        nxt = (slot + 1) & mask
        while self._used[nxt]:
            key = int(self._keys[nxt])
            home = _hash(key, mask)
            # Move the entry back if its home slot lies "behind" the gap.
            distance_home = (nxt - home) & mask
            distance_gap = (nxt - slot) & mask
            if distance_home >= distance_gap:
                self._keys[slot] = self._keys[nxt]
                self._rows[slot] = self._rows[nxt]
                self._used[slot] = True
                if nxt in self._overflow:
                    self._overflow[slot] = self._overflow.pop(nxt)
                self._used[nxt] = False
                slot = nxt
            nxt = (nxt + 1) & mask

    def keys(self) -> Iterator[int]:
        """Iterate over all distinct keys (unspecified order)."""
        for slot in range(len(self._keys)):
            if self._used[slot]:
                yield int(self._keys[slot])
