"""Tests for clock domains: P-states, EPB, EET, auto-UFS."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.frequency import (
    EnergyPerformanceBias,
    FrequencyDomains,
    FrequencyLadder,
)
from repro.hardware.topology import Topology
from repro.hardware.presets import haswell_ep_two_socket


@pytest.fixture
def domains():
    params = haswell_ep_two_socket()
    topo = Topology.build(
        params.socket_count, params.cores_per_socket, params.threads_per_core
    )
    return FrequencyDomains(topo, params)


class TestLadder:
    def test_default_core_ladder_bounds(self, domains):
        assert domains.core_ladder.minimum == pytest.approx(1.2)
        assert domains.core_ladder.maximum == pytest.approx(3.1)

    def test_default_uncore_ladder_bounds(self, domains):
        assert domains.uncore_ladder.minimum == pytest.approx(1.2)
        assert domains.uncore_ladder.maximum == pytest.approx(3.0)

    def test_validate_rejects_off_ladder(self, domains):
        with pytest.raises(ConfigurationError):
            domains.core_ladder.validate(2.65)

    def test_snap(self, domains):
        assert domains.core_ladder.snap(2.64) == pytest.approx(2.6)
        assert domains.core_ladder.snap(5.0) == pytest.approx(3.1)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyLadder(())

    def test_duplicate_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyLadder((1.2, 1.2, 1.4))

    def test_subset_includes_endpoints(self, domains):
        subset = domains.uncore_ladder.subset(3)
        assert subset[0] == pytest.approx(1.2)
        assert subset[-1] == pytest.approx(3.0)
        assert len(subset) == 3

    def test_subset_count_one(self, domains):
        assert domains.uncore_ladder.subset(1) == (3.0,)

    def test_subset_rejects_zero(self, domains):
        with pytest.raises(ConfigurationError):
            domains.core_ladder.subset(0)

    def test_pstate_index(self, domains):
        p = domains.core_ladder.pstate(1.2)
        assert p.index == 0
        assert p.ghz == pytest.approx(1.2)


class TestCoreClocks:
    def test_default_is_nominal(self, domains):
        assert domains.requested_core_frequency(0, 0) == pytest.approx(2.6)

    def test_set_and_read(self, domains):
        domains.set_core_frequency(0, 3, 1.5, now=0.0)
        assert domains.requested_core_frequency(0, 3) == pytest.approx(1.5)
        assert domains.effective_core_frequency(0, 3, 0.0) == pytest.approx(1.5)

    def test_set_all(self, domains):
        domains.set_all_core_frequencies(1.2, now=0.0)
        for socket in (0, 1):
            for core in range(12):
                assert domains.requested_core_frequency(socket, core) == 1.2

    def test_unknown_core_rejected(self, domains):
        with pytest.raises(ConfigurationError):
            domains.set_core_frequency(0, 12, 1.2, now=0.0)


class TestEnergyEfficientTurbo:
    """Fig. 7: turbo engages after ~1 s unless the EPB is performance."""

    def test_balanced_epb_delays_turbo(self, domains):
        domains.set_core_frequency(0, 0, 3.1, now=5.0)
        assert domains.effective_core_frequency(0, 0, 5.0) == pytest.approx(2.6)
        assert domains.effective_core_frequency(0, 0, 5.5) == pytest.approx(2.6)
        assert domains.effective_core_frequency(0, 0, 6.0) == pytest.approx(3.1)

    def test_performance_epb_enters_turbo_immediately(self, domains):
        for tid in (0, 24):  # both siblings of core (0, 0)
            domains.set_epb(tid, EnergyPerformanceBias.PERFORMANCE)
        domains.set_core_frequency(0, 0, 3.1, now=5.0)
        assert domains.effective_core_frequency(0, 0, 5.0) == pytest.approx(3.1)

    def test_mixed_epb_still_delays(self, domains):
        domains.set_epb(0, EnergyPerformanceBias.PERFORMANCE)
        # sibling 24 stays balanced
        domains.set_core_frequency(0, 0, 3.1, now=0.0)
        assert domains.effective_core_frequency(0, 0, 0.1) == pytest.approx(2.6)

    def test_leaving_turbo_resets_delay(self, domains):
        domains.set_core_frequency(0, 0, 3.1, now=0.0)
        domains.set_core_frequency(0, 0, 2.0, now=0.5)
        domains.set_core_frequency(0, 0, 3.1, now=0.6)
        # new request: the 1 s clock restarts at 0.6
        assert domains.effective_core_frequency(0, 0, 1.5) == pytest.approx(2.6)
        assert domains.effective_core_frequency(0, 0, 1.7) == pytest.approx(3.1)

    def test_non_turbo_requests_unaffected(self, domains):
        domains.set_core_frequency(0, 0, 2.6, now=0.0)
        assert domains.effective_core_frequency(0, 0, 0.0) == pytest.approx(2.6)

    def test_powersave_delays_like_balanced(self, domains):
        for tid in (0, 24):
            domains.set_epb(tid, EnergyPerformanceBias.POWERSAVE)
        domains.set_core_frequency(0, 0, 3.1, now=0.0)
        assert domains.effective_core_frequency(0, 0, 0.5) == pytest.approx(2.6)


class TestUncore:
    def test_pinning(self, domains):
        domains.set_uncore_frequency(0, 1.2)
        assert not domains.uncore_is_auto(0)
        assert domains.effective_uncore_frequency(0, True) == pytest.approx(1.2)
        assert domains.effective_uncore_frequency(0, False) == pytest.approx(1.2)

    def test_auto_ufs_picks_max_under_load(self, domains):
        """Fig. 8: automatic UFS always chooses the highest uncore clock."""
        assert domains.uncore_is_auto(0)
        assert domains.effective_uncore_frequency(0, True) == pytest.approx(3.0)

    def test_auto_ufs_drops_to_min_when_idle(self, domains):
        assert domains.effective_uncore_frequency(0, False) == pytest.approx(1.2)

    def test_back_to_auto(self, domains):
        domains.set_uncore_frequency(1, 2.0)
        domains.set_uncore_auto(1)
        assert domains.uncore_is_auto(1)

    def test_unknown_socket_rejected(self, domains):
        with pytest.raises(ConfigurationError):
            domains.set_uncore_frequency(5, 1.2)

    def test_invalid_pstate_rejected(self, domains):
        with pytest.raises(ConfigurationError):
            domains.set_uncore_frequency(0, 3.2)


class TestEpb:
    def test_default_balanced(self, domains):
        assert domains.epb(0) is EnergyPerformanceBias.BALANCED

    def test_set_all(self, domains):
        domains.set_epb_all(EnergyPerformanceBias.PERFORMANCE)
        assert domains.epb(47) is EnergyPerformanceBias.PERFORMANCE

    def test_unknown_thread_rejected(self, domains):
        with pytest.raises(ConfigurationError):
            domains.set_epb(48, EnergyPerformanceBias.POWERSAVE)

    def test_delays_turbo_flag(self):
        assert EnergyPerformanceBias.BALANCED.delays_turbo
        assert EnergyPerformanceBias.POWERSAVE.delays_turbo
        assert not EnergyPerformanceBias.PERFORMANCE.delays_turbo
