"""Tests for the utilization controller (demand estimation)."""

import pytest

from repro.errors import ControlError
from repro.ecl.utilization import UtilizationController


@pytest.fixture
def controller():
    return UtilizationController()


class TestExactScaling:
    """Paper Eq. 3: level_new = utilization × level_old below saturation."""

    def test_partial_utilization(self, controller):
        assert controller.next_level(0.5, 1e10, float("inf"), 1.0) == pytest.approx(
            5e9
        )

    def test_idle_drops_to_zero(self, controller):
        assert controller.next_level(0.0, 1e10, float("inf"), 1.0) == 0.0

    def test_validation(self, controller):
        with pytest.raises(ControlError):
            controller.next_level(1.5, 1e9, float("inf"), 1.0)
        with pytest.raises(ControlError):
            controller.next_level(0.5, -1.0, float("inf"), 1.0)


class TestDiscovery:
    def test_full_utilization_grows_exponentially(self, controller):
        level = controller.next_level(1.0, 1e10, float("inf"), 1.0)
        assert level == pytest.approx(1e10 * controller.discovery_factor)

    def test_threshold_counts_as_full(self, controller):
        level = controller.next_level(0.98, 1e10, float("inf"), 1.0)
        assert level > 1e10

    def test_zero_level_bootstraps_from_minimum(self, controller):
        level = controller.next_level(1.0, 0.0, float("inf"), 1.0)
        assert level >= controller.minimum_level

    def test_urgency_raises_aggressiveness(self, controller):
        relaxed = controller.next_level(1.0, 1e10, float("inf"), 1.0)
        urgent = controller.next_level(1.0, 1e10, 0.5, 1.0)
        assert urgent > relaxed
        assert urgent == pytest.approx(
            1e10 * controller.urgent_discovery_factor
        )

    def test_violated_limit_is_fully_urgent(self, controller):
        assert controller.discovery_multiplier(0.0, 1.0) == pytest.approx(
            controller.urgent_discovery_factor
        )

    def test_multiplier_interpolates(self, controller):
        mid = controller.discovery_multiplier(8.0, 1.0)
        assert (
            controller.discovery_factor
            < mid
            < controller.urgent_discovery_factor
        )

    def test_invalid_interval(self, controller):
        with pytest.raises(ControlError):
            controller.discovery_multiplier(1.0, 0.0)


class TestConstruction:
    def test_invalid_threshold(self):
        with pytest.raises(ControlError):
            UtilizationController(full_threshold=0.2)

    def test_invalid_factors(self):
        with pytest.raises(ControlError):
            UtilizationController(discovery_factor=0.9)
        with pytest.raises(ControlError):
            UtilizationController(
                discovery_factor=2.0, urgent_discovery_factor=1.5
            )

    def test_invalid_minimum(self):
        with pytest.raises(ControlError):
            UtilizationController(minimum_level=0.0)
