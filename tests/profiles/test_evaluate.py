"""Tests for the model-based profile evaluator."""

from repro.profiles.configuration import Configuration
from repro.profiles.evaluate import build_profile, measure_configuration
from repro.workloads.micro import COMPUTE_BOUND, MEMORY_BOUND


class TestMeasureConfiguration:
    def test_saturating_demand(self, machine):
        config = Configuration.build(0, {0, 24}, {0: 2.6}, 3.0)
        m = measure_configuration(machine, config, COMPUTE_BOUND)
        assert m.power_w > 0
        assert m.performance_score > 1e9

    def test_idle_halted_vs_os_idle(self, machine):
        idle = Configuration.idle(0, 1.2)
        deep = measure_configuration(
            machine, idle, COMPUTE_BOUND, assume_machine_idle_for_idle=True
        )
        os_idle = measure_configuration(
            machine, idle, COMPUTE_BOUND, assume_machine_idle_for_idle=False
        )
        assert deep.power_w < os_idle.power_w
        assert deep.performance_score == 0.0

    def test_timestamp_override(self, machine):
        config = Configuration.build(0, {0}, {0: 1.2}, 1.2)
        m = measure_configuration(machine, config, COMPUTE_BOUND, at_time_s=42.0)
        assert m.measured_at_s == 42.0

    def test_does_not_mutate_machine(self, machine):
        before = machine.state()
        config = Configuration.build(0, set(range(12)), {i: 2.6 for i in range(12)}, 3.0)
        measure_configuration(machine, config, MEMORY_BOUND)
        after = machine.state()
        assert before.active_threads == after.active_threads
        assert before.core_frequencies_ghz == after.core_frequencies_ghz

    def test_more_threads_more_power(self, machine):
        small = Configuration.build(0, {0}, {0: 2.6}, 3.0)
        large = Configuration.build(
            0, set(range(12)), {i: 2.6 for i in range(12)}, 3.0
        )
        m_small = measure_configuration(machine, small, COMPUTE_BOUND)
        m_large = measure_configuration(machine, large, COMPUTE_BOUND)
        assert m_large.power_w > m_small.power_w
        assert m_large.performance_score > m_small.performance_score


class TestBuildProfile:
    def test_full_coverage(self, machine):
        profile = build_profile(machine, 0, COMPUTE_BOUND)
        assert profile.coverage() == 1.0
        assert profile.os_idle_power_w is not None
        assert not profile.stale_entries()

    def test_socket1_profiles_buildable(self, machine):
        profile = build_profile(machine, 1, MEMORY_BOUND)
        assert profile.socket_id == 1
        # The socket asymmetry shows up in the measurements.
        p0 = build_profile(machine, 0, MEMORY_BOUND)
        assert (
            profile.most_efficient().measurement.power_w
            < p0.most_efficient().measurement.power_w
        )
