"""Messages exchanged between workers during query processing.

Queries never touch partitions directly: they decompose into messages, one
per target partition and stage.  A message carries either a *real*
operation (a callable executed against the owning partition's data) or a
pre-computed *modeled* cost — high-rate end-to-end simulations use the
modeled path while tests and examples exercise the real one.  Both paths
charge the same :class:`WorkCost` currency (instructions and bytes), which
is what the hardware performance model consumes.

Messages address partitions by id, never by socket: delivery resolves the
partition's *current* home through the router at flush time, so a message
survives its target partition migrating mid-flight (it is forwarded, at
the cost of an extra transfer hop — see :mod:`repro.dbms.inter_socket`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

from repro.errors import MessagingError
from repro.hardware.perfmodel import WorkloadCharacteristics
from repro.storage.partition import Partition

_message_ids = itertools.count()


class MessageKind(Enum):
    """What a message asks the owning worker to do."""

    WORK = "work"  #: execute an operation against the target partition
    RESULT = "result"  #: deliver a stage result back to the coordinator


@dataclass(frozen=True)
class WorkCost:
    """Execution cost of one message in hardware-model currency.

    Attributes:
        instructions: instructions the operation retires.
        bytes_accessed: DRAM traffic it generates.
    """

    instructions: float
    bytes_accessed: float = 0.0

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.bytes_accessed < 0:
            raise MessagingError(
                f"negative work cost ({self.instructions}, {self.bytes_accessed})"
            )

    def __add__(self, other: "WorkCost") -> "WorkCost":
        return WorkCost(
            instructions=self.instructions + other.instructions,
            bytes_accessed=self.bytes_accessed + other.bytes_accessed,
        )

ZERO_COST = WorkCost(instructions=0.0)

#: A real operation: runs against the partition, returns (result, cost).
Operation = Callable[[Partition], tuple[Any, WorkCost]]


@dataclass
class Message:
    """One unit of work addressed to a partition.

    Exactly one of ``operation`` (real mode) or ``cost`` (modeled mode)
    must be provided for WORK messages; RESULT messages always carry a
    small fixed handling cost.
    """

    query_id: int
    target_partition: int
    kind: MessageKind = MessageKind.WORK
    stage: int = 0
    operation: Optional[Operation] = None
    cost: Optional[WorkCost] = None
    #: Execution characteristics of this message's work.  When set, the
    #: engine blends the tags of all pending work per socket and feeds the
    #: mix to the hardware model — the paper's requirement that energy
    #: profiles "consider mutual interferences of simultaneously running
    #: queries".  Untagged messages fall back to the engine-wide default.
    characteristics: Optional[WorkloadCharacteristics] = None
    payload: Any = None
    created_at_s: float = 0.0
    message_id: int = field(default_factory=lambda: next(_message_ids))
    #: Filled by the worker after execution (real mode only).
    result: Any = None

    def __post_init__(self) -> None:
        if self.kind is MessageKind.WORK:
            if (self.operation is None) == (self.cost is None):
                raise MessagingError(
                    "WORK messages need exactly one of operation= or cost="
                )
        elif self.cost is None:
            # Result handling: unpack + aggregate a stage result.
            self.cost = WorkCost(instructions=400.0, bytes_accessed=64.0)

    @property
    def is_modeled(self) -> bool:
        """True when the message carries a pre-computed cost only."""
        return self.operation is None

    def charged_cost(self) -> WorkCost:
        """The cost to charge before execution (modeled messages only).

        Raises:
            MessagingError: for real-operation messages, whose cost is only
                known after execution.
        """
        if self.cost is None:
            raise MessagingError(
                "cost of a real-operation message is known only after execution"
            )
        return self.cost
