"""Shared helpers for the benchmark harness (see conftest.py)."""

from __future__ import annotations

import os


def bench_duration_s() -> float:
    """Configured duration of end-to-end load-profile runs."""
    return float(os.environ.get("REPRO_BENCH_DURATION", "45"))


def heading(title: str) -> None:
    """Print a figure/table heading."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
