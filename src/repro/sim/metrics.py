"""Run results: time series and aggregate metrics of a simulation."""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from fractions import Fraction

from repro.errors import SimulationError


@dataclass(frozen=True)
class SampleAnnotations:
    """Per-sample observations a control policy volunteers.

    Every registered policy returns one of these from
    ``annotate_sample()``; the sampling observer copies the fields into
    the :class:`SamplePoint` it emits.  Policies with no internal state
    worth plotting return the empty default.

    Attributes:
        performance_levels: per-socket demanded performance level (the
            ECL's utilization-controller output), ascending socket id.
        applied: per-socket human-readable description of the currently
            applied configuration, ascending socket id.
    """

    performance_levels: tuple[float, ...] = ()
    applied: tuple[str, ...] = ()


@dataclass(frozen=True)
class SamplePoint:
    """One periodic sample of the running system.

    The trailing two fields are uniform policy-provided annotations (see
    :class:`SampleAnnotations`) — not ECL special cases: whatever policy
    drives the run decides what they contain.
    """

    time_s: float
    load_qps: float
    rapl_power_w: float
    psu_power_w: float
    avg_latency_s: float | None
    pending_messages: int
    in_flight_queries: int
    performance_levels: tuple[float, ...] = ()
    applied: tuple[str, ...] = ()


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    policy: str
    workload_name: str
    profile_name: str
    #: The duration actually simulated (``tick_count * tick_s``).  Energy
    #: accrues over exactly this long, so time averages divide by it.
    duration_s: float
    #: The caller-requested run length; differs from :attr:`duration_s`
    #: when the request is not a whole number of ticks.
    requested_duration_s: float | None = None
    samples: list[SamplePoint] = field(default_factory=list)
    total_energy_j: float = 0.0
    queries_submitted: int = 0
    queries_completed: int = 0
    latencies_s: list[float] = field(default_factory=list)
    latency_limit_s: float | None = None
    #: Environment accounting (``None`` unless the run attached a
    #: ``RunConfiguration.environment``).  Plain ``None`` defaults keep
    #: equality with results pickled before these fields existed.
    environment_name: str | None = None
    #: Facility wall energy: PSU output × PUE, integrated over the run.
    wall_energy_j: float | None = None
    #: Grams of CO₂ attributed to the run (wall energy × grid intensity).
    gco2_total_g: float | None = None
    #: Electricity cost of the run in dollars (wall energy × price).
    cost_usd: float | None = None

    # -- latency statistics ---------------------------------------------------

    def mean_latency_s(self) -> float | None:
        """Mean end-to-end query latency."""
        if not self.latencies_s:
            return None
        return sum(self.latencies_s) / len(self.latencies_s)

    def percentile_latency_s(self, percentile: float) -> float | None:
        """Nearest-rank latency percentile (e.g. 99.0).

        The rank is ``ceil(p/100 * n)`` — the smallest rank covering at
        least ``p`` percent of the samples — evaluated in exact rational
        arithmetic so float slop cannot shift the rank at boundaries
        (p=99 over 100 samples must select rank 99, not 100).  Unlike
        ``round()``, this definition is monotone in ``p`` at every
        sample count.
        """
        if not self.latencies_s:
            return None
        if not 0 < percentile <= 100:
            raise SimulationError(f"percentile must be in (0, 100], got {percentile}")
        ordered = sorted(self.latencies_s)
        rank = math.ceil(Fraction(percentile) * len(ordered) / 100)
        return ordered[min(len(ordered), rank) - 1]

    def violation_fraction(self) -> float:
        """Fraction of queries exceeding the latency limit."""
        if not self.latencies_s or self.latency_limit_s is None:
            return 0.0
        over = sum(1 for v in self.latencies_s if v > self.latency_limit_s)
        return over / len(self.latencies_s)

    # -- power / energy ----------------------------------------------------------

    def average_power_w(self) -> float:
        """Time-average wall power (PSU-side).

        Divides the PSU-side wall energy (``total_energy_j``, which
        includes conversion losses — *not* the RAPL package counters the
        control plane sees) by the realized run duration.
        """
        if self.duration_s <= 0:
            return 0.0
        return self.total_energy_j / self.duration_s

    def gco2_per_query(self) -> float | None:
        """Grams of CO₂ per completed query (``None`` without accounting)."""
        if self.gco2_total_g is None or self.queries_completed <= 0:
            return None
        return self.gco2_total_g / self.queries_completed

    def cost_per_query_usd(self) -> float | None:
        """Dollars per completed query (``None`` without accounting)."""
        if self.cost_usd is None or self.queries_completed <= 0:
            return None
        return self.cost_usd / self.queries_completed

    def overload_exit_time_s(self, capacity_qps: float) -> float | None:
        """First sample time after which the backlog stays cleared.

        Used by the Fig. 13 analysis ("the baseline stays for about 50 s
        in the overload state, while the ECL only resides for about 20 s
        there"): the moment pending work returns to a trivial level after
        the overload peak — and *never spikes back above it* for the rest
        of the run, so a double spike reports the recovery from the last
        excursion, not the lull between the two.
        """
        if not self.samples:
            return None
        peak_pending = max(s.pending_messages for s in self.samples)
        if peak_pending == 0:
            return None
        peak_time = next(
            s.time_s
            for s in self.samples
            if s.pending_messages == peak_pending
        )
        cleared_threshold = max(4, peak_pending * 0.01)
        exit_time: float | None = None
        for sample in self.samples:
            if sample.time_s <= peak_time:
                continue
            if sample.pending_messages > cleared_threshold:
                # Backlog came back: any earlier candidate is void.
                exit_time = None
            elif exit_time is None:
                exit_time = sample.time_s
        return exit_time

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """Flat, JSON-ready summary of the run (aggregates only).

        One row of a suite-level summary table; the sample time series is
        exported separately by :meth:`to_csv`.
        """
        mean = self.mean_latency_s()
        return {
            "policy": self.policy,
            "workload": self.workload_name,
            "profile": self.profile_name,
            "duration_s": self.duration_s,
            "requested_duration_s": self.requested_duration_s,
            "total_energy_j": self.total_energy_j,
            "average_power_w": self.average_power_w(),
            "queries_submitted": self.queries_submitted,
            "queries_completed": self.queries_completed,
            "mean_latency_s": mean,
            "p50_latency_s": self.percentile_latency_s(50),
            "p99_latency_s": self.percentile_latency_s(99),
            "violation_fraction": self.violation_fraction(),
            "latency_limit_s": self.latency_limit_s,
            "sample_count": len(self.samples),
            "environment": self.environment_name,
            "wall_energy_j": self.wall_energy_j,
            "gco2_total_g": self.gco2_total_g,
            "cost_usd": self.cost_usd,
            "gco2_per_query_g": self.gco2_per_query(),
            "cost_per_query_usd": self.cost_per_query_usd(),
        }

    def to_csv(self) -> str:
        """The sample time series as CSV text (one row per sample).

        Tuple-valued annotation fields are flattened: performance levels
        join with ``;``, applied-configuration strings with ``|``.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            [
                "time_s",
                "load_qps",
                "rapl_power_w",
                "psu_power_w",
                "avg_latency_s",
                "pending_messages",
                "in_flight_queries",
                "performance_levels",
                "applied",
            ]
        )
        for s in self.samples:
            writer.writerow(
                [
                    s.time_s,
                    s.load_qps,
                    s.rapl_power_w,
                    s.psu_power_w,
                    "" if s.avg_latency_s is None else s.avg_latency_s,
                    s.pending_messages,
                    s.in_flight_queries,
                    ";".join(f"{v:g}" for v in s.performance_levels),
                    "|".join(s.applied),
                ]
            )
        return buffer.getvalue()


def energy_saving_fraction(baseline: RunResult, controlled: RunResult) -> float:
    """Relative energy saving of ``controlled`` versus ``baseline``.

    Raises:
        SimulationError: when the baseline consumed no energy.
    """
    if baseline.total_energy_j <= 0:
        raise SimulationError("baseline consumed no energy")
    return 1.0 - controlled.total_energy_j / baseline.total_energy_j
