"""Worker threads: acquire partition → drain batch → release.

Workers are the execution units of the data-oriented runtime.  Each is
pinned to one hardware thread; the elasticity layer parks and unparks
them as the ECL grows or shrinks the active-thread set.  A worker's
processing loop implements the ownership protocol of
:class:`~repro.dbms.intra_socket.IntraSocketHub`:

1. acquire an unowned partition with pending messages,
2. dequeue a batch and execute its messages (charging instruction budget),
3. release the partition and look for the next one.

Processing happens in simulated time: the engine hands every worker an
instruction budget per tick (the hardware model's executed instructions),
and the worker consumes messages until the budget runs dry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import MessagingError
from repro.dbms.intra_socket import (
    DEFAULT_BATCH_SIZE,
    SMALL_RUN,
    IntraSocketHub,
)
from repro.dbms.messages import Message, MessageKind
from repro.storage.partition import PartitionMap


class WorkerState(enum.Enum):
    """Lifecycle state of a worker thread."""

    ACTIVE = "active"  #: unparked, polling for work
    PARKED = "parked"  #: hardware thread in a C-state


class CompletedRun:
    """A drained run of compact (modeled, untagged) messages.

    The vectorized worker returns these inside its completion list in
    place of per-message objects: one run covers ``len(query_ids)``
    consecutively drained messages of one partition (a list for small
    runs, an id-column array otherwise).  The engine settles them
    against the query tracker in one call per run.
    """

    __slots__ = ("partition_id", "query_ids")

    def __init__(self, partition_id: int, query_ids) -> None:
        self.partition_id = partition_id
        self.query_ids = query_ids

    @property
    def count(self) -> int:
        return len(self.query_ids)


class WorkerStatsArrays:
    """Struct-of-arrays counter store for a set of workers.

    The worker pool allocates one instance covering every worker and
    hands each worker an indexed :class:`WorkerStats` view into it, so
    machine-wide aggregation (:meth:`ElasticWorkerPool.total_stats`)
    runs as four vector sums instead of a Python loop over workers.
    """

    __slots__ = (
        "messages_processed",
        "instructions_consumed",
        "bytes_accessed",
        "acquisitions",
    )

    def __init__(self, count: int) -> None:
        self.messages_processed = np.zeros(count, dtype=np.int64)
        self.instructions_consumed = np.zeros(count, dtype=np.float64)
        self.bytes_accessed = np.zeros(count, dtype=np.float64)
        self.acquisitions = np.zeros(count, dtype=np.int64)


class WorkerStats:
    """Cumulative execution statistics of one worker.

    A read view over one slot of a :class:`WorkerStatsArrays`.  A
    standalone worker (outside a pool) gets its own length-1 arrays, so
    the attribute interface is unchanged either way.  Counters are
    diagnostics: they never feed back into scheduling or the hardware
    model, which is what allows the batched per-quantum update.
    """

    __slots__ = ("_arrays", "_index")

    def __init__(
        self, arrays: WorkerStatsArrays | None = None, index: int = 0
    ) -> None:
        self._arrays = arrays if arrays is not None else WorkerStatsArrays(1)
        self._index = index

    @property
    def messages_processed(self) -> int:
        return int(self._arrays.messages_processed[self._index])

    @property
    def instructions_consumed(self) -> float:
        return float(self._arrays.instructions_consumed[self._index])

    @property
    def bytes_accessed(self) -> float:
        return float(self._arrays.bytes_accessed[self._index])

    @property
    def acquisitions(self) -> int:
        return int(self._arrays.acquisitions[self._index])

    def add_quantum(
        self,
        acquisitions: int,
        messages: int,
        instructions: float,
        bytes_accessed: float,
    ) -> None:
        """Fold one processing quantum into the counters."""
        arrays = self._arrays
        index = self._index
        arrays.acquisitions[index] += acquisitions
        arrays.messages_processed[index] += messages
        arrays.instructions_consumed[index] += instructions
        arrays.bytes_accessed[index] += bytes_accessed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerStats(messages_processed={self.messages_processed}, "
            f"instructions_consumed={self.instructions_consumed}, "
            f"bytes_accessed={self.bytes_accessed}, "
            f"acquisitions={self.acquisitions})"
        )


@dataclass
class Worker:
    """One worker thread pinned to a hardware thread."""

    worker_id: int
    socket_id: int
    hw_thread_id: int
    state: WorkerState = WorkerState.ACTIVE
    batch_size: int = DEFAULT_BATCH_SIZE
    stats: WorkerStats = field(default_factory=WorkerStats)

    @property
    def is_active(self) -> bool:
        """Whether the worker may process messages."""
        return self.state is WorkerState.ACTIVE

    def process_quantum(
        self,
        hub: IntraSocketHub,
        partitions: PartitionMap,
        budget_instructions: float,
    ) -> tuple[float, list[Message]]:
        """Process messages until the instruction budget is exhausted.

        Returns ``(instructions_consumed, completed_messages)``.  Modeled
        messages are charged their pre-computed cost and only consumed if
        it fits the remaining budget; real operations execute first and
        may overdraw the budget by one message (their cost is only known
        afterwards), mirroring how a real worker cannot preempt an
        operator mid-flight.

        Raises:
            MessagingError: if called on a parked worker.
        """
        if not self.is_active:
            raise MessagingError(f"worker {self.worker_id} is parked")
        if hub.vectorized:
            return self._process_quantum_soa(hub, partitions, budget_instructions)
        remaining = budget_instructions
        completed: list[Message] = []
        out_of_budget = False
        # Statistics accumulate in locals and fold into the array-backed
        # counters once per quantum: the per-message hot path stays free
        # of attribute writes and numpy scalar churn.
        acquisitions = 0
        instructions = 0.0
        bytes_accessed = 0.0

        while remaining > 0 and not out_of_budget:
            partition_id = hub.acquire_partition(self.worker_id)
            if partition_id is None:
                break
            acquisitions += 1
            try:
                # Messages are pulled one at a time: dequeuing a large
                # batch up front would only push the unprocessed tail back
                # (the budget decides how far we get, not the batch size),
                # and that round trip dominated the tick cost on deep
                # queues.  The processing decisions are identical.
                while remaining > 0:
                    batch = hub.dequeue_batch(self.worker_id, partition_id, 1)
                    if not batch:
                        break
                    message = batch[0]
                    if message.is_modeled:
                        cost = message.charged_cost()
                        if cost.instructions > remaining and completed:
                            # Budget exhausted: push the message back.
                            hub.requeue_front(self.worker_id, batch)
                            out_of_budget = True
                            break
                    else:
                        cost = self._execute_real(message, partitions)
                    instructions += cost.instructions
                    bytes_accessed += cost.bytes_accessed
                    remaining -= cost.instructions
                    completed.append(message)
            finally:
                hub.release_partition(self.worker_id, partition_id)

        if acquisitions:
            self.stats.add_quantum(
                acquisitions, len(completed), instructions, bytes_accessed
            )
        return budget_instructions - remaining, completed

    def _process_quantum_soa(
        self,
        hub: IntraSocketHub,
        partitions: PartitionMap,
        budget_instructions: float,
    ) -> tuple[float, list]:
        """Vectorized quantum over a SoA hub.

        Replays the scalar per-message loop exactly, but drains each
        compact run with one ``np.subtract.accumulate`` budget cut
        instead of a Python loop.  With ``d`` the running-budget chain
        over the run's costs (``d[0]`` = budget before the run), message
        ``i`` is consumed plainly iff ``d[i] > 0 and d[i+1] >= 0``; the
        first violation ``k`` lands in one of three scalar cases:

        * ``d[k] == 0`` — the budget died exactly at ``k``: consume the
          ``k`` head messages, the quantum ends without a requeue;
        * overflow with prior progress — consume ``k``, round-trip the
          next message (dequeue + requeue, float folds included), flag
          ``out_of_budget``;
        * overflow on a fresh quantum (``k == 0``, nothing consumed yet)
          — overdraw: charge the head message anyway, mirroring how a
          real worker cannot preempt an operator mid-flight.

        The completion list interleaves :class:`CompletedRun` entries
        (compact runs) with plain :class:`Message` objects from the
        object lane, in exact drain order.
        """
        remaining = budget_instructions
        completed: list = []
        out_of_budget = False
        acquisitions = 0
        instructions = 0.0
        bytes_accessed = 0.0
        count = 0  # messages consumed this quantum (scalar `completed`)
        worker_id = self.worker_id

        while remaining > 0 and not out_of_budget:
            partition_id = hub.acquire_partition(worker_id)
            if partition_id is None:
                break
            acquisitions += 1
            try:
                while remaining > 0:
                    run = hub.modeled_run(partition_id)
                    if run:
                        if run <= SMALL_RUN:
                            # Tiny runs: numpy's fixed per-call overhead
                            # dwarfs the work, so replay the identical
                            # left folds as plain chained arithmetic.
                            costs, run_b = hub.run_rows(partition_id, run)
                            rem = remaining
                            k = 0
                            while k < run:
                                nxt = rem - costs[k]
                                if rem > 0.0 and nxt >= 0.0:
                                    rem = nxt
                                    k += 1
                                    continue
                                break
                            if k == run or rem <= 0.0:
                                round_trip = False
                            elif count or k:
                                round_trip = True
                            else:
                                k = 1  # overdraw a fresh quantum
                                rem = remaining - costs[0]
                                round_trip = False
                            if k:
                                for i in range(k):
                                    instructions += costs[i]
                                    bytes_accessed += run_b[i]
                                remaining = rem
                            query_ids = hub.consume_modeled(
                                worker_id, partition_id, k, round_trip
                            )
                            if k:
                                count += k
                                completed.append(
                                    CompletedRun(partition_id, query_ids)
                                )
                            if round_trip:
                                out_of_budget = True
                                break
                            continue
                        c = hub.run_instructions(partition_id, run)
                        d = np.subtract.accumulate(
                            np.concatenate(((remaining,), c))
                        )
                        ok = (d[:-1] > 0.0) & (d[1:] >= 0.0)
                        if ok.all():
                            k = run
                            round_trip = False
                        else:
                            k = int(np.argmin(ok))
                            if d[k] <= 0.0:
                                round_trip = False
                            elif count or k:
                                round_trip = True
                            else:
                                k = 1  # overdraw a fresh quantum
                                round_trip = False
                        if k:
                            b = hub.run_bytes(partition_id, run)
                            # Stats and budget replay the scalar chained
                            # adds as strict left folds.
                            instructions = float(
                                np.add.accumulate(
                                    np.concatenate(((instructions,), c[:k]))
                                )[-1]
                            )
                            bytes_accessed = float(
                                np.add.accumulate(
                                    np.concatenate(((bytes_accessed,), b[:k]))
                                )[-1]
                            )
                            remaining = float(d[k])
                        query_ids = hub.consume_modeled(
                            worker_id, partition_id, k, round_trip
                        )
                        if k:
                            count += k
                            completed.append(
                                CompletedRun(partition_id, query_ids)
                            )
                        if round_trip:
                            out_of_budget = True
                            break
                        continue
                    popped = hub.pop_object(worker_id, partition_id)
                    if popped is None:
                        break
                    seq, message = popped
                    if message.is_modeled:
                        cost = message.charged_cost()
                        if cost.instructions > remaining and count:
                            hub.unpop_object(
                                worker_id, partition_id, seq, message
                            )
                            out_of_budget = True
                            break
                    else:
                        cost = self._execute_real(message, partitions)
                    instructions += cost.instructions
                    bytes_accessed += cost.bytes_accessed
                    remaining -= cost.instructions
                    count += 1
                    completed.append(message)
            finally:
                hub.release_partition(worker_id, partition_id)

        if acquisitions:
            self.stats.add_quantum(
                acquisitions, count, instructions, bytes_accessed
            )
        return budget_instructions - remaining, completed

    def _execute_real(self, message: Message, partitions: PartitionMap):
        """Run a real operation against its target partition."""
        if message.kind is not MessageKind.WORK or message.operation is None:
            # RESULT messages carry a fixed handling cost.
            return message.charged_cost()
        partition = partitions.partition(message.target_partition)
        result, cost = message.operation(partition)
        message.result = result
        return cost
