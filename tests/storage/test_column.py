"""Tests for typed growable columns."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError
from repro.storage.column import Column
from repro.storage.schema import DataType


class TestAppendGet:
    def test_roundtrip_int(self):
        col = Column(DataType.INT64)
        for i in range(200):  # force buffer growth past 64
            assert col.append(i * 3) == i
        assert len(col) == 200
        assert col.get(150) == 450

    def test_roundtrip_string(self):
        col = Column(DataType.STRING)
        col.extend(["a", "b", "c"])
        assert col.get(1) == "b"

    def test_roundtrip_float(self):
        col = Column(DataType.FLOAT64)
        col.append(1.5)
        assert col.get(0) == pytest.approx(1.5)

    def test_out_of_range(self):
        col = Column(DataType.INT32)
        col.append(1)
        with pytest.raises(StorageError):
            col.get(1)
        with pytest.raises(StorageError):
            col.get(-1)

    def test_type_validated(self):
        col = Column(DataType.INT32)
        with pytest.raises(Exception):
            col.append("nope")

    def test_set(self):
        col = Column(DataType.INT32)
        col.append(5)
        col.set(0, 9)
        assert col.get(0) == 9

    def test_bytes_used(self):
        col = Column(DataType.INT64)
        col.extend(range(10))
        assert col.bytes_used == 80


class TestBulkExtend:
    def test_extend_matches_appends(self):
        bulk = Column(DataType.INT64)
        one_by_one = Column(DataType.INT64)
        values = list(range(500))
        bulk.extend(values)
        for v in values:
            one_by_one.append(v)
        assert list(bulk.values()) == list(one_by_one.values())

    def test_extend_numpy_array(self):
        col = Column(DataType.FLOAT64)
        col.extend(np.linspace(0.0, 1.0, 100))
        assert len(col) == 100
        assert col.get(99) == pytest.approx(1.0)
        assert isinstance(col.get(99), float)

    def test_extend_generator(self):
        col = Column(DataType.INT32)
        col.extend(i * 2 for i in range(10))
        assert col.get(4) == 8
        assert isinstance(col.get(4), int)

    def test_extend_empty(self):
        col = Column(DataType.INT64)
        col.extend([])
        col.extend(np.array([], dtype=np.int64))
        assert len(col) == 0

    def test_extend_grows_buffer(self):
        col = Column(DataType.INT32)
        col.extend(range(1000))  # well past the initial 64 capacity
        assert len(col) == 1000
        assert col.get(999) == 999

    def test_extend_int32_overflow_rejected(self):
        col = Column(DataType.INT32)
        with pytest.raises(Exception):
            col.extend([1, 2**31])
        with pytest.raises(Exception):
            col.extend(np.array([1, 2**31], dtype=np.int64))

    def test_extend_mixed_types_rejected(self):
        col = Column(DataType.INT64)
        with pytest.raises(Exception):
            col.extend([1, 2.5])
        with pytest.raises(Exception):
            col.extend([1, "x"])

    def test_extend_bools_rejected(self):
        col = Column(DataType.INT64)
        with pytest.raises(Exception):
            col.extend([True, False])

    def test_extend_int_list_into_float(self):
        col = Column(DataType.FLOAT64)
        col.extend([1, 2, 3])
        assert col.get(0) == pytest.approx(1.0)
        assert isinstance(col.get(0), float)


class TestScans:
    @pytest.fixture
    def col(self):
        c = Column(DataType.INT32)
        c.extend([5, 3, 5, 8, 1, 5])
        return c

    def test_scan_equal(self, col):
        assert list(col.scan_equal(5)) == [0, 2, 5]

    def test_scan_equal_missing(self, col):
        assert list(col.scan_equal(42)) == []

    def test_scan_range(self, col):
        assert list(col.scan_range(3, 5)) == [0, 1, 2, 5]

    def test_scan_range_string_rejected(self):
        col = Column(DataType.STRING)
        col.append("x")
        with pytest.raises(StorageError):
            col.scan_range("a", "z")

    def test_scan_predicate(self, col):
        result = col.scan_predicate(lambda v: v > 4)
        assert isinstance(result, np.ndarray)
        assert list(result) == [0, 2, 3, 5]

    def test_string_scan_equal(self):
        col = Column(DataType.STRING)
        col.extend(["a", "b", "a"])
        assert list(col.scan_equal("a")) == [0, 2]

    def test_sum(self, col):
        assert col.sum() == pytest.approx(27.0)
        assert col.sum(np.array([0, 2])) == pytest.approx(10.0)

    def test_sum_string_rejected(self):
        col = Column(DataType.STRING)
        col.append("x")
        with pytest.raises(StorageError):
            col.sum()

    def test_gather(self, col):
        assert col.gather(np.array([3, 0])) == [8, 5]

    def test_view_zero_copy(self, col):
        view = col.view()
        assert view.shape == (6,)
        assert view[3] == 8

    def test_string_view_rejected(self):
        col = Column(DataType.STRING)
        with pytest.raises(StorageError):
            col.view()


@given(st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1), max_size=300))
def test_property_column_matches_python_list(values):
    """A column behaves exactly like a list of validated values."""
    col = Column(DataType.INT32)
    col.extend(values)
    assert len(col) == len(values)
    assert list(col.values()) == values
    if values:
        target = values[0]
        expected = [i for i, v in enumerate(values) if v == target]
        assert list(col.scan_equal(target)) == expected
        assert col.sum() == pytest.approx(float(sum(values)))
