"""Elastic worker pool: grow and shrink workers without losing partitions.

The original data-oriented architecture statically binds partitions to
worker threads, so disabling a worker makes its partitions unreachable
(paper §3, "Static Mapping" issue).  With the hierarchical message
passing layer, this pool can park any subset of workers at runtime:

* parking a worker releases all partitions it owns — their queued
  messages stay in the hub and are picked up by the remaining workers;
* unparking simply reactivates the worker's polling loop;
* the pool keeps the worker set in lock-step with the machine's active
  hardware threads, so the ECL drives both through one call.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import MessagingError
from repro.dbms.intra_socket import IntraSocketHub
from repro.dbms.worker import Worker, WorkerState, WorkerStats, WorkerStatsArrays
from repro.hardware.topology import Topology


class ElasticWorkerPool:
    """One worker per hardware thread, parkable at runtime."""

    def __init__(self, topology: Topology, hubs: dict[int, IntraSocketHub]):
        self._topology = topology
        self._hubs = hubs
        self._workers: dict[int, Worker] = {}
        threads = list(topology.iter_threads())
        #: One struct-of-arrays counter block shared by every worker, so
        #: :meth:`total_stats` aggregates with vector sums.
        self._stats_arrays = WorkerStatsArrays(len(threads))
        by_socket: dict[int, list[Worker]] = {}
        for index, thread in enumerate(threads):
            worker = Worker(
                worker_id=thread.global_id,
                socket_id=thread.socket_id,
                hw_thread_id=thread.global_id,
                stats=WorkerStats(self._stats_arrays, index),
            )
            self._workers[thread.global_id] = worker
            by_socket.setdefault(thread.socket_id, []).append(worker)
        #: Workers never migrate between sockets, so the per-socket view
        #: is fixed at construction.
        self._by_socket: dict[int, tuple[Worker, ...]] = {
            sid: tuple(workers) for sid, workers in by_socket.items()
        }
        #: Worker state only changes through :meth:`sync_with_threads`,
        #: so the active subset is cached per socket and rebuilt there —
        #: the engine asks for it every tick.
        self._active_by_socket: dict[int, tuple[Worker, ...]] = dict(
            self._by_socket
        )

    # -- lookup -----------------------------------------------------------

    def worker(self, hw_thread_id: int) -> Worker:
        """The worker pinned to a hardware thread.

        Raises:
            MessagingError: for unknown thread ids.
        """
        try:
            return self._workers[hw_thread_id]
        except KeyError:
            raise MessagingError(f"no worker on hardware thread {hw_thread_id}") from None

    def workers_on_socket(self, socket_id: int) -> tuple[Worker, ...]:
        """All workers of a socket (active and parked)."""
        return self._by_socket.get(socket_id, ())

    def active_workers(self, socket_id: int) -> tuple[Worker, ...]:
        """Active workers of a socket."""
        return self._active_by_socket.get(socket_id, ())

    def active_count(self, socket_id: int) -> int:
        """Number of active workers on a socket."""
        return len(self._active_by_socket.get(socket_id, ()))

    # -- elasticity -----------------------------------------------------------

    def sync_with_threads(
        self, socket_id: int, active_thread_ids: Iterable[int]
    ) -> None:
        """Match the worker set of a socket to an active-thread set.

        Workers on threads outside the set are parked (releasing their
        partition ownerships); workers on threads inside it are unparked.
        """
        active = set(active_thread_ids)
        hub = self._hubs[socket_id]
        for worker in self.workers_on_socket(socket_id):
            if worker.hw_thread_id in active:
                worker.state = WorkerState.ACTIVE
            elif worker.state is WorkerState.ACTIVE:
                hub.release_all(worker.worker_id)
                worker.state = WorkerState.PARKED
        self._active_by_socket[socket_id] = tuple(
            w for w in self.workers_on_socket(socket_id) if w.is_active
        )

    def park_all(self, socket_id: int) -> None:
        """Park every worker of a socket (machine-idle / RTI idle phase)."""
        self.sync_with_threads(socket_id, ())

    def total_stats(self) -> dict[str, float]:
        """Aggregate worker statistics across the machine."""
        arrays = self._stats_arrays
        return {
            "messages_processed": float(arrays.messages_processed.sum()),
            "instructions_consumed": float(arrays.instructions_consumed.sum()),
            "bytes_accessed": float(arrays.bytes_accessed.sum()),
            "acquisitions": float(arrays.acquisitions.sum()),
        }
