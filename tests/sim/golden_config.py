"""The pinned configurations behind the A/B refactor goldens.

``tests/sim/goldens/`` holds one pickled
:class:`~repro.sim.metrics.RunResult` per pre-refactor policy.  The
originals were captured at commit ``8ac9f6e`` (the last commit before
the policy-registry refactor); they were re-captured once for the
realized-duration accounting fix, which added
``RunResult.requested_duration_s`` — energies, latencies, and samples
were verified unchanged at re-capture (the golden duration is an exact
tick multiple).  The pin test (:mod:`tests.sim.test_golden_ab`) re-runs
the identical configurations on the current code and asserts
bit-identical results: refactors must not change a single float for the
three original policies.

Regenerate (only when an *intentional* simulation-model change lands —
bump the capture commit in this docstring when you do)::

    PYTHONPATH=src python tests/sim/golden_config.py
"""

from __future__ import annotations

import pickle
from pathlib import Path

GOLDEN_POLICIES = ("ecl", "baseline", "ondemand")
GOLDEN_DIR = Path(__file__).parent / "goldens"
#: Short but dynamically rich: the spike covers idle, partial load and
#: the overload knee, so every control path (RTI, ladder walks, parking)
#: fires within the 4 s window.
GOLDEN_DURATION_S = 4.0
GOLDEN_SEED = 0


def golden_configuration(policy: str):
    """The exact :class:`RunConfiguration` a golden was captured from."""
    from repro.loadprofiles import spike_profile
    from repro.sim import RunConfiguration
    from repro.workloads import KeyValueWorkload, WorkloadVariant

    return RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=spike_profile(duration_s=GOLDEN_DURATION_S),
        policy=policy,
        seed=GOLDEN_SEED,
    )


def golden_path(policy: str) -> Path:
    return GOLDEN_DIR / f"{policy}.pkl"


def capture() -> None:
    """Run every golden configuration and pickle its result."""
    from repro.sim import run_experiment

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for policy in GOLDEN_POLICIES:
        result = run_experiment(golden_configuration(policy))
        with open(golden_path(policy), "wb") as fh:
            # Fixed protocol: the artifact must not depend on the
            # capturing interpreter's default.
            pickle.dump(result, fh, protocol=4)
        print(
            f"captured {policy}: {result.total_energy_j:.3f} J, "
            f"{result.queries_completed} queries, "
            f"{len(result.samples)} samples"
        )


if __name__ == "__main__":
    capture()
