"""Tests for tables with index maintenance."""

import pytest

from repro.errors import SchemaError, StorageError
from repro.storage.schema import DataType, Schema
from repro.storage.table import Table


@pytest.fixture
def table():
    t = Table("kv", Schema.of(key=DataType.INT64, value=DataType.INT32))
    t.insert_many([(1, 10), (2, 20), (3, 30), (2, 21)])
    return t


class TestInsertAccess:
    def test_row_count(self, table):
        assert table.row_count == 4
        assert len(table) == 4

    def test_get_row(self, table):
        assert table.get_row(1) == (2, 20)

    def test_get_row_out_of_range(self, table):
        with pytest.raises(StorageError):
            table.get_row(4)

    def test_get_value(self, table):
        assert table.get_value(2, "value") == 30

    def test_rows_iteration(self, table):
        assert list(table.rows())[0] == (1, 10)

    def test_schema_validation_on_insert(self, table):
        with pytest.raises(SchemaError):
            table.insert((1,))

    def test_bytes_used(self, table):
        assert table.bytes_used == 4 * (8 + 4)


class TestIndexes:
    def test_create_index_backfills(self, table):
        idx = table.create_index("key")
        assert sorted(idx.lookup(2)) == [1, 3]

    def test_create_index_twice_returns_same(self, table):
        a = table.create_index("key")
        b = table.create_index("key")
        assert a is b

    def test_index_maintained_on_insert(self, table):
        table.create_index("key")
        position = table.insert((9, 90))
        assert table.lookup("key", 9) == [position]

    def test_index_on_string_rejected(self):
        t = Table("s", Schema.of(name=DataType.STRING))
        with pytest.raises(StorageError):
            t.create_index("name")

    def test_indexed_columns(self, table):
        table.create_index("key")
        assert table.indexed_columns == ("key",)

    def test_lookup_without_index_scans(self, table):
        assert sorted(table.lookup("key", 2)) == [1, 3]


class TestUpdate:
    def test_update_plain_column(self, table):
        table.update(0, "value", 99)
        assert table.get_value(0, "value") == 99

    def test_update_indexed_column_moves_entry(self, table):
        table.create_index("key")
        table.update(0, "key", 77)
        assert table.lookup("key", 77) == [0]
        assert table.lookup("key", 1) == []

    def test_update_out_of_range(self, table):
        with pytest.raises(StorageError):
            table.update(10, "value", 1)


class TestQueries:
    def test_scan_equal(self, table):
        assert list(table.scan_equal("key", 2)) == [1, 3]

    def test_scan_range(self, table):
        assert list(table.scan_range("value", 20, 30)) == [1, 2, 3]

    def test_select_projection(self, table):
        rows = table.select([0, 2], ["value"])
        assert rows == [(10,), (30,)]

    def test_aggregate_sum(self, table):
        assert table.aggregate_sum("value") == pytest.approx(81.0)

    def test_aggregate_sum_subset(self, table):
        positions = table.scan_equal("key", 2)
        assert table.aggregate_sum("value", positions) == pytest.approx(41.0)

    def test_aggregate_string_rejected(self):
        t = Table("s", Schema.of(name=DataType.STRING))
        t.insert(("x",))
        with pytest.raises(SchemaError):
            t.aggregate_sum("name")
