"""End-to-end simulation: load generation, policies, runner, metrics.

This package stitches everything together for the paper's §6 experiments:
a :class:`~repro.sim.loadgen.LoadGenerator` turns a (workload, load
profile) pair into query arrivals; a policy — the full ECL or the
uncontrolled race-to-idle :class:`~repro.sim.baseline.BaselinePolicy` —
drives the hardware knobs; the :class:`~repro.sim.runner.SimulationRunner`
advances everything tick by tick and produces a
:class:`~repro.sim.metrics.RunResult` with time series and totals.
"""

from repro.sim.loadgen import LoadGenerator
from repro.sim.baseline import BaselinePolicy
from repro.sim.governor import OndemandGovernorPolicy
from repro.sim.metrics import RunResult, SamplePoint
from repro.sim.runner import RunConfiguration, SimulationRunner, run_experiment
from repro.sim.suite import (
    ExperimentSuite,
    config_signature,
    default_cache_dir,
    derive_seed,
    suite_worker_count,
)

__all__ = [
    "LoadGenerator",
    "BaselinePolicy",
    "OndemandGovernorPolicy",
    "RunResult",
    "SamplePoint",
    "RunConfiguration",
    "SimulationRunner",
    "run_experiment",
    "ExperimentSuite",
    "config_signature",
    "default_cache_dir",
    "derive_seed",
    "suite_worker_count",
]
