"""Energy-profile persistence: export/import as JSON.

The paper's profiles live only in the ECL's memory and are rebuilt after
every restart via the multiplexed sweep.  Operationally that sweep costs
tens of seconds of degraded control, so a deployment would snapshot
profiles across restarts and let online adaptation reconcile any drift.
This module provides that: a stable JSON representation of a profile's
configurations and measurements.

Loaded measurements are marked *stale* by default — they describe the
workload at snapshot time, and the ECL should re-validate them through
its normal adaptation machinery rather than trust them blindly.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProfileError
from repro.profiles.configuration import Configuration, ConfigurationMeasurement
from repro.profiles.profile import EnergyProfile

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def configuration_to_dict(configuration: Configuration) -> dict[str, Any]:
    """JSON-compatible representation of one configuration."""
    return {
        "socket_id": configuration.socket_id,
        "active_threads": sorted(configuration.active_threads),
        "core_frequencies": [
            [core_id, freq] for core_id, freq in configuration.core_frequencies
        ],
        "uncore_ghz": configuration.uncore_ghz,
    }


def configuration_from_dict(data: dict[str, Any]) -> Configuration:
    """Rebuild a configuration from its dict form.

    Raises:
        ProfileError: on malformed input.
    """
    try:
        return Configuration.build(
            socket_id=int(data["socket_id"]),
            active_threads={int(t) for t in data["active_threads"]},
            core_frequencies={
                int(core_id): float(freq)
                for core_id, freq in data["core_frequencies"]
            },
            uncore_ghz=float(data["uncore_ghz"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProfileError(f"malformed configuration record: {exc}") from exc


def profile_to_dict(profile: EnergyProfile) -> dict[str, Any]:
    """JSON-compatible representation of a whole profile."""
    entries = []
    for configuration in profile.configurations():
        entry = profile.entry(configuration)
        record: dict[str, Any] = {
            "configuration": configuration_to_dict(configuration),
        }
        if entry.measurement is not None:
            record["measurement"] = {
                "power_w": entry.measurement.power_w,
                "performance_score": entry.measurement.performance_score,
                "measured_at_s": entry.measurement.measured_at_s,
            }
        entries.append(record)
    return {
        "format_version": FORMAT_VERSION,
        "socket_id": profile.socket_id,
        "os_idle_power_w": profile.os_idle_power_w,
        "entries": entries,
    }


def profile_from_dict(
    data: dict[str, Any], mark_stale: bool = True
) -> EnergyProfile:
    """Rebuild a profile from its dict form.

    ``mark_stale=True`` (default) flags every loaded measurement for
    re-validation by the multiplexed adaptation.

    Raises:
        ProfileError: on malformed input or unsupported format versions.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ProfileError(
            f"unsupported profile format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        records = list(data["entries"])
    except (KeyError, TypeError) as exc:
        raise ProfileError(f"malformed profile record: {exc}") from exc
    if not records:
        raise ProfileError("profile snapshot contains no configurations")

    configurations = [
        configuration_from_dict(record["configuration"]) for record in records
    ]
    profile = EnergyProfile(configurations)
    for configuration, record in zip(configurations, records):
        measurement = record.get("measurement")
        if measurement is None:
            continue
        try:
            profile.record(
                configuration,
                ConfigurationMeasurement(
                    power_w=float(measurement["power_w"]),
                    performance_score=float(measurement["performance_score"]),
                    measured_at_s=float(measurement["measured_at_s"]),
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileError(f"malformed measurement record: {exc}") from exc
        if mark_stale:
            profile.entry(configuration).stale = True
    os_idle = data.get("os_idle_power_w")
    profile.os_idle_power_w = None if os_idle is None else float(os_idle)
    return profile


def save_profile(profile: EnergyProfile, path: str) -> None:
    """Write a profile snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile_to_dict(profile), handle, indent=2)


def load_profile(path: str, mark_stale: bool = True) -> EnergyProfile:
    """Read a profile snapshot from a JSON file.

    Raises:
        ProfileError: on malformed files.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ProfileError(f"cannot load profile from {path}: {exc}") from exc
    return profile_from_dict(data, mark_stale=mark_stale)
