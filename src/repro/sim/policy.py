"""First-class control policies: the protocol and the name registry.

The paper's evaluation is *comparative* — the ECL against an
uncontrolled baseline and against governor-style single-knob controllers
(§7).  Every point in that comparison space is a :class:`ControlPolicy`:
an object that drives the machine's knobs once per simulation tick.
This module makes the set of policies open-ended:

* :class:`ControlPolicy` — the structural interface every policy
  implements (``build``, ``on_tick``, ``annotate_sample``);
* :func:`register_policy` / :func:`get_policy` — the name registry the
  runner, CLI, suite, and benchmarks resolve policies through;
* the built-in registrations at the bottom — the **only** place in
  ``src/`` where policy names appear as string literals.

Adding a policy is a one-file change::

    from repro.sim.policy import register_policy

    class MyPolicy:
        @classmethod
        def build(cls, engine, config):
            return cls(engine)

        def __init__(self, engine):
            self.engine = engine

        def on_tick(self, now_s, dt_s):
            ...  # touch engine.machine knobs

        def annotate_sample(self):
            return SampleAnnotations()

    register_policy("mine", MyPolicy.build, description="...")

after which ``RunConfiguration(policy="mine")``, ``repro run --policy
mine``, and every suite/benchmark helper accept it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.sim.metrics import SampleAnnotations

if TYPE_CHECKING:
    from repro.dbms.engine import DatabaseEngine
    from repro.sim.runner import RunConfiguration


@runtime_checkable
class ControlPolicy(Protocol):
    """What the simulation requires of a control policy.

    Structural (duck-typed): policies implement these three methods, they
    do not inherit from anything.
    """

    @classmethod
    def build(
        cls, engine: "DatabaseEngine", config: "RunConfiguration"
    ) -> "ControlPolicy":
        """Construct and initialize the policy for one run."""
        ...

    def on_tick(self, now_s: float, dt_s: float) -> None:
        """Reconfigure the hardware for the upcoming tick.

        Called once per tick *before* the engine advances, so decisions
        take effect for the tick they were made in.
        """
        ...

    def annotate_sample(self) -> SampleAnnotations:
        """Per-sample observations to attach to the next sample point."""
        ...

    # Policies may additionally implement the *optional* macro-stepping
    # protocol (the runner probes for it with getattr)::
    #
    #     def macro_view(self, now_s: float, dt_s: float) \
    #             -> tuple[float, dict[int, float]] | None: ...
    #
    # Returning ``(horizon_s, tick_charges)`` promises that for every
    # tick of width ``dt_s`` starting strictly before ``horizon_s`` on
    # which the simulation state does not otherwise change (no arrivals,
    # completions, message movement, or migrations — the runner and
    # engine guarantee those separately), ``on_tick`` is *exactly*
    # equivalent to calling ``engine.add_overhead_instructions(sid,
    # tick_charges[sid])`` for each listed socket: no hardware knobs, no
    # counter reads, no RNG.  ``None`` means "not right now" and forces
    # per-tick execution; policies without the method never macro-step.


#: Signature of a registry factory: builds a ready-to-run policy.
PolicyFactory = Callable[["DatabaseEngine", "RunConfiguration"], ControlPolicy]


@dataclass(frozen=True)
class PolicyInfo:
    """One registry entry.

    Attributes:
        name: the public lookup name (CLI ``--policy``, configs, caches).
        factory: builds the policy for a (engine, config) pair.
        description: one-liner for ``repro run --list-policies``.
        reference: True for the uncontrolled comparison point that
            savings are computed against (exactly one registered policy).
    """

    name: str
    factory: PolicyFactory
    description: str = ""
    reference: bool = False


_REGISTRY: dict[str, PolicyInfo] = {}


def register_policy(
    name: str,
    factory: PolicyFactory,
    description: str = "",
    reference: bool = False,
) -> PolicyInfo:
    """Register a control policy under a unique name.

    Raises:
        SimulationError: on duplicate names or a second reference policy.
    """
    if not name or not isinstance(name, str):
        raise SimulationError(f"policy name must be a non-empty string, got {name!r}")
    if name in _REGISTRY:
        raise SimulationError(f"policy {name!r} is already registered")
    if reference and any(info.reference for info in _REGISTRY.values()):
        current = next(n for n, i in _REGISTRY.items() if i.reference)
        raise SimulationError(
            f"reference policy already registered ({current!r})"
        )
    info = PolicyInfo(
        name=name, factory=factory, description=description, reference=reference
    )
    _REGISTRY[name] = info
    return info


def unregister_policy(name: str) -> None:
    """Remove a registration (out-of-tree policy development, tests)."""
    if name not in _REGISTRY:
        raise SimulationError(_unknown_message(name))
    del _REGISTRY[name]


def registered_policies() -> tuple[str, ...]:
    """All registered policy names, in registration order."""
    return tuple(_REGISTRY)


def get_policy(name: str) -> PolicyInfo:
    """Look up a registration by name.

    Raises:
        SimulationError: for unknown names; the message lists every
            registered policy.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(_unknown_message(name)) from None


def validate_policy_name(name: str) -> str:
    """Check that a name is registered and return it unchanged."""
    get_policy(name)
    return name


def build_policy(
    name: str, engine: "DatabaseEngine", config: "RunConfiguration"
) -> ControlPolicy:
    """Resolve a name and build the ready-to-run policy."""
    return get_policy(name).factory(engine, config)


def reference_policy() -> str:
    """The registered uncontrolled comparison point.

    Raises:
        SimulationError: when no registration is marked ``reference``.
    """
    for name, info in _REGISTRY.items():
        if info.reference:
            return name
    raise SimulationError("no reference policy registered")


def _unknown_message(name: str) -> str:
    known = ", ".join(_REGISTRY) or "<none>"
    return f"unknown policy {name!r}; registered policies: {known}"


# --------------------------------------------------------------------------
# Built-in registrations.  These lines are the single source of truth for
# policy names: nothing else under src/ spells them out.
# --------------------------------------------------------------------------


def _build_ecl(
    engine: "DatabaseEngine", config: "RunConfiguration"
) -> ControlPolicy:
    # Imported lazily: repro.ecl.controller itself imports sim modules.
    from repro.ecl.controller import EnergyControlLoop

    return EnergyControlLoop.build(engine, config)


def _build_baseline(
    engine: "DatabaseEngine", config: "RunConfiguration"
) -> ControlPolicy:
    from repro.sim.baseline import BaselinePolicy

    return BaselinePolicy.build(engine, config)


def _build_ondemand(
    engine: "DatabaseEngine", config: "RunConfiguration"
) -> ControlPolicy:
    from repro.sim.governor import OndemandGovernorPolicy

    return OndemandGovernorPolicy.build(engine, config)


def _build_performance(
    engine: "DatabaseEngine", config: "RunConfiguration"
) -> ControlPolicy:
    from repro.sim.performance import StaticPerformancePolicy

    return StaticPerformancePolicy.build(engine, config)


def _build_epb_only(
    engine: "DatabaseEngine", config: "RunConfiguration"
) -> ControlPolicy:
    from repro.sim.epb import EpbOnlyPolicy

    return EpbOnlyPolicy.build(engine, config)


def _build_ecl_consolidate(
    engine: "DatabaseEngine", config: "RunConfiguration"
) -> ControlPolicy:
    from repro.sim.consolidate import EclConsolidatePolicy

    return EclConsolidatePolicy.build(engine, config)


def _build_ecl_cluster(
    engine: "DatabaseEngine", config: "RunConfiguration"
) -> ControlPolicy:
    from repro.cluster.controller import ClusterController

    return ClusterController.build(engine, config)


def _build_ecl_carbon(
    engine: "DatabaseEngine", config: "RunConfiguration"
) -> ControlPolicy:
    from repro.cluster.carbon import CarbonAwareClusterController

    return CarbonAwareClusterController.build(engine, config)


register_policy(
    "ecl",
    _build_ecl,
    description="the paper's hierarchical Energy-Control Loop (§5): "
    "energy profiles, race-to-idle, uncore control, latency supervision",
)
register_policy(
    "baseline",
    _build_baseline,
    description="uncontrolled race-to-idle deployment: all threads, "
    "nominal clocks, automatic UFS, OS tickless idle (§6)",
    reference=True,
)
register_policy(
    "ondemand",
    _build_ondemand,
    description="OS-style per-socket DVFS ladder governor — the "
    "single-knob feedback controllers of §7 (e.g. E²DBMS)",
)
register_policy(
    "performance",
    _build_performance,
    description="static performance governor: immediate turbo on every "
    "core, race-to-idle parking the instant the machine runs dry",
)
register_policy(
    "epb-only",
    _build_epb_only,
    description="hardware-only energy management: EPB powersave hint, "
    "EET and the EPB-aware UFS heuristic are the only knobs (§4, Fig. 7)",
)
register_policy(
    "ecl-consolidate",
    _build_ecl_consolidate,
    description="the ECL plus placement-driven socket consolidation: "
    "migrate partitions off lightly loaded sockets and park the drained "
    "package into sleep (vacated memory lifts the Fig. 5 uncore "
    "dependency)",
)
register_policy(
    "ecl-cluster",
    _build_ecl_cluster,
    description="the ECL on every node plus node-granular consolidation: "
    "migrate partitions across node boundaries and power fully drained "
    "nodes off entirely (boot latency and residual off-state wattage "
    "modeled); on one node it degrades to the plain ECL",
)
register_policy(
    "ecl-carbon",
    _build_ecl_carbon,
    description="ecl-cluster with carbon/price-aware consolidation: the "
    "attached environment's signals modulate the node planner's pack/"
    "spread thresholds at each planning check (dirty or expensive hours "
    "consolidate harder, clean ones wake nodes sooner); without an "
    "environment it is exactly ecl-cluster",
)

#: The policy a :class:`RunConfiguration` uses when none is given.
DEFAULT_POLICY = registered_policies()[0]
