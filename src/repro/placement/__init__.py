"""First-class data placement: policies, registry, migration protocol.

Splits the "where do partitions live" decision out of
:class:`~repro.storage.partition.PartitionMap` so the control layer can
move data to match load — the prerequisite for draining whole sockets
into package sleep (see :mod:`repro.placement.policy` for the policies
and :mod:`repro.placement.migration` for the move protocol).
"""

from repro.placement.migration import (
    MigrationCoordinator,
    MigrationRecord,
    MigrationState,
)
from repro.placement.policy import (
    DEFAULT_PLACEMENT,
    BalancePlacement,
    ConsolidatePlacement,
    MigrationRequest,
    PlacementInfo,
    PlacementPolicy,
    PlacementView,
    SocketView,
    StaticPlacement,
    build_placement,
    get_placement,
    register_placement,
    registered_placements,
    round_robin_assignment,
    unregister_placement,
    validate_placement_name,
)

__all__ = [
    "PlacementPolicy",
    "PlacementInfo",
    "PlacementView",
    "SocketView",
    "MigrationRequest",
    "StaticPlacement",
    "ConsolidatePlacement",
    "BalancePlacement",
    "round_robin_assignment",
    "register_placement",
    "unregister_placement",
    "registered_placements",
    "get_placement",
    "build_placement",
    "validate_placement_name",
    "DEFAULT_PLACEMENT",
    "MigrationCoordinator",
    "MigrationRecord",
    "MigrationState",
]
