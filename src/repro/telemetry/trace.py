"""Structured event tracing over the simulation tick pipeline.

:class:`TraceRecorder` is a :class:`~repro.sim.observers.RunObserver`
that records what the control loop *did and when* — the evidence behind
every §5–6 claim.  One event is a plain dict (cheap to buffer while the
run is hot, trivially JSON-serializable afterwards):

``run_start``
    run identity: policy, workload, profile, tick width, durations.
``arrival``
    one query entered the engine (``t``, ``query_id``).
``reconfig``
    the control policy changed the hardware control state during phase 2
    — detected via the frequency/C-state version counters, so unchanged
    ticks cost two integer compares — with ``before``/``after`` snapshots
    from :func:`control_state`.
``completion``
    one query finished (``t``, ``query_id``, ``latency_s``).
``sample``
    mirror of each periodic :class:`~repro.sim.metrics.SamplePoint`.
``migration``
    one partition finished moving between sockets — mirror of the
    engine's :attr:`~repro.dbms.engine.DatabaseEngine.migration_log`
    entry (source/target socket, bytes copied, messages shipped,
    per-side instruction cost).
``node_power``
    a node power transition (cluster runs only) — detected via the
    machine's ``node_power_version`` counter, with the full per-node
    state map (``on`` / ``booting`` / ``off``) after the transition.
``environment``
    an exogenous signal change (environment-attached runs only): the
    first tick seeing a new carbon/price level records both values.
    The runner cuts macro spans at signal changes, so the recording
    tick is always live.
``run_end``
    final totals, including how many events the ring buffer dropped
    (plus wall energy / gCO₂ / cost when an environment is attached).

The buffer is a bounded ring (``capacity`` events, default 200k): a
multi-minute high-QPS run cannot exhaust memory, at the price of losing
the *oldest* events — :attr:`TraceRecorder.dropped_events` says how many.
Export with :meth:`TraceRecorder.to_jsonl`, read back (for ``repro
report``) with :func:`read_trace`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.observers import RunObserver

if TYPE_CHECKING:
    import os

    from repro.dbms.engine import EngineTickResult
    from repro.dbms.queries import Query, QueryCompletion
    from repro.hardware.machine import Machine
    from repro.sim.metrics import RunResult
    from repro.sim.runner import SimulationRunner

#: Default ring-buffer capacity, in events.
DEFAULT_CAPACITY = 200_000


def control_state(machine: "Machine") -> dict[str, object]:
    """JSON-ready snapshot of the machine's control state.

    Core/uncore clocks are the *effective* frequencies (EET dwell and
    throttling included), keyed as ``"socket.core"`` strings so the dict
    survives a JSON round trip unchanged.
    """
    state = machine.state()
    return {
        "active_threads": len(state.active_threads),
        "core_ghz": {
            f"{sid}.{cid}": round(freq, 4)
            for (sid, cid), freq in sorted(state.core_frequencies_ghz.items())
        },
        "uncore_ghz": {
            str(sid): round(freq, 4)
            for sid, freq in sorted(state.uncore_frequencies_ghz.items())
        },
        "uncore_halted": {
            str(sid): halted
            for sid, halted in sorted(state.uncore_halted.items())
        },
    }


class TraceRecorder(RunObserver):
    """Records a bounded structured event stream of one run.

    Attach via ``SimulationRunner(config, observers=[recorder])`` (or
    ``repro run --trace PATH``); after the run, :meth:`events` holds the
    retained stream and :meth:`to_jsonl` exports it.

    Args:
        capacity: ring-buffer size in events; the oldest events are
            dropped beyond it.
        record_arrivals: per-arrival events dominate trace volume on
            high-QPS runs; disable to keep only control-plane activity.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        record_arrivals: bool = True,
    ):
        if capacity <= 0:
            raise SimulationError(
                f"trace capacity must be > 0, got {capacity}"
            )
        self.capacity = capacity
        self.record_arrivals = record_arrivals
        self.total_events = 0
        self._buffer: deque[dict[str, object]] = deque(maxlen=capacity)
        self._runner: "SimulationRunner | None" = None
        self._result: "RunResult | None" = None
        self._versions: tuple[int, int] | None = None
        self._node_version: int | None = None
        self._state: dict[str, object] | None = None
        self._samples_seen = 0
        self._migrations_seen = 0
        self._environment = None
        self._env_next_s = float("inf")

    # -- buffer accessors --------------------------------------------------

    @property
    def dropped_events(self) -> int:
        """Events evicted by the ring buffer (oldest first)."""
        return self.total_events - len(self._buffer)

    def events(self) -> list[dict[str, object]]:
        """The retained event stream, in emission order."""
        return list(self._buffer)

    def _emit(self, event: dict[str, object]) -> None:
        self.total_events += 1
        self._buffer.append(event)

    # -- pipeline hooks ----------------------------------------------------

    def on_run_start(self, runner: "SimulationRunner", result: "RunResult") -> None:
        self._runner = runner
        self._result = result
        self._samples_seen = 0
        self._migrations_seen = 0
        machine = runner.machine
        self._versions = (machine.frequency.version, machine.cstates.version)
        self._node_version = machine.node_power_version
        self._state = control_state(machine)
        event: dict[str, object] = {
            "event": "run_start",
            "policy": result.policy,
            "workload": result.workload_name,
            "profile": result.profile_name,
            "tick_s": runner.config.tick_s,
            "duration_s": result.duration_s,
            "requested_duration_s": result.requested_duration_s,
            "initial_state": self._state,
        }
        # Single-node runs keep the historical event schema untouched.
        if machine.node_count > 1:
            event["nodes"] = self._node_power_states(machine)
        # Likewise, only environment-attached runs add the schema keys.
        environment = runner.config.environment
        self._environment = environment
        if environment is not None:
            event["environment"] = environment.name
            event["pue"] = environment.pue
            self._env_next_s = environment.next_change_s(machine.time_s)
        else:
            self._env_next_s = float("inf")
        self._emit(event)

    def on_arrival(self, now_s: float, query: "Query") -> None:
        if self.record_arrivals:
            self._emit(
                {"event": "arrival", "t": now_s, "query_id": query.query_id}
            )

    @staticmethod
    def _node_power_states(machine: "Machine") -> dict[str, str]:
        return {
            str(node): machine.node_power_state(node).name.lower()
            for node in range(machine.node_count)
        }

    def _check_node_power(self, now_s: float) -> None:
        runner = self._runner
        assert runner is not None
        machine = runner.machine
        if machine.node_power_version == self._node_version:
            return
        self._node_version = machine.node_power_version
        self._emit(
            {
                "event": "node_power",
                "t": now_s,
                "states": self._node_power_states(machine),
            }
        )

    def after_control(self, now_s: float, dt_s: float) -> None:
        runner = self._runner
        assert runner is not None
        machine = runner.machine
        self._check_node_power(now_s)
        versions = (machine.frequency.version, machine.cstates.version)
        if versions == self._versions:
            return
        after = control_state(machine)
        self._emit(
            {
                "event": "reconfig",
                "t": now_s,
                "before": self._state,
                "after": after,
            }
        )
        self._versions = versions
        self._state = after

    def on_completion(self, now_s: float, completion: "QueryCompletion") -> None:
        self._emit(
            {
                "event": "completion",
                "t": now_s,
                "query_id": completion.query_id,
                "latency_s": completion.latency_s,
            }
        )

    def end_tick(self, now_s: float, tick_result: "EngineTickResult") -> None:
        result = self._result
        runner = self._runner
        assert result is not None and runner is not None
        # A BOOTING -> ON settle happens inside the engine phase.
        self._check_node_power(now_s)
        # Mirror samples the SamplingObserver appended this tick.
        for sample in result.samples[self._samples_seen :]:
            record = asdict(sample)
            record["performance_levels"] = list(sample.performance_levels)
            record["applied"] = list(sample.applied)
            record["event"] = "sample"
            self._emit(record)
        self._samples_seen = len(result.samples)
        # Mirror partition migrations the engine completed this tick.
        migrations = runner.engine.migration_log
        for migration in migrations[self._migrations_seen :]:
            event = migration.to_event()
            event["event"] = "migration"
            event["t"] = migration.completed_at_s
            self._emit(event)
        self._migrations_seen = len(migrations)
        # Record exogenous signal changes as they become visible: the
        # first tick starting at/after a change reads the new levels.
        # The runner cuts spans at signal changes, so that tick is live.
        environment = self._environment
        if environment is not None and now_s + 1e-12 >= self._env_next_s:
            self._emit(
                {
                    "event": "environment",
                    "t": now_s,
                    "carbon_g_per_kwh": environment.carbon.value(now_s),
                    "price_usd_per_kwh": environment.price.value(now_s),
                }
            )
            # Advance from the change just passed, not from ``now_s``:
            # when the tick clock lands an epsilon *short* of the knot,
            # rearming on ``now_s`` would find the same knot again and
            # double-report it.
            self._env_next_s = environment.next_change_s(
                max(now_s, self._env_next_s)
            )

    def macro_horizon_s(self, now_s: float) -> float | None:
        # Always skippable: on skipped ticks there are no arrivals,
        # completions, or migrations; after_control early-returns on
        # unchanged version counters (a span never reconfigures); and
        # end_tick only mirrors samples/migrations appended since the
        # last call — none appear while ticks are skipped.  Environment
        # events need no horizon here either: the runner itself cuts
        # spans at signal changes, so the change tick reaches end_tick.
        return float("inf")

    def on_run_end(self, result: "RunResult") -> None:
        runner = self._runner
        if runner is not None and runner.config.macro_step:
            self._emit(
                {
                    "event": "macro",
                    "ticks": round(
                        result.requested_duration_s / runner.config.tick_s
                    ),
                    **runner.span_cut_stats(),
                }
            )
        end: dict[str, object] = {
            "event": "run_end",
            "duration_s": result.duration_s,
            "queries_submitted": result.queries_submitted,
            "queries_completed": result.queries_completed,
            "total_energy_j": result.total_energy_j,
            "sample_count": len(result.samples),
            "total_events": self.total_events + 1,
            "dropped_events": self.dropped_events,
        }
        if result.environment_name is not None:
            end["environment"] = result.environment_name
            end["wall_energy_j"] = result.wall_energy_j
            end["gco2_total_g"] = result.gco2_total_g
            end["cost_usd"] = result.cost_usd
        self._emit(end)

    # -- export ------------------------------------------------------------

    def to_jsonl(self, path: "str | os.PathLike[str]") -> int:
        """Write the retained events as JSON Lines; returns the count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")
        return len(events)


def read_trace(path: "str | os.PathLike[str]") -> list[dict[str, object]]:
    """Load a JSONL trace written by :meth:`TraceRecorder.to_jsonl`.

    Raises:
        SimulationError: when a line is not a JSON object.
    """
    events: list[dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimulationError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            if not isinstance(event, dict):
                raise SimulationError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(event).__name__}"
                )
            events.append(event)
    return events
