"""Parallel experiment suite with an on-disk result cache.

The paper's evaluation (§6) is a grid of independent (workload, load
profile, policy) runs.  :class:`ExperimentSuite` executes such a batch:

* runs fan out across a :class:`~concurrent.futures.ProcessPoolExecutor`
  (each simulation is CPU-bound single-thread Python, so processes are
  the only way to use more than one core);
* every run is keyed by a content hash over its full
  :class:`~repro.sim.runner.RunConfiguration` (plus duration), and the
  resulting :class:`~repro.sim.metrics.RunResult` is pickled into a cache
  directory — re-running an experiment script recomputes only what
  changed.

Determinism is unaffected: a configuration fully determines its run (the
simulation is seeded), so executing in a pool, inline, or from the cache
yields the same result object.

Environment knobs:

* ``REPRO_SUITE_WORKERS`` — default pool size (default 1: inline, no
  subprocesses).
* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro_cache/`` under
  the current working directory).
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.loadprofiles.base import LoadProfile
from repro.sim.metrics import RunResult
from repro.sim.policy import registered_policies, validate_policy_name
from repro.sim.runner import RunConfiguration, run_experiment
from repro.workloads.base import Workload

#: Bump to invalidate every cached result (e.g. after changing the
#: simulation model in a way that alters run outcomes).
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"


def suite_worker_count(default: int = 1) -> int:
    """Worker-process count from ``REPRO_SUITE_WORKERS`` (min 1)."""
    raw = os.environ.get("REPRO_SUITE_WORKERS", "")
    if not raw:
        return max(1, default)
    try:
        return max(1, int(raw))
    except ValueError:
        raise SimulationError(
            f"REPRO_SUITE_WORKERS must be an integer, got {raw!r}"
        ) from None


def default_cache_dir() -> Path:
    """Cache directory from ``REPRO_CACHE_DIR`` (default .repro_cache/)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def derive_seed(base_seed: int, index: int) -> int:
    """A stable, well-mixed per-run seed for building config batches."""
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def policy_grid(
    workload_factory: Callable[[], Workload],
    profile: LoadProfile,
    policies: Sequence[str] | None = None,
    **config_kwargs: Any,
) -> list[RunConfiguration]:
    """One :class:`RunConfiguration` per policy — the §6 comparison axis.

    The registry is the source of truth: with ``policies=None`` every
    registered policy (including out-of-tree registrations) gets a
    configuration, in registration order.  ``workload_factory`` is called
    once per configuration so runs never share workload instances, and
    ``config_kwargs`` forwards to every :class:`RunConfiguration`.
    """
    names = registered_policies() if policies is None else tuple(policies)
    return [
        RunConfiguration(
            workload=workload_factory(),
            profile=profile,
            policy=validate_policy_name(name),
            **config_kwargs,
        )
        for name in names
    ]


def _canonical(obj: Any) -> Any:
    """Reduce an object to a deterministic, repr-stable structure.

    Covers everything a :class:`RunConfiguration` transitively contains:
    dataclasses (by field), enums (by name), numpy arrays (by bytes),
    floats (by ``repr``, so -0.0 and precision survive), callables (by
    qualified name), and plain objects (by sorted ``__dict__``).
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        return ("float", repr(obj))
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__qualname__, obj.name)
    if isinstance(obj, np.ndarray):
        return ("ndarray", str(obj.dtype), obj.shape, obj.tobytes())
    if is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__qualname__,
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in fields(obj)
            ),
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(v)) for v in obj)))
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                sorted(
                    (repr(_canonical(k)), _canonical(v))
                    for k, v in obj.items()
                )
            ),
        )
    if callable(obj):
        return (
            "callable",
            getattr(obj, "__module__", ""),
            getattr(obj, "__qualname__", repr(obj)),
        )
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return (
            type(obj).__qualname__,
            tuple(
                sorted((k, repr(_canonical(v))) for k, v in state.items())
            ),
        )
    return ("repr", repr(obj))


def config_signature(
    config: RunConfiguration, duration_s: float | None = None
) -> str:
    """Content hash identifying one experiment run."""
    payload = repr(
        (CACHE_VERSION, _canonical(config), _canonical(duration_s))
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ExperimentSuite:
    """Executes a batch of experiment configurations.

    Args:
        workers: process-pool size; ``None`` reads ``REPRO_SUITE_WORKERS``
            (default 1 = run inline in this process).
        cache_dir: result cache directory; ``None`` reads
            ``REPRO_CACHE_DIR`` (default ``.repro_cache/``).
        use_cache: disable to always recompute (results are still not
            written).
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool = True,
    ):
        self.workers = suite_worker_count() if workers is None else max(1, workers)
        self.cache_dir = (
            default_cache_dir() if cache_dir is None else Path(cache_dir)
        )
        self.use_cache = use_cache
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache -----------------------------------------------------------

    def _cache_path(self, signature: str) -> Path:
        return self.cache_dir / f"{signature}.pkl"

    def _load(self, signature: str) -> RunResult | None:
        path = self._cache_path(signature)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # Missing, corrupt, or version-incompatible entries are misses.
            return None
        return result if isinstance(result, RunResult) else None

    def _store(self, signature: str, result: RunResult) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(signature)
        # Atomic publish: concurrent suites may race on the same key.
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- execution --------------------------------------------------------

    def run(
        self,
        configs: Sequence[RunConfiguration],
        durations: Sequence[float | None] | None = None,
    ) -> list[RunResult]:
        """Run every configuration, returning results in input order.

        ``durations`` optionally overrides each run's duration (same
        meaning as the second argument of
        :func:`~repro.sim.runner.run_experiment`).
        """
        configs = list(configs)
        if durations is None:
            durations = [None] * len(configs)
        else:
            durations = list(durations)
            if len(durations) != len(configs):
                raise SimulationError(
                    f"{len(durations)} durations for {len(configs)} configs"
                )

        results: list[RunResult | None] = [None] * len(configs)
        signatures: list[str | None] = [None] * len(configs)
        pending: list[int] = []
        for index, (config, duration) in enumerate(zip(configs, durations)):
            if self.use_cache:
                signature = config_signature(config, duration)
                signatures[index] = signature
                cached = self._load(signature)
                if cached is not None:
                    self.cache_hits += 1
                    results[index] = cached
                    continue
                self.cache_misses += 1
            pending.append(index)

        if pending:
            if self.workers <= 1 or len(pending) == 1:
                for index in pending:
                    results[index] = run_experiment(
                        configs[index], durations[index]
                    )
                    self._publish(signatures[index], results[index])
            else:
                pool_size = min(self.workers, len(pending))
                with ProcessPoolExecutor(max_workers=pool_size) as pool:
                    futures = {
                        pool.submit(
                            run_experiment, configs[index], durations[index]
                        ): index
                        for index in pending
                    }
                    outstanding = set(futures)
                    while outstanding:
                        done, outstanding = wait(
                            outstanding, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            index = futures[future]
                            results[index] = future.result()
                            self._publish(signatures[index], results[index])

        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _publish(self, signature: str | None, result: RunResult) -> None:
        if self.use_cache and signature is not None:
            self._store(signature, result)
