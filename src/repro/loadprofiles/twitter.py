"""The Twitter load profile (Fig. 14).

The paper replays a 2-hour load trace derived from Twitter statuses [1]
within 3 minutes: a slowly drifting base rate with sudden spikes and
frequent alternation between rising and falling load.  The original trace
is not redistributable, so this module generates a deterministic
synthetic replica with the same structure: a diurnal-style drift, a
dense ripple, and a handful of sharp bursts (the feature the paper uses
to show the ECL's reactive lag and the benefit of a 2 Hz base frequency).
"""

from __future__ import annotations

import math

import numpy as np

from repro.loadprofiles.base import LoadProfile, SegmentProfile

#: (position in [0, 1], burst height added to the base curve)
_BURSTS: tuple[tuple[float, float], ...] = (
    (0.14, 0.45),
    (0.27, 0.30),
    (0.38, 0.55),
    (0.52, 0.25),
    (0.63, 0.50),
    (0.71, 0.35),
    (0.86, 0.40),
)


def twitter_profile(
    duration_s: float = 180.0,
    base_fraction: float = 0.40,
    seed: int = 1,
    resolution_s: float = 0.5,
) -> LoadProfile:
    """Build the synthetic Twitter-like profile.

    The curve is ``base + diurnal drift + ripple + bursts`` sampled every
    ``resolution_s`` seconds into a piecewise-linear profile.  It is
    deterministic for a fixed ``seed``.
    """
    rng = np.random.default_rng(seed)
    steps = max(4, int(duration_s / resolution_s))
    ripple_phase = rng.uniform(0, 2 * math.pi, size=3)
    points: list[tuple[float, float]] = []
    for i in range(steps + 1):
        t = i * duration_s / steps
        x = t / duration_s
        drift = 0.15 * math.sin(2 * math.pi * (x - 0.25))
        ripple = (
            0.05 * math.sin(14 * math.pi * x + ripple_phase[0])
            + 0.04 * math.sin(34 * math.pi * x + ripple_phase[1])
            + 0.03 * math.sin(58 * math.pi * x + ripple_phase[2])
        )
        level = base_fraction + drift + ripple
        for position, height in _BURSTS:
            # Sharp asymmetric burst: fast rise, exponential decay.
            dt = x - position
            if 0 <= dt < 0.035:
                level += height * math.exp(-dt / 0.008)
        points.append((t, max(0.0, level)))
    points[-1] = (duration_s, 0.0)
    return SegmentProfile("twitter", points)


#: Diurnal backbone of the day profile: (hour, level) anchors, levels as
#: fractions of the day's peak.  The service is dark overnight; load
#: ramps through the morning, plateaus with an early-afternoon dip, and
#: peaks in the evening before the shutdown.
_DAY_ANCHORS: tuple[tuple[float, float], ...] = (
    (0.0, 0.0),
    (7.0, 0.0),
    (8.0, 0.40),
    (9.5, 0.70),
    (12.0, 0.85),
    (14.0, 0.65),
    (15.5, 0.60),
    (17.0, 0.80),
    (19.5, 1.00),
    (20.5, 0.30),
    (21.0, 0.0),
    (24.0, 0.0),
)

#: (hour of day, burst height): sharp events on top of the backbone.
_DAY_BURSTS: tuple[tuple[float, float], ...] = (
    (9.7, 0.20),
    (13.2, 0.25),
    (18.4, 0.20),
)


def twitter_day_profile(
    duration_s: float = 86.4,
    peak_fraction: float = 0.85,
    seed: int = 2,
    resolution_s: float | None = None,
) -> LoadProfile:
    """A full synthetic day of Twitter-like load, night included.

    Unlike :func:`twitter_profile` (the paper's 2-hour daytime trace),
    this maps a whole 24-hour diurnal cycle onto ``duration_s``: the
    service is *completely* idle overnight (hours 21:00–07:00, ~42 % of
    the day, exactly zero load — not merely low), then follows a
    morning ramp, a rippled daytime plateau with a few sharp bursts,
    and an evening peak.  The long true-zero night plus sparse arrivals
    at the day's edges make it the reference trace for the
    macro-stepping benchmark (``benchmarks/test_tick_throughput.py``);
    the default 86.4 s compresses the day 1000x.
    """
    if resolution_s is None:
        resolution_s = duration_s / 432.0
    rng = np.random.default_rng(seed)
    steps = max(8, int(round(duration_s / resolution_s)))
    ripple_phase = rng.uniform(0, 2 * math.pi, size=3)
    anchor_hours = np.array([hour for hour, _ in _DAY_ANCHORS])
    anchor_levels = np.array([level for _, level in _DAY_ANCHORS])
    points: list[tuple[float, float]] = []
    for i in range(steps + 1):
        t = i * duration_s / steps
        hour = 24.0 * t / duration_s
        if hour <= 7.0 or hour >= 21.0:
            points.append((t, 0.0))
            continue
        level = float(np.interp(hour, anchor_hours, anchor_levels))
        x = hour / 24.0
        ripple = (
            0.04 * math.sin(22 * math.pi * x + ripple_phase[0])
            + 0.03 * math.sin(46 * math.pi * x + ripple_phase[1])
            + 0.02 * math.sin(74 * math.pi * x + ripple_phase[2])
        )
        # Scale the ripple in at low levels so the ramps stay smooth and
        # the curve never dips below zero mid-day.
        level = level * peak_fraction + ripple * min(1.0, 4.0 * level)
        for burst_hour, height in _DAY_BURSTS:
            dh = hour - burst_hour
            if 0 <= dh < 0.8:
                level += height * math.exp(-dh / 0.18)
        points.append((t, max(0.0, min(level, 0.95))))
    points[-1] = (duration_s, 0.0)
    return SegmentProfile("twitter-day", points)
