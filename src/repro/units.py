"""Unit conventions and small numeric helpers used across the library.

The simulator works in plain SI floats to keep the hot paths cheap:

* time      — seconds
* frequency — gigahertz (``GHz``); stored as floats such as ``2.6``
* power     — watts
* energy    — joules
* bandwidth — gigabytes per second
* rates     — events per second (queries/s, instructions/s)

This module centralizes conversions and a few validation helpers so the
rest of the code never hand-rolls them.
"""

from __future__ import annotations

import math

# Scale factors.
GHZ = 1e9
"""Hertz per gigahertz (for converting GHz clock values to cycles/s)."""

GIB = 1 << 30
"""Bytes per gibibyte."""

GB = 1e9
"""Bytes per (decimal) gigabyte; bandwidths are quoted in GB/s."""

MS = 1e-3
"""Seconds per millisecond."""

US = 1e-6
"""Seconds per microsecond."""


def ghz_to_hz(freq_ghz: float) -> float:
    """Convert a clock in GHz to cycles per second."""
    return freq_ghz * GHZ


def hz_to_ghz(freq_hz: float) -> float:
    """Convert a clock in cycles per second to GHz."""
    return freq_hz / GHZ


def joules(power_watts: float, duration_s: float) -> float:
    """Energy consumed by drawing ``power_watts`` for ``duration_s``."""
    return power_watts * duration_s


def watt_hours(energy_j: float) -> float:
    """Convert joules to watt-hours (used only for human-facing reports)."""
    return energy_j / 3600.0


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``.

    Raises:
        ValueError: if ``lo > hi``.
    """
    if lo > hi:
        raise ValueError(f"empty clamp interval [{lo}, {hi}]")
    return max(lo, min(hi, value))


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number > 0 and return it."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number >= 0 and return it."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return value


def require_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def approx_equal(a: float, b: float, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Tolerant float comparison used by tests and profile staleness checks."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)
