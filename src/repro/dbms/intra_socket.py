"""Intra-socket message hub: per-partition queues with worker ownership.

This is the core of the paper's elasticity extension (§3): instead of a
static worker→partition binding, messages for the same partition are
buffered and queued per partition; any worker of the socket can *acquire*
a partition (taking exclusive ownership), drain a batch of its messages,
and *release* it again.  Consequences the implementation enforces:

* at most one worker owns a partition at any time (exclusive access keeps
  partition data structures latch-free),
* parking a worker never strands a partition — its messages remain queued
  and the next active worker picks them up,
* within a socket, load balancing is implicit: free workers grab whichever
  owned-by-nobody partition has pending work, oldest head first.

The hub runs in one of two storage modes.  The classic *scalar* mode
keeps one ``deque[Message]`` per partition.  The *vectorized* mode
(``vectorized=True``, selected by ``EngineConfig.vector_messages``)
stores the high-rate modeled message stream as struct-of-arrays columns
per partition (instruction cost, bytes, query id, enqueue seq) and keeps
an object side lane for everything that needs a real ``Message`` (real
operators, RESULT messages, tagged work).  A per-hub enqueue sequence
number merges the two lanes into one FIFO stream, so drain order, demand
accounting, and ownership behave bit-identically to the scalar mode —
the accounting folds replay the scalar chained arithmetic operation for
operation via ``np.add.accumulate``/``np.subtract.accumulate`` (strict
left folds).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable

import numpy as np

from repro.errors import MessagingError, OwnershipError
from repro.dbms.messages import Message, WorkCost

#: Default number of messages a worker drains per ownership acquisition.
DEFAULT_BATCH_SIZE = 64

#: Batch size below which the vectorized paths fall back to scalar
#: chained arithmetic: numpy's fixed per-call overhead (~1µs) exceeds
#: the loop cost for short runs, and the scalar chain computes the
#: exact same left folds, so the cutover is invisible to results.
SMALL_RUN = 32

#: Demand estimate for messages whose true cost is unknown pre-execution.
NOMINAL_REAL_OPERATION_INSTRUCTIONS = 1000.0

#: Initial capacity of one partition's SoA columns.
_MIN_COLUMNS = 16


def _message_instructions(message: Message) -> float:
    """Instruction estimate of a queued message for the demand signal."""
    if message.cost is not None:
        return message.cost.instructions
    return NOMINAL_REAL_OPERATION_INSTRUCTIONS


class _SoaQueue:
    """Struct-of-arrays queue of one partition (vectorized hubs only).

    Modeled, untagged WORK messages live in four parallel columns
    (instruction cost, bytes accessed, query id, enqueue seq) in the
    index window ``[head, tail)``; everything else — real operators,
    RESULT messages, tagged modeled work — rides the object side lane as
    ``(seq, Message)`` pairs.  The per-hub ``seq`` stamp orders the two
    lanes into one FIFO stream: both lanes are individually seq-sorted,
    so the true queue order is a two-way merge decided by comparing the
    lane heads.
    """

    __slots__ = ("instr", "nbytes", "qid", "seq", "head", "tail", "objs")

    def __init__(self) -> None:
        self.instr = np.empty(_MIN_COLUMNS, dtype=np.float64)
        self.nbytes = np.empty(_MIN_COLUMNS, dtype=np.float64)
        self.qid = np.empty(_MIN_COLUMNS, dtype=np.int64)
        self.seq = np.empty(_MIN_COLUMNS, dtype=np.int64)
        self.head = 0
        self.tail = 0
        self.objs: deque[tuple[int, Message]] = deque()

    def __len__(self) -> int:
        return (self.tail - self.head) + len(self.objs)

    def reserve(self, extra: int) -> None:
        """Make room to append ``extra`` compact entries at ``tail``."""
        capacity = self.instr.shape[0]
        if self.tail + extra <= capacity:
            return
        live = self.tail - self.head
        need = live + extra
        new_capacity = capacity
        while new_capacity < need:
            new_capacity *= 2
        for name in ("instr", "nbytes", "qid", "seq"):
            old = getattr(self, name)
            new = np.empty(new_capacity, dtype=old.dtype)
            new[:live] = old[self.head : self.tail]
            setattr(self, name, new)
        self.head = 0
        self.tail = live

    def modeled_run(self) -> int:
        """Length of the compact run at the queue head (0 = object next)."""
        n = self.tail - self.head
        if not self.objs:
            return n
        if n == 0:
            return 0
        first_obj_seq = self.objs[0][0]
        if self.seq[self.head] > first_obj_seq:
            return 0
        return int(
            np.searchsorted(self.seq[self.head : self.tail], first_obj_seq)
        )

    def front_seq(self) -> int | None:
        """Seq of the queue-head entry, or None when empty."""
        compact = self.seq[self.head] if self.tail > self.head else None
        obj = self.objs[0][0] if self.objs else None
        if compact is None:
            return obj
        if obj is None:
            return int(compact)
        return int(min(compact, obj))


class IntraSocketHub:
    """Message queues and the partition-ownership protocol of one socket."""

    def __init__(
        self,
        socket_id: int,
        partition_ids: Iterable[int],
        vectorized: bool = False,
    ):
        self.socket_id = socket_id
        self._vectorized = vectorized
        if vectorized:
            self._queues: dict[int, _SoaQueue] = {
                pid: _SoaQueue() for pid in partition_ids
            }
        else:
            self._queues = {pid: deque() for pid in partition_ids}
        if not self._queues:
            raise MessagingError(f"socket {socket_id} hub needs >= 1 partition")
        #: partition_id -> worker_id of the current owner.
        self._owners: dict[int, int] = {}
        #: Partitions quiesced for migration: still enqueue, never acquire.
        self._frozen: set[int] = set()
        self._pending_messages = 0
        self._pending_instructions = 0.0
        #: Pending instructions per characteristics tag (None = untagged).
        self._pending_by_tag: dict[object, tuple[object, float]] = {}
        #: Version stamp of ``_pending_by_tag``; bumps on every enqueue,
        #: drain, requeue, evict, or freeze so that
        #: :meth:`pending_by_characteristics` (and the engine's blended
        #: characteristics on top of it) can memoize per version.
        self._tag_version = 0
        self._tag_cache: list[tuple[object, float]] = []
        self._tag_cache_version = -1
        #: Hub-wide enqueue sequence (vectorized mode): stamps both lanes
        #: so per-partition drain order merges compact columns and object
        #: messages back into arrival order.
        self._next_seq = 0
        #: Arrival order of partitions — the tie-break of
        #: :meth:`acquire_partition` (matches the original dict-scan order
        #: for the construction-time set; adopted partitions append).
        self._order: dict[int, int] = {
            pid: index for index, pid in enumerate(self._queues)
        }
        self._next_order = len(self._queues)
        #: Lazy max-heap of (-depth, order, pid, generation) snapshots.
        #: Entries are pushed on enqueue and on release; while a partition
        #: is unowned its depth only changes through pushes, so the entry
        #: with the newest generation is always exact and every older one
        #: can be discarded on sight.  Acquisition therefore disposes each
        #: entry exactly once — O(log n) amortized per queue mutation,
        #: replacing the original linear scan over all partitions.
        self._depth_heap: list[tuple[int, int, int, int]] = []
        self._entry_gen: dict[int, int] = {}

    def _push_depth(self, partition_id: int, queue=None) -> None:
        depth = len(
            self._queues[partition_id] if queue is None else queue
        )
        if depth:
            gen = self._entry_gen.get(partition_id, 0) + 1
            self._entry_gen[partition_id] = gen
            heapq.heappush(
                self._depth_heap,
                (-depth, self._order[partition_id], partition_id, gen),
            )

    # -- queue side -----------------------------------------------------------

    @property
    def vectorized(self) -> bool:
        """Whether this hub stores modeled messages as SoA columns."""
        return self._vectorized

    @property
    def partition_ids(self) -> tuple[int, ...]:
        """Partitions homed on this socket."""
        return tuple(self._queues)

    @property
    def pending_messages(self) -> int:
        """Total queued messages across all partitions."""
        return self._pending_messages

    def queue_depth(self, partition_id: int) -> int:
        """Queued messages for one partition."""
        self._require_partition(partition_id)
        return len(self._queues[partition_id])

    def enqueue(self, message: Message) -> None:
        """Buffer a message for its target partition.

        In vectorized mode a single message always takes the object side
        lane — the compact columns are fed exclusively through
        :meth:`enqueue_bank`, which is what keeps the column population
        (single-stage, untagged, bank-fabricated) trivially uniform.

        Raises:
            MessagingError: if the partition is not homed on this socket.
        """
        queue = self._queues.get(message.target_partition)
        if queue is None:
            raise MessagingError(
                f"partition {message.target_partition} is not on socket "
                f"{self.socket_id}"
            )
        if self._vectorized:
            seq = self._next_seq
            self._next_seq = seq + 1
            queue.objs.append((seq, message))
        else:
            queue.append(message)
        self._pending_messages += 1
        instructions = _message_instructions(message)
        self._pending_instructions += instructions
        self._tally_tag(message, instructions)
        self._push_depth(message.target_partition)

    def enqueue_bank(
        self,
        targets,
        instructions,
        bytes_accessed,
        query_ids,
    ) -> None:
        """Buffer a batch of modeled untagged WORK messages (SoA columns).

        The columns are parallel — numpy arrays, or plain Python lists
        for small banks (the router's scalar fast path hands lists
        through so tiny banks never touch numpy at all) — one entry per
        message, in arrival order.  Only valid on a vectorized hub.  The
        demand accounting replays the scalar per-message folds (one
        strict left fold per batch), so the pending sums stay
        bit-identical to enqueueing one by one.

        Raises:
            MessagingError: on a scalar hub or for partitions not homed
                on this socket.
        """
        if not self._vectorized:
            raise MessagingError("enqueue_bank requires a vectorized hub")
        n = len(targets)
        if n == 0:
            return
        seq0 = self._next_seq
        self._next_seq = seq0 + n
        queues = self._queues
        if n <= SMALL_RUN:
            # Small batches: per-message scalar writes beat the unique/
            # mask machinery.  Heap pushes replay the vector path's
            # np.unique order (ascending pid) so acquire tie-breaks are
            # unchanged.
            if type(targets) is list:
                target_list = targets
                instr_list = instructions
                bytes_list = bytes_accessed
                qid_list = query_ids
            else:
                target_list = targets.tolist()
                instr_list = instructions.tolist()
                bytes_list = bytes_accessed.tolist()
                qid_list = query_ids.tolist()
            touched: dict = {}
            for j in range(n):
                pid = target_list[j]
                queue = queues.get(pid)
                if queue is None:
                    raise MessagingError(
                        f"partition {pid} is not on socket {self.socket_id}"
                    )
                queue.reserve(1)
                tail = queue.tail
                queue.instr[tail] = instr_list[j]
                queue.nbytes[tail] = bytes_list[j]
                queue.qid[tail] = qid_list[j]
                queue.seq[tail] = seq0 + j
                queue.tail = tail + 1
                touched[pid] = queue
            for pid in sorted(touched):
                self._push_depth(pid, touched[pid])
            self._pending_messages += n
            pending = self._pending_instructions
            for value in instr_list:
                pending += value
            self._pending_instructions = pending
            # The per-message tag tally, verbatim (restart-safe for
            # degenerate tiny costs).
            for value in instr_list:
                stored = self._pending_by_tag.get(None)
                total = (stored[1] if stored else 0.0) + value
                if total <= 1e-9:
                    self._pending_by_tag.pop(None, None)
                else:
                    self._pending_by_tag[None] = (None, total)
            self._tag_version += 1
            return
        targets = np.asarray(targets, dtype=np.int64)
        instructions = np.asarray(instructions, dtype=np.float64)
        bytes_accessed = np.asarray(bytes_accessed, dtype=np.float64)
        query_ids = np.asarray(query_ids, dtype=np.int64)
        seqs = np.arange(seq0, seq0 + n, dtype=np.int64)
        for pid in np.unique(targets):
            pid = int(pid)
            queue = queues.get(pid)
            if queue is None:
                raise MessagingError(
                    f"partition {pid} is not on socket {self.socket_id}"
                )
            mask = targets == pid
            m = int(np.count_nonzero(mask))
            queue.reserve(m)
            lo, hi = queue.tail, queue.tail + m
            queue.instr[lo:hi] = instructions[mask]
            queue.nbytes[lo:hi] = bytes_accessed[mask]
            queue.qid[lo:hi] = query_ids[mask]
            queue.seq[lo:hi] = seqs[mask]
            queue.tail = hi
            self._push_depth(pid)
        self._pending_messages += n
        # The pending fold is the per-hub subsequence of the global
        # message order, which is exactly the input array order; an
        # accumulate is the same chained left fold the scalar loop runs.
        self._pending_instructions = float(
            np.add.accumulate(
                np.concatenate(((self._pending_instructions,), instructions))
            )[-1]
        )
        stored = self._pending_by_tag.get(None)
        if stored is not None or float(instructions.min()) > 1e-9:
            total = float(
                np.add.accumulate(
                    np.concatenate(
                        ((stored[1] if stored else 0.0,), instructions)
                    )
                )[-1]
            )
            if total <= 1e-9:
                self._pending_by_tag.pop(None, None)
            else:
                self._pending_by_tag[None] = (None, total)
        else:
            # Degenerate tiny costs could pop-and-restart the tally mid
            # batch; replay the scalar per-message loop exactly.
            for value in instructions:
                stored = self._pending_by_tag.get(None)
                total = (stored[1] if stored else 0.0) + float(value)
                if total <= 1e-9:
                    self._pending_by_tag.pop(None, None)
                else:
                    self._pending_by_tag[None] = (None, total)
        self._tag_version += 1

    def pending_cost_instructions(self) -> float:
        """Total modeled instructions waiting in all queues.

        Maintained incrementally on enqueue/dequeue; real-operation
        messages contribute a nominal estimate (their true cost is known
        only after execution).  This feeds the demand signal reported to
        the hardware model.
        """
        return self._pending_instructions

    def _tally_tag(self, message: Message, delta: float) -> None:
        chars = message.characteristics
        key = None if chars is None else chars.name
        stored = self._pending_by_tag.get(key)
        total = (stored[1] if stored else 0.0) + delta
        if total <= 1e-9:
            self._pending_by_tag.pop(key, None)
        else:
            self._pending_by_tag[key] = (chars, total)
        self._tag_version += 1

    def pending_by_characteristics(self) -> list[tuple[object, float]]:
        """(characteristics, pending instructions) per tag.

        The ``None`` tag collects untagged messages; the engine substitutes
        its per-socket default characteristics for it when blending.  The
        returned list is memoized per tag version (it is rebuilt only
        after an enqueue/drain/freeze actually changed the tally) — treat
        it as read-only.
        """
        if self._tag_cache_version != self._tag_version:
            self._tag_cache = list(self._pending_by_tag.values())
            self._tag_cache_version = self._tag_version
        return self._tag_cache

    @property
    def tag_version(self) -> int:
        """Monotone stamp of the pending-by-tag tally (memoization key)."""
        return self._tag_version

    # -- ownership protocol ----------------------------------------------------

    def owner_of(self, partition_id: int) -> int | None:
        """Current owner worker of a partition, or None."""
        self._require_partition(partition_id)
        return self._owners.get(partition_id)

    def acquire_partition(self, worker_id: int) -> int | None:
        """Acquire ownership of the partition with the most pending work.

        Returns the acquired partition id, or None when no unowned
        partition has pending messages.  Preferring the deepest queue
        approximates the implicit load balancing of the paper's design.
        """
        heap = self._depth_heap
        queues = self._queues
        owners = self._owners
        frozen = self._frozen
        entry_gen = self._entry_gen
        while heap:
            neg_depth, order, pid, gen = heap[0]
            queue = queues.get(pid)
            depth = len(queue) if queue is not None else 0
            if (
                queue is None
                or pid in owners
                or pid in frozen
                or gen != entry_gen.get(pid)
                or not depth
            ):
                # Owned partitions re-push on release, frozen ones on
                # unfreeze, evicted ones are gone; superseded or emptied
                # entries are simply dropped.
                heapq.heappop(heap)
                continue
            if -neg_depth != depth:
                # Unreachable through the engine's call sequence (the
                # newest entry of an unowned partition is exact), kept as
                # insurance for external API orderings.
                heapq.heapreplace(heap, (-depth, order, pid, gen))
                continue
            heapq.heappop(heap)
            self._owners[pid] = worker_id
            return pid
        return None

    def acquire_specific(self, worker_id: int, partition_id: int) -> bool:
        """Try to acquire one specific partition.

        False when the partition is already owned or frozen for
        migration.
        """
        self._require_partition(partition_id)
        if partition_id in self._owners or partition_id in self._frozen:
            return False
        self._owners[partition_id] = worker_id
        return True

    def dequeue_batch(
        self, worker_id: int, partition_id: int, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> list[Message]:
        """Drain up to ``batch_size`` messages of an owned partition.

        On a vectorized hub compact entries are materialized back into
        :class:`Message` objects — the vectorized worker drains through
        :meth:`modeled_run`/:meth:`consume_modeled` instead and never
        pays this; the method remains for API compatibility (tests,
        external drivers).

        Raises:
            OwnershipError: if the caller does not own the partition.
        """
        self._require_owner(worker_id, partition_id)
        if batch_size <= 0:
            raise MessagingError(f"batch_size must be >= 1, got {batch_size}")
        queue = self._queues[partition_id]
        batch = []
        if self._vectorized:
            while len(queue) and len(batch) < batch_size:
                batch.append(self._materialize_head(partition_id, queue))
        else:
            while queue and len(batch) < batch_size:
                message = queue.popleft()
                instructions = _message_instructions(message)
                self._pending_instructions -= instructions
                self._tally_tag(message, -instructions)
                batch.append(message)
        self._pending_messages -= len(batch)
        if not self._pending_messages:
            self._pending_instructions = 0.0  # kill float drift at empty
            self._pending_by_tag.clear()
            self._tag_version += 1
        return batch

    def _materialize_head(self, partition_id: int, queue: _SoaQueue) -> Message:
        """Pop the queue-head entry as a Message, folding out its cost."""
        if queue.modeled_run() > 0:
            h = queue.head
            message = Message(
                query_id=int(queue.qid[h]),
                target_partition=partition_id,
                cost=WorkCost(
                    instructions=float(queue.instr[h]),
                    bytes_accessed=float(queue.nbytes[h]),
                ),
            )
            queue.head = h + 1
        else:
            message = queue.objs.popleft()[1]
        if not len(queue):
            queue.head = queue.tail = 0
        instructions = _message_instructions(message)
        self._pending_instructions -= instructions
        self._tally_tag(message, -instructions)
        return message

    def requeue_front(self, worker_id: int, messages: list[Message]) -> None:
        """Put unprocessed messages back at the head of their queues.

        Used when a worker's instruction budget runs out mid-batch; the
        caller must still own the partitions involved.
        """
        for message in reversed(messages):
            self._require_owner(worker_id, message.target_partition)
            queue = self._queues[message.target_partition]
            if self._vectorized:
                front = queue.front_seq()
                seq = (front - 1) if front is not None else self._next_seq
                queue.objs.appendleft((seq, message))
            else:
                queue.appendleft(message)
            self._pending_messages += 1
            instructions = _message_instructions(message)
            self._pending_instructions += instructions
            self._tally_tag(message, instructions)

    # -- vectorized drain ------------------------------------------------------

    def modeled_run(self, partition_id: int) -> int:
        """Length of the compact (modeled, untagged) run at the queue head.

        0 means the next entry is an object-lane message — or the queue
        is empty (disambiguate via :meth:`queue_depth` or
        :meth:`pop_object` returning None).
        """
        return self._queues[partition_id].modeled_run()

    def run_instructions(self, partition_id: int, count: int) -> np.ndarray:
        """Instruction-cost column view of the head run (no copy)."""
        queue = self._queues[partition_id]
        return queue.instr[queue.head : queue.head + count]

    def run_bytes(self, partition_id: int, count: int) -> np.ndarray:
        """Bytes-accessed column view of the head run (no copy)."""
        queue = self._queues[partition_id]
        return queue.nbytes[queue.head : queue.head + count]

    def run_rows(
        self, partition_id: int, count: int
    ) -> tuple[list[float], list[float]]:
        """Instruction and byte columns of the head run as Python lists.

        One call instead of two column views for the worker's small-run
        scalar drain (``float64.tolist()`` is value-preserving, so the
        lists carry the exact column values).
        """
        queue = self._queues[partition_id]
        h = queue.head
        return (
            queue.instr[h : h + count].tolist(),
            queue.nbytes[h : h + count].tolist(),
        )

    def consume_modeled(
        self,
        worker_id: int,
        partition_id: int,
        count: int,
        round_trip: bool = False,
    ) -> np.ndarray | list[int]:
        """Consume ``count`` compact entries off an owned partition's head.

        Returns the consumed query-id column (a list for small runs, an
        array copy otherwise).  With
        ``round_trip=True`` the entry *after* the consumed run replays
        the scalar worker's budget-cut round trip — dequeued and
        immediately requeued (the float folds of that detour are part of
        the bit-identity contract) — and stays at the queue head.

        Raises:
            OwnershipError: if the caller does not own the partition.
        """
        self._require_owner(worker_id, partition_id)
        queue = self._queues[partition_id]
        folds = count + 1 if round_trip else count
        if folds > queue.modeled_run():
            raise MessagingError(
                f"consume of {folds} exceeds the compact run on partition "
                f"{partition_id}"
            )
        h = queue.head
        costs = queue.instr[h : h + folds]
        # Small runs hand the consumed ids back as a plain list (what the
        # tracker's scalar settle path wants anyway); big runs as an
        # array copy.
        if count <= SMALL_RUN:
            query_ids = queue.qid[h : h + count].tolist()
        else:
            query_ids = queue.qid[h : h + count].copy()
        if folds:
            # Chained scalar folds, replayed as strict left folds (as a
            # plain loop for short runs — same chain, no numpy fixed
            # cost).  The empty-hub snap can only fire on the last
            # dequeue of the run (earlier entries leave this very queue
            # non-empty).
            if folds <= SMALL_RUN:
                cost_list = costs.tolist()
                pending = self._pending_instructions
                for value in cost_list:
                    pending -= value
                self._pending_instructions = pending
                stored = self._pending_by_tag.get(None)
                if stored is not None:
                    total = stored[1]
                    for value in cost_list:
                        total -= value
                    if total <= 1e-9:
                        self._pending_by_tag.pop(None, None)
                    else:
                        self._pending_by_tag[None] = (None, total)
                stored = None
            else:
                self._pending_instructions = float(
                    np.subtract.accumulate(
                        np.concatenate(((self._pending_instructions,), costs))
                    )[-1]
                )
                stored = self._pending_by_tag.get(None)
            if stored is not None:
                total = float(
                    np.subtract.accumulate(
                        np.concatenate(((stored[1],), costs))
                    )[-1]
                )
                # Monotone non-increasing fold: the running minimum is the
                # final value, so "popped at some step" == "final <= eps".
                if total <= 1e-9:
                    self._pending_by_tag.pop(None, None)
                else:
                    self._pending_by_tag[None] = (None, total)
            self._pending_messages -= folds
            if not self._pending_messages:
                self._pending_instructions = 0.0  # kill float drift at empty
                self._pending_by_tag.clear()
        queue.head = h + count
        if round_trip:
            requeued = float(queue.instr[queue.head])
            self._pending_messages += 1
            self._pending_instructions += requeued
            stored = self._pending_by_tag.get(None)
            total = (stored[1] if stored else 0.0) + requeued
            if total <= 1e-9:
                self._pending_by_tag.pop(None, None)
            else:
                self._pending_by_tag[None] = (None, total)
        elif not len(queue):
            queue.head = queue.tail = 0
        self._tag_version += 1
        return query_ids

    def pop_object(
        self, worker_id: int, partition_id: int
    ) -> tuple[int, Message] | None:
        """Dequeue the object-lane message at an owned partition's head.

        Returns ``(seq, message)``, or None when the partition queue is
        empty.  Must only be called when :meth:`modeled_run` is 0.

        Raises:
            OwnershipError: if the caller does not own the partition.
        """
        self._require_owner(worker_id, partition_id)
        queue = self._queues[partition_id]
        if not queue.objs:
            return None
        seq, message = queue.objs.popleft()
        if not len(queue):
            queue.head = queue.tail = 0
        instructions = _message_instructions(message)
        self._pending_instructions -= instructions
        self._tally_tag(message, -instructions)
        self._pending_messages -= 1
        if not self._pending_messages:
            self._pending_instructions = 0.0  # kill float drift at empty
            self._pending_by_tag.clear()
            self._tag_version += 1
        return seq, message

    def unpop_object(
        self, worker_id: int, partition_id: int, seq: int, message: Message
    ) -> None:
        """Requeue a just-popped object-lane message at the queue head.

        The budget-cut round trip of the vectorized worker: the folds
        mirror :meth:`requeue_front` exactly (same chained adds).
        """
        self._require_owner(worker_id, partition_id)
        self._queues[partition_id].objs.appendleft((seq, message))
        self._pending_messages += 1
        instructions = _message_instructions(message)
        self._pending_instructions += instructions
        self._tally_tag(message, instructions)

    # -- ownership release -----------------------------------------------------

    def release_partition(self, worker_id: int, partition_id: int) -> None:
        """Release ownership of a partition.

        Raises:
            OwnershipError: if the caller does not own the partition.
        """
        self._require_owner(worker_id, partition_id)
        del self._owners[partition_id]
        self._push_depth(partition_id)

    def release_all(self, worker_id: int) -> None:
        """Release every partition owned by a worker (park-time cleanup)."""
        owned = [pid for pid, wid in self._owners.items() if wid == worker_id]
        for pid in owned:
            del self._owners[pid]
            self._push_depth(pid)

    # -- migration support -------------------------------------------------------
    #
    # The quiesce/evict/adopt trio below is driven exclusively by the
    # migration protocol (:mod:`repro.placement.migration`); workers and
    # the router keep using the queue/ownership APIs above.

    def frozen_partitions(self) -> frozenset[int]:
        """Partitions currently quiesced for migration."""
        return frozenset(self._frozen)

    def freeze_partition(self, partition_id: int) -> None:
        """Quiesce a partition: deliveries continue, acquisition stops.

        A current owner keeps the partition until it releases normally
        (ownership is always released within the tick it was taken).
        """
        self._require_partition(partition_id)
        self._frozen.add(partition_id)
        self._tag_version += 1

    def unfreeze_partition(self, partition_id: int) -> None:
        """Make a frozen partition acquirable again (aborted migration)."""
        self._require_partition(partition_id)
        self._frozen.discard(partition_id)
        self._push_depth(partition_id)
        self._tag_version += 1

    def evict_partition(self, partition_id: int) -> list[Message]:
        """Remove a partition from this hub, returning its queued messages.

        The partition must be unowned (quiesced).  Its messages leave the
        pending accounting — the caller ships them to the new home socket
        through the router, so they are in transit, not lost.  On a
        vectorized hub the compact entries are materialized back into
        :class:`Message` objects (in queue order, merged with the object
        lane) — an evicted queue travels the scalar transfer path either
        way.

        Raises:
            OwnershipError: while a worker still owns the partition.
        """
        self._require_partition(partition_id)
        owner = self._owners.get(partition_id)
        if owner is not None:
            raise OwnershipError(
                f"cannot evict partition {partition_id}: owned by worker "
                f"{owner}"
            )
        queue = self._queues.pop(partition_id)
        if self._vectorized:
            messages = self._materialize_all(partition_id, queue)
        else:
            messages = list(queue)
        for message in messages:
            instructions = _message_instructions(message)
            self._pending_instructions -= instructions
            self._tally_tag(message, -instructions)
        self._pending_messages -= len(messages)
        if not self._pending_messages:
            self._pending_instructions = 0.0  # kill float drift at empty
            self._pending_by_tag.clear()
            self._tag_version += 1
        self._frozen.discard(partition_id)
        self._order.pop(partition_id, None)
        # _entry_gen is kept on purpose: stale heap entries of the evicted
        # partition must never collide with generations pushed after a
        # later re-adoption, so the counter survives residency gaps.
        return messages

    @staticmethod
    def _materialize_all(partition_id: int, queue: _SoaQueue) -> list[Message]:
        """Materialize a whole SoA queue into Messages, in queue order."""
        messages: list[Message] = []
        h = queue.head
        objs = iter(queue.objs)
        next_obj = next(objs, None)
        while h < queue.tail or next_obj is not None:
            if next_obj is None or (
                h < queue.tail and queue.seq[h] < next_obj[0]
            ):
                messages.append(
                    Message(
                        query_id=int(queue.qid[h]),
                        target_partition=partition_id,
                        cost=WorkCost(
                            instructions=float(queue.instr[h]),
                            bytes_accessed=float(queue.nbytes[h]),
                        ),
                    )
                )
                h += 1
            else:
                messages.append(next_obj[1])
                next_obj = next(objs, None)
        return messages

    def adopt_partition(self, partition_id: int) -> None:
        """Home a migrated partition on this socket.

        The partition arrives with an empty queue; its shipped messages
        follow through the normal inter-socket transfer path and enqueue
        on delivery.

        Raises:
            MessagingError: if the partition is already homed here.
        """
        if partition_id in self._queues:
            raise MessagingError(
                f"partition {partition_id} is already on socket "
                f"{self.socket_id}"
            )
        self._queues[partition_id] = _SoaQueue() if self._vectorized else deque()
        self._order[partition_id] = self._next_order
        self._next_order += 1

    def _require_partition(self, partition_id: int) -> None:
        if partition_id not in self._queues:
            raise MessagingError(
                f"partition {partition_id} is not on socket {self.socket_id}"
            )

    def _require_owner(self, worker_id: int, partition_id: int) -> None:
        self._require_partition(partition_id)
        owner = self._owners.get(partition_id)
        if owner != worker_id:
            raise OwnershipError(
                f"worker {worker_id} does not own partition {partition_id} "
                f"(owner: {owner})"
            )
