"""Query arrival generation from a (workload, load profile) pair.

Arrivals are deterministic-rate by default: the generator integrates the
instantaneous query rate and emits a query whenever the accumulated
expectation crosses 1.  ``poisson=True`` switches to exponential
inter-arrival jitter on top of the same rate curve (for tail-latency
studies); both modes are reproducible for a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.dbms.queries import Query
from repro.loadprofiles.base import LoadProfile
from repro.storage.partition import PartitionMap
from repro.workloads.base import Workload


class LoadGenerator:
    """Generates query arrivals tick by tick."""

    def __init__(
        self,
        workload: Workload,
        profile: LoadProfile,
        partitions: PartitionMap,
        seed: int = 0,
        poisson: bool = False,
        real_mode: bool = False,
    ):
        self.workload = workload
        self.profile = profile
        self.partitions = partitions
        self.poisson = poisson
        self.real_mode = real_mode
        self._rng = np.random.default_rng(seed)
        self._accumulated = 0.0
        self.generated_count = 0

    def rate_qps(self, t_s: float) -> float:
        """Instantaneous query rate at time ``t_s``."""
        return self.workload.queries_per_second(self.profile.fraction(t_s))

    def arrivals(self, t_s: float, dt_s: float) -> list[Query]:
        """Queries arriving within ``[t_s, t_s + dt_s)``.

        Raises:
            SimulationError: on a non-positive tick.
        """
        if dt_s <= 0:
            raise SimulationError(f"tick must be > 0, got {dt_s}")
        rate = self.rate_qps(t_s + dt_s / 2.0)
        if rate <= 0:
            return []
        expected = rate * dt_s
        if self.poisson:
            count = int(self._rng.poisson(expected))
        else:
            self._accumulated += expected
            count = int(self._accumulated)
            self._accumulated -= count
        queries = []
        for i in range(count):
            arrival = t_s + dt_s * (i + 0.5) / max(1, count)
            if self.real_mode:
                query = self.workload.make_real_query(
                    self._rng, arrival, self.partitions
                )
            else:
                query = self.workload.make_modeled_query(
                    self._rng, arrival, self.partitions
                )
            queries.append(query)
        self.generated_count += count
        return queries
