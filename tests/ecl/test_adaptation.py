"""Tests for online/multiplexed profile maintenance bookkeeping."""

import pytest

from repro.errors import ControlError
from repro.ecl.adaptation import ProfileMaintainer
from repro.profiles.configuration import Configuration, ConfigurationMeasurement
from repro.profiles.profile import EnergyProfile


@pytest.fixture
def profile():
    configs = [Configuration.idle(0, 1.2)] + [
        Configuration.build(0, set(range(n)), {i: 1.9 for i in range(n)}, 2.1)
        for n in (1, 2, 4)
    ]
    profile = EnergyProfile(configs)
    for i, config in enumerate(configs):
        profile.record(
            config, ConfigurationMeasurement(20.0 + 10 * i, 1e9 * i, 0.0)
        )
    return profile


@pytest.fixture
def maintainer(profile):
    return ProfileMaintainer(profile, ewma_weight=0.5, drift_threshold=0.15)


def cfg_of(profile, threads):
    for config in profile.configurations():
        if config.thread_count == threads:
            return config
    raise AssertionError


class TestOnline:
    def test_record_blends_ewma(self, maintainer, profile):
        config = cfg_of(profile, 2)
        before = profile.entry(config).measurement
        drifted = maintainer.record_online(
            config, ConfigurationMeasurement(before.power_w * 1.1, before.performance_score, 1.0)
        )
        assert not drifted
        after = profile.entry(config).measurement
        assert after.power_w == pytest.approx(before.power_w * 1.05)
        assert maintainer.online_updates == 1

    def test_large_drift_marks_stale(self, maintainer, profile):
        config = cfg_of(profile, 2)
        drifted = maintainer.record_online(
            config, ConfigurationMeasurement(40.0, 5e9, 1.0)
        )
        assert drifted
        assert maintainer.drift_events == 1
        stale = profile.stale_entries()
        assert len(stale) == len(profile) - 1  # everything but the measured one
        assert not profile.entry(config).stale

    def test_drift_without_marking(self, profile):
        maintainer = ProfileMaintainer(profile, mark_stale_on_drift=False)
        config = cfg_of(profile, 2)
        drifted = maintainer.record_online(
            config, ConfigurationMeasurement(40.0, 5e9, 1.0)
        )
        assert drifted
        assert not profile.stale_entries()

    def test_power_drift_detected(self, maintainer, profile):
        config = cfg_of(profile, 2)
        before = profile.entry(config).measurement
        drifted = maintainer.record_online(
            config,
            ConfigurationMeasurement(
                before.power_w * 1.4, before.performance_score, 1.0
            ),
        )
        assert drifted


class TestMultiplexed:
    def test_sweep_order_small_first(self, maintainer, profile):
        profile.mark_all_stale()
        config = maintainer.next_stale_configuration()
        assert config is not None
        assert config.thread_count == 1  # not the idle configuration

    def test_idle_excluded(self, maintainer, profile):
        profile.mark_all_stale()
        assert maintainer.multiplexing_needed
        seen = []
        while (config := maintainer.next_stale_configuration()) is not None:
            seen.append(config)
            maintainer.record_multiplexed(
                config, ConfigurationMeasurement(30.0, 2e9, 2.0)
            )
        assert all(not c.is_idle for c in seen)
        assert len(seen) == 3
        # Only the idle entry stays stale; it does not demand multiplexing.
        assert not maintainer.multiplexing_needed

    def test_record_replaces_outright(self, maintainer, profile):
        config = cfg_of(profile, 4)
        maintainer.record_multiplexed(
            config, ConfigurationMeasurement(99.0, 9e9, 3.0)
        )
        m = profile.entry(config).measurement
        assert m.power_w == pytest.approx(99.0)
        assert maintainer.multiplexed_updates == 1
        assert not profile.entry(config).stale


class TestValidation:
    def test_bad_ewma(self, profile):
        with pytest.raises(ControlError):
            ProfileMaintainer(profile, ewma_weight=0.0)

    def test_bad_threshold(self, profile):
        with pytest.raises(ControlError):
            ProfileMaintainer(profile, drift_threshold=0.0)
