"""Tests for the piecewise time-varying Signal abstraction."""

import numpy as np
import pytest

from repro.environment import (
    ConstantSignal,
    PiecewiseLinearSignal,
    StepSignal,
    load_signal,
)
from repro.errors import SimulationError


class TestConstantSignal:
    def test_value_everywhere(self):
        sig = ConstantSignal(450.0)
        assert sig.value(0.0) == 450.0
        assert sig.value(-5.0) == 450.0
        assert sig.value(1e9) == 450.0

    def test_values_vectorized(self):
        sig = ConstantSignal(0.12, name="price")
        out = sig.values(np.array([0.0, 1.0, 2.0]))
        assert out.dtype == np.float64
        assert list(out) == [0.12, 0.12, 0.12]
        assert sig.name == "price"

    def test_never_changes(self):
        assert ConstantSignal(1.0).next_change_s(0.0) == float("inf")

    def test_average_is_the_value(self):
        assert ConstantSignal(7.0).average(0.0, 100.0) == 7.0


class TestStepSignal:
    def _sig(self):
        return StepSignal([(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)])

    def test_left_closed_semantics(self):
        sig = self._sig()
        assert sig.value(0.0) == 1.0
        assert sig.value(9.999) == 1.0
        assert sig.value(10.0) == 2.0  # boundary belongs to the new level
        assert sig.value(19.999) == 2.0
        assert sig.value(20.0) == 3.0

    def test_edges_hold(self):
        sig = self._sig()
        assert sig.value(-5.0) == 1.0  # first value holds before t0
        assert sig.value(1e6) == 3.0  # last value holds forever

    def test_scalar_and_vector_agree(self):
        sig = self._sig()
        times = np.array([-1.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0])
        vector = sig.values(times)
        scalar = [sig.value(float(t)) for t in times]
        assert list(vector) == scalar

    def test_next_change(self):
        sig = self._sig()
        assert sig.next_change_s(-1.0) == 0.0
        assert sig.next_change_s(0.0) == 10.0  # strictly after
        assert sig.next_change_s(9.999) == 10.0
        assert sig.next_change_s(10.0) == 20.0
        assert sig.next_change_s(20.0) == float("inf")

    def test_average_weights_levels_by_dwell(self):
        sig = StepSignal([(0.0, 1.0), (10.0, 3.0)])
        assert sig.average(0.0, 20.0, samples=1000) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            StepSignal([])
        with pytest.raises(SimulationError):
            StepSignal([(5.0, 1.0), (1.0, 2.0)])  # unordered
        with pytest.raises(SimulationError):
            StepSignal([(1.0, 1.0), (1.0, 2.0)])  # duplicate time


class TestPiecewiseLinearSignal:
    def test_interpolation_matches_exact_formula(self):
        sig = PiecewiseLinearSignal([(0.0, 0.0), (10.0, 1.0)])
        assert sig.value(5.0) == pytest.approx(0.5)
        assert sig.value(0.0) == 0.0
        assert sig.value(10.0) == 1.0

    def test_outside_clamps_by_default(self):
        sig = PiecewiseLinearSignal([(0.0, 2.0), (10.0, 4.0)])
        assert sig.value(-1.0) == 2.0
        assert sig.value(11.0) == 4.0
        assert list(sig.values(np.array([-1.0, 11.0]))) == [2.0, 4.0]

    def test_outside_literal_for_load_profiles(self):
        sig = PiecewiseLinearSignal(
            [(0.0, 2.0), (10.0, 4.0)], outside=0.0
        )
        assert sig.value(-1.0) == 0.0
        assert sig.value(11.0) == 0.0
        assert list(sig.values(np.array([-1.0, 11.0]))) == [0.0, 0.0]

    def test_scalar_and_vector_paths_agree(self):
        sig = PiecewiseLinearSignal(
            [(0.0, 0.1), (3.0, 0.9), (7.0, 0.2), (10.0, 0.6)]
        )
        times = np.linspace(0.0, 10.0, 101)
        vector = sig.values(times)
        for t, v in zip(times, vector):
            assert sig.value(float(t)) == pytest.approx(float(v), abs=1e-12)

    def test_next_change_lands_on_knots(self):
        sig = PiecewiseLinearSignal([(0.0, 0.0), (5.0, 1.0), (10.0, 0.0)])
        assert sig.next_change_s(0.0) == 5.0
        assert sig.next_change_s(5.0) == 10.0
        assert sig.next_change_s(10.0) == float("inf")

    def test_validation(self):
        with pytest.raises(SimulationError):
            PiecewiseLinearSignal([(0.0, 1.0)])
        with pytest.raises(SimulationError):
            PiecewiseLinearSignal([(5.0, 1.0), (0.0, 2.0)])


class TestLoadSignal:
    def test_csv_with_header(self, tmp_path):
        path = tmp_path / "carbon.csv"
        path.write_text("time_s,value\n0,400\n100,300\n200,500\n")
        sig = load_signal(path)
        assert sig.name == "carbon"
        assert sig.value(50.0) == 400.0
        assert sig.value(100.0) == 300.0
        assert sig.next_change_s(0.0) == 100.0

    def test_jsonl(self, tmp_path):
        path = tmp_path / "price.jsonl"
        path.write_text(
            '{"time_s": 0, "value": 0.05}\n{"t": 60, "value": 0.25}\n'
        )
        sig = load_signal(path, name="tou")
        assert sig.name == "tou"
        assert sig.value(30.0) == 0.05
        assert sig.value(60.0) == 0.25

    def test_missing_file(self, tmp_path):
        with pytest.raises(SimulationError):
            load_signal(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time_s,value\n")
        with pytest.raises(SimulationError):
            load_signal(path)

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,400\nnot-a-number,300\n")
        with pytest.raises(SimulationError):
            load_signal(path)

    def test_jsonl_missing_value_key(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time_s": 0}\n')
        with pytest.raises(SimulationError):
            load_signal(path)
