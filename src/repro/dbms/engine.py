"""The DBMS engine facade: runtime + hardware in lock-step.

``DatabaseEngine`` owns the whole data-oriented runtime (partition map,
per-socket hubs, inter-socket router, elastic worker pool, query tracker,
statistics) and advances it in lock-step with a
:class:`~repro.hardware.machine.Machine`:

per tick (``dt``):

1. the communication threads flush their outbound buffers (messages
   buffered last tick arrive now — one tick of interconnect latency),
   and in-flight partition migrations advance (quiesce → transfer, see
   :mod:`repro.placement.migration`);
2. each socket's pending work is reported to the machine as demand;
3. the machine resolves the performance model and returns how many
   instructions each socket executed;
4. the active workers of each socket consume messages against that
   instruction budget under the ownership protocol;
5. completed messages advance their queries; finished queries produce
   latency samples for the system-level ECL.

The worker:partition ratio defaults to the paper's 1:1 setting (one
partition per hardware thread).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Mapping

import numpy as np

from repro.errors import SimulationError
from repro.dbms.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.dbms.elasticity import ElasticWorkerPool
from repro.dbms.inter_socket import InterSocketRouter
from repro.dbms.intra_socket import IntraSocketHub
from repro.dbms.messages import Message
from repro.dbms.queries import Query, QueryCompletion, QueryTracker
from repro.dbms.querybank import QueryBank
from repro.dbms.worker import CompletedRun
from repro.dbms.stats import LatencyTracker, UtilizationTracker
from repro.hardware.machine import IDLE_CHARACTERISTICS, Machine, StepResult
from repro.hardware.perfmodel import (
    SocketLoad,
    WorkloadCharacteristics,
    blend_characteristics,
)
from repro.placement import (
    DEFAULT_PLACEMENT,
    MigrationCoordinator,
    MigrationRecord,
    PlacementPolicy,
    build_placement,
)
from repro.storage.partition import PartitionMap

#: Instruction quantum a worker receives per scheduling round inside a tick.
#: (Default-config alias; tunable per run through ``EngineConfig``.)
WORKER_QUANTUM_INSTRUCTIONS = DEFAULT_ENGINE_CONFIG.worker_quantum_instructions


@dataclass
class EngineTickResult:
    """Everything that happened during one engine tick."""

    time_s: float
    step: StepResult
    completions: list[QueryCompletion] = dataclass_field(default_factory=list)
    consumed_by_socket: dict[int, float] = dataclass_field(default_factory=dict)
    offered_by_socket: dict[int, float] = dataclass_field(default_factory=dict)
    messages_processed: int = 0


class DatabaseEngine:
    """Data-oriented in-memory DBMS bound to a simulated machine."""

    def __init__(
        self,
        machine: Machine,
        partition_count: int | None = None,
        latency_window_s: float = 5.0,
        utilization_window_s: float = 1.0,
        placement: PlacementPolicy | str = DEFAULT_PLACEMENT,
        engine_config: EngineConfig | None = None,
    ):
        self.machine = machine
        self.config = engine_config or DEFAULT_ENGINE_CONFIG
        topology = machine.topology
        if partition_count is None:
            # One partition per hardware thread — across *all* nodes.
            partition_count = topology.total_threads
        if partition_count < topology.socket_count:
            raise SimulationError(
                f"partition_count ({partition_count}) must cover the "
                f"machine's {topology.socket_count} sockets — every socket "
                f"needs at least one partition; raise partition_count or "
                f"shrink the cluster"
            )
        if isinstance(placement, str):
            placement = build_placement(placement)
        self.placement = placement
        assignment = placement.initial_assignment(
            partition_count, [s.socket_id for s in topology.sockets]
        )
        self.partitions = PartitionMap(
            partition_count, topology.socket_count, assignment=assignment
        )

        self.hubs: dict[int, IntraSocketHub] = {}
        for sock in topology.sockets:
            pids = [
                p.partition_id
                for p in self.partitions.partitions_on_socket(sock.socket_id)
            ]
            if not pids:
                raise SimulationError(
                    f"socket {sock.socket_id} holds no partitions; "
                    f"increase partition_count (got {partition_count})"
                )
            self.hubs[sock.socket_id] = IntraSocketHub(
                sock.socket_id, pids, vectorized=self.config.vector_messages
            )

        self.router = InterSocketRouter(
            self.hubs,
            config=self.config,
            socket_node={
                sid: machine.node_of_socket(sid) for sid in self.hubs
            },
        )
        self.migrations = MigrationCoordinator(
            self.partitions,
            self.hubs,
            self.router,
            self.config,
            charge=self.add_overhead_instructions,
        )
        #: Sockets taken off query intake (drained for package sleep);
        #: submissions coordinated there fall back to an online socket.
        self._offline_sockets: set[int] = set()
        self.pool = ElasticWorkerPool(topology, self.hubs)
        self.tracker = QueryTracker()
        self.latency = LatencyTracker(window_s=latency_window_s)
        socket_ids = tuple(s.socket_id for s in topology.sockets)
        self.utilization = UtilizationTracker(
            socket_ids, window_s=utilization_window_s
        )
        self._socket_chars: dict[int, WorkloadCharacteristics] = {
            sid: IDLE_CHARACTERISTICS for sid in socket_ids
        }
        self._overhead_instructions: dict[int, float] = {
            sid: 0.0 for sid in socket_ids
        }
        #: C-state version last mirrored into the worker pool; the pool is
        #: only mutated through :meth:`sync_workers`, so an unchanged
        #: version means the sync would be a no-op.
        self._synced_cstates_version: int | None = None
        #: Per-socket mutation versions at the last worker sync, so a
        #: reconfiguration on one socket does not resync the other.
        self._synced_socket_versions: dict[int, int] = {}
        #: Per-socket blended-characteristics memo, keyed by the hub's
        #: tag version and the declared default characteristics; demand
        #: re-resolution between drains re-reads the same blend.
        self._blend_cache: dict[int, tuple[int, WorkloadCharacteristics, WorkloadCharacteristics]] = {}
        #: Per-socket memo of the last declared SocketLoad: steady ticks
        #: (same blend, same demand) re-declare the identical object, so
        #: the machine's one-slot resolve memo can hit on identity.
        self._load_cache: dict[int, SocketLoad] = {}

    # -- workload declaration ---------------------------------------------------

    def set_workload_characteristics(
        self, chars: WorkloadCharacteristics, socket_id: int | None = None
    ) -> None:
        """Declare the execution characteristics of the active workload.

        With ``socket_id=None`` the characteristics apply machine-wide.
        The hardware performance model uses them to translate instruction
        demand into throughput, stalls, and traffic.
        """
        if socket_id is None:
            for sid in self._socket_chars:
                self._socket_chars[sid] = chars
        else:
            if socket_id not in self._socket_chars:
                raise SimulationError(f"unknown socket id {socket_id}")
            self._socket_chars[socket_id] = chars

    def workload_characteristics(self, socket_id: int) -> WorkloadCharacteristics:
        """The characteristics currently declared for a socket."""
        return self._socket_chars[socket_id]

    # -- query intake ---------------------------------------------------------------

    def submit(self, query: Query) -> None:
        """Accept a query: dispatch and route its stage-0 messages.

        Queries coordinated on an offline (drained) socket are redirected
        to the lowest-id online socket — clients of a powered-down node
        reconnect elsewhere, so no traffic originates on parked hardware.
        """
        source = query.coordinator_socket
        if source in self._offline_sockets:
            source = min(
                sid for sid in self.hubs if sid not in self._offline_sockets
            )
        for message in self.tracker.dispatch(query):
            self.router.route(source, message)

    def submit_bank(self, bank: QueryBank) -> None:
        """Accept a columnar block of single-stage modeled queries.

        The bank's messages are routed as columns — straight into the
        hubs' compact arrays when local, as a columnar chunk through the
        transfer buffers when remote — with the same offline-coordinator
        redirect as :meth:`submit`.
        """
        coordinators = bank.coordinators
        if self._offline_sockets:
            online = min(
                sid for sid in self.hubs if sid not in self._offline_sockets
            )
            offline = np.fromiter(
                self._offline_sockets, dtype=np.int64
            )
            coordinators = np.where(
                np.isin(coordinators, offline), online, coordinators
            )
        self.tracker.register_bank(
            bank.first_query_id, bank.fan_out, bank.arrivals_s
        )
        count = bank.count
        fan = bank.fan_out
        first = bank.first_query_id
        if count * fan <= 32:
            # Small banks feed the router's scalar path with plain lists
            # (same np.repeat replication order, no numpy fixed costs).
            sources = [
                sid for sid in coordinators.tolist() for _ in range(fan)
            ]
            query_ids = [
                first + i for i in range(count) for _ in range(fan)
            ]
        else:
            sources = np.repeat(coordinators, fan)
            query_ids = np.repeat(
                np.arange(first, first + count, dtype=np.int64), fan
            )
        self.router.route_bank(
            sources,
            bank.targets,
            bank.instructions,
            bank.bytes_accessed,
            query_ids,
        )

    def pending_messages(self) -> int:
        """Messages queued across all hubs and outbound buffers."""
        queued = sum(hub.pending_messages for hub in self.hubs.values())
        return queued + self.router.total_buffered

    def add_overhead_instructions(self, socket_id: int, instructions: float) -> None:
        """Charge non-query work (e.g. the ECL thread) against a socket.

        The overhead is consumed out of the socket's executed-instruction
        budget before any worker processes messages.
        """
        if socket_id not in self._overhead_instructions:
            raise SimulationError(f"unknown socket id {socket_id}")
        if instructions < 0:
            raise SimulationError(f"negative overhead {instructions}")
        self._overhead_instructions[socket_id] += instructions

    def overhead_balances(self) -> dict[int, float]:
        """The live per-socket overhead balances, for bulk charging.

        The control loop runs every tick; funnelling its fixed per-tick
        charge through :meth:`add_overhead_instructions` re-validates the
        socket id and sign on every call.  Trusted per-tick callers add
        directly to the returned mapping instead (it is the engine's own
        balance store, keyed by socket id; the semantics are exactly
        those of :meth:`add_overhead_instructions`).
        """
        return self._overhead_instructions

    # -- data placement ----------------------------------------------------------

    def request_migration(
        self, partition_id: int, target_socket: int
    ) -> MigrationRecord | None:
        """Start moving a partition to another socket.

        The move is asynchronous: the partition quiesces first and the
        transfer happens inside a subsequent :meth:`tick` (see
        :mod:`repro.placement.migration`).  Returns None when the
        partition already lives on the target or is mid-migration.
        """
        return self.migrations.request(
            partition_id, target_socket, self.machine.time_s
        )

    @property
    def migration_log(self) -> list[MigrationRecord]:
        """Every completed migration, in completion order."""
        return self.migrations.log

    def set_socket_online(self, socket_id: int, online: bool) -> None:
        """Toggle a socket's query intake (socket drain / wake).

        Taking a socket offline also forfeits its queued bookkeeping
        overhead: the communication thread of a parked socket stops
        polling, and a zero-capacity socket could otherwise never drain
        the balance.  At least one socket must stay online.

        Raises:
            SimulationError: for unknown ids, or when the last online
                socket would go offline.
        """
        if socket_id not in self.hubs:
            raise SimulationError(f"unknown socket id {socket_id}")
        if online:
            self._offline_sockets.discard(socket_id)
            return
        remaining = set(self.hubs) - self._offline_sockets - {socket_id}
        if not remaining:
            raise SimulationError("cannot take the last online socket offline")
        self._offline_sockets.add(socket_id)
        self._overhead_instructions[socket_id] = 0.0

    def socket_is_online(self, socket_id: int) -> bool:
        """Whether a socket accepts coordinated query intake."""
        if socket_id not in self.hubs:
            raise SimulationError(f"unknown socket id {socket_id}")
        return socket_id not in self._offline_sockets

    # -- main loop ---------------------------------------------------------------

    def sync_workers(self) -> None:
        """Align the worker pool with the machine's active threads.

        Skipped when the C-state model's version is unchanged since the
        last sync — parking/unparking is driven exclusively by the
        machine's active-thread set, so the sync is a no-op then.
        """
        cstates = self.machine.cstates
        version = cstates.version
        if version == self._synced_cstates_version:
            return
        self._synced_cstates_version = version
        for sock in self.machine.topology.sockets:
            sid = sock.socket_id
            socket_version = cstates.socket_mutation_version(sid)
            if socket_version == self._synced_socket_versions.get(sid):
                continue  # this socket's thread set is untouched
            self._synced_socket_versions[sid] = socket_version
            self.pool.sync_with_threads(
                sid, cstates.active_threads_on_socket(sid)
            )

    def _blended_characteristics(
        self, socket_id: int, hub: IntraSocketHub
    ) -> WorkloadCharacteristics:
        """Instruction-weighted mix of the socket's pending work.

        Untagged messages contribute the socket's default characteristics;
        a socket with no pending work reports its default unchanged.
        """
        default = self._socket_chars[socket_id]
        version = hub.tag_version
        cached = self._blend_cache.get(socket_id)
        if (
            cached is not None
            and cached[0] == version
            and cached[1] is default
        ):
            return cached[2]
        tagged = hub.pending_by_characteristics()
        if not tagged:
            blended = default
        else:
            parts = []
            for chars, weight in tagged:
                parts.append((default if chars is None else chars, weight))
            if len(parts) == 1:
                blended = parts[0][0]
            else:
                blended = blend_characteristics(parts)
        self._blend_cache[socket_id] = (version, default, blended)
        return blended

    def tick(self, dt_s: float) -> EngineTickResult:
        """Advance runtime and hardware by ``dt_s`` seconds."""
        if dt_s <= 0:
            raise SimulationError(f"tick duration must be > 0, got {dt_s}")
        self.sync_workers()

        # 1. Communication threads transfer last tick's remote messages.
        transfer = self.router.flush()
        for sid, cost in transfer.cost_by_socket.items():
            self._overhead_instructions[sid] += cost.instructions

        # 1b. In-flight partition moves advance (quiesce checks, queue
        # eviction into the transfer path, per-byte cost charges).  A
        # strict no-op while nothing is migrating.
        if self.migrations.active_count:
            self.migrations.tick(self.machine.time_s)

        # 2. Report demand to the hardware model, blending the pending
        # messages' characteristics tags per socket (query interference).
        for sid, hub in self.hubs.items():
            pending = hub.pending_cost_instructions()
            demand_ips = (pending + self._overhead_instructions[sid]) / dt_s
            chars = self._blended_characteristics(sid, hub)
            load = self._load_cache.get(sid)
            if (
                load is None
                or load.characteristics is not chars
                or load.demand_instructions_per_s != demand_ips
            ):
                load = SocketLoad(
                    characteristics=chars,
                    demand_instructions_per_s=demand_ips,
                )
                self._load_cache[sid] = load
            self.machine.set_socket_load(sid, load)

        # 3. Hardware resolves throughput and burns energy.
        step = self.machine.step(dt_s)

        # 4. Workers consume the executed instruction budget.
        completions: list[Message] = []
        done_queries: list[QueryCompletion] = []
        consumed_by_socket: dict[int, float] = {}
        offered_by_socket: dict[int, float] = {}
        now = step.time_s
        processed_count = 0

        for sid, hub in self.hubs.items():
            executed = step.sockets[sid].executed_instructions
            overhead = min(self._overhead_instructions[sid], executed)
            self._overhead_instructions[sid] -= overhead
            budget = executed - overhead
            consumed = overhead
            # Idle fast path: with no queued messages every worker's
            # quantum is a no-op (acquire returns None, no stats change),
            # so the scheduling loop is skipped outright.
            workers = (
                self.pool.active_workers(sid)
                if budget > 0 and hub.pending_messages
                else ()
            )
            if workers and budget > 0:
                progress = True
                while budget > 0 and progress:
                    progress = False
                    for worker in workers:
                        if budget <= 0:
                            break
                        if not hub.pending_messages:
                            # Backlog drained: every remaining quantum
                            # would be a no-op (acquire finds nothing).
                            break
                        quantum = min(
                            budget, self.config.worker_quantum_instructions
                        )
                        used, done = worker.process_quantum(
                            hub, self.partitions, quantum
                        )
                        if used > 0 or done:
                            progress = True
                        budget -= used
                        consumed += used
                        completions.extend(done)

            capacity = step.sockets[sid].performance.capacity_ips * dt_s
            offered_by_socket[sid] = capacity
            consumed_by_socket[sid] = consumed
            self.utilization.record_tick(
                sid,
                now,
                capacity,
                consumed,
                pending_instructions=hub.pending_cost_instructions(),
            )

        # 5. Advance queries; route follow-up stages; record latencies.
        # Compact runs (the vectorized drain) settle whole query-id
        # blocks at once; object-lane messages take the per-message path.
        record = self.latency.record
        for item in completions:
            if type(item) is CompletedRun:
                processed_count += len(item.query_ids)
                for completion in self.tracker.on_compact_done(
                    item.query_ids, now
                ):
                    done_queries.append(completion)
                    record(now, completion.latency_s)
                continue
            processed_count += 1
            home = self.router.home_socket(item.target_partition)
            followups, completion = self.tracker.on_message_done(item, now)
            for followup in followups:
                self.router.route(home, followup)
            if completion is not None:
                done_queries.append(completion)
                record(now, completion.latency_s)

        return EngineTickResult(
            time_s=now,
            step=step,
            completions=done_queries,
            consumed_by_socket=consumed_by_socket,
            offered_by_socket=offered_by_socket,
            messages_processed=processed_count,
        )

    def span_tick(
        self,
        dt_s: float,
        n_ticks: int,
        tick_charges: Mapping[int, float],
        min_ticks: int = 2,
    ) -> int:
        """Fast-forward up to ``n_ticks`` steady-state ticks in one span.

        A tick is *steady* when replaying it would change nothing but
        clocks, counters, and the overhead balance: no arrivals (the
        caller guarantees this), no buffered transfers or migrations, no
        worker progress, and a per-socket demand that resolves to the
        machine's last step result — either exactly the same demand, or
        any demand at or above capacity (the saturated resolution is
        demand-independent).  ``tick_charges`` is the per-socket overhead
        the control policy would add on each skipped tick (see
        ``ControlPolicy.macro_view``).

        The balance fold, utilization samples, and counter accumulation
        replay the per-tick arithmetic operation for operation, so the
        resulting state is bit-identical to ticking ``n`` times.  Returns
        the number of ticks actually advanced — 0 (and no state change)
        when fewer than ``min_ticks`` ticks are steady.  The composite
        span executor lowers ``min_ticks`` to 1 for interior segments,
        where even a single committed tick extends an ongoing span.
        """
        if n_ticks < min_ticks or n_ticks < 1 or dt_s <= 0:
            return 0
        step = self.machine.last_step
        if step is None:
            return 0
        if self.migrations.active_count or self.router.total_buffered:
            return 0
        if self.machine.cstates.version != self._synced_cstates_version:
            return 0

        # Validity pass: fold each socket's overhead balance forward
        # without mutating anything, shrinking the span to the longest
        # prefix on which every socket stays steady.  Per-socket reads
        # (step slice, pending cost, charge, starting balance) are kept
        # for the commit pass, which would otherwise recompute them.
        machine = self.machine
        n_valid = n_ticks
        plan: list[tuple] = []
        for sid, hub in self.hubs.items():
            if not machine.thermal_steady(sid):
                return 0
            socket_step = step.sockets[sid]
            executed = socket_step.executed_instructions
            capacity_ips = socket_step.performance.capacity_ips
            d_last = machine.socket_load(sid).demand_instructions_per_s
            if d_last is None:
                return 0
            saturated = d_last >= capacity_ips
            pending = hub.pending_cost_instructions()
            charge = tick_charges.get(sid)
            b = self._overhead_instructions[sid]
            plan.append((sid, hub, executed, capacity_ips, pending, charge, b))
            if executed == 0.0 and charge:
                # Growing-balance fast path (idle RTI phases, drained
                # nights): nothing executes, so the balance climbs by the
                # same charge every tick, demand grows monotonically, and
                # use stays zero.  The whole span is steady iff the first
                # tick resolves to the saturated bucket — every later
                # demand only moves further above capacity.  Otherwise
                # the scalar fold would break on the very first tick (an
                # exact demand match cannot survive a growing balance),
                # so refusing outright is exact for any ``min_ticks``.
                demand = (pending + b + charge) / dt_s
                if saturated and demand >= capacity_ips:
                    continue
                return 0
            has_backlog = hub.pending_messages > 0
            has_workers = bool(self.pool.active_workers(sid))
            i = 0
            while i < n_valid:
                b_top = b
                if charge is not None:
                    b = b + charge
                demand = (pending + b) / dt_s
                if not (
                    demand == d_last or (saturated and demand >= capacity_ips)
                ):
                    break
                use = min(b, executed)
                b = b - use
                if executed - use > 0.0 and has_backlog and has_workers:
                    break
                i += 1
                if b == b_top:
                    # Balance fixed point: the tick transform is a pure
                    # function of the top-of-tick balance, so every
                    # further tick replays this one exactly and the whole
                    # remaining span is steady.
                    i = n_valid
                    break
            n_valid = i
            if n_valid < min_ticks:
                return 0

        # Commit: fold the tick grid exactly as the per-tick path would
        # (time is a left fold of + dt_s), advance the machine counters,
        # and replay the balance / utilization updates per tick.  Once
        # the balance hits its fixed point the remaining samples are all
        # identical, so they are appended in one bulk call.
        if n_valid >= 32:
            times = np.add.accumulate(
                np.concatenate(([machine.time_s], np.full(n_valid, dt_s)))
            )[1:].tolist()
        else:
            times = []
            t = machine.time_s
            for _ in range(n_valid):
                t = t + dt_s
                times.append(t)
        machine.span_step(dt_s, n_valid)
        for sid, hub, executed, capacity_ips, pending, charge, b in plan:
            capacity = capacity_ips * dt_s
            chars = self._blended_characteristics(sid, hub)
            if executed == 0.0 and charge:
                # Growing-balance fast path, mirroring the validity pass:
                # use is zero on every tick and the balance is a pure
                # left fold of ``+ charge``, so the per-tick loop
                # collapses to one accumulate (bit-identical: chained
                # np.add.accumulate is a strict left-to-right fold) and
                # the utilization samples — identical except for their
                # timestamps — append in one bulk call.
                if n_valid >= 32:
                    b = float(
                        np.add.accumulate(
                            np.concatenate(([b], np.full(n_valid, charge)))
                        )[-1]
                    )
                else:
                    for _ in range(n_valid):
                        b = b + charge
                self.utilization.record_span(
                    sid, times, capacity, 0.0, pending_instructions=pending
                )
                self._overhead_instructions[sid] = b
                machine.set_socket_load(
                    sid,
                    SocketLoad(
                        characteristics=chars,
                        demand_instructions_per_s=(pending + b) / dt_s,
                    ),
                )
                continue
            demand = 0.0
            use = 0.0
            k = 0
            record = self.utilization.record_tick
            while k < n_valid:
                b_top = b
                if charge is not None:
                    b = b + charge
                demand = (pending + b) / dt_s
                use = min(b, executed)
                b = b - use
                record(sid, times[k], capacity, use, pending_instructions=pending)
                k += 1
                if b == b_top:
                    break
            if k < n_valid:
                # Fixed point: every remaining tick records this sample.
                self.utilization.record_span(
                    sid, times[k:], capacity, use, pending_instructions=pending
                )
            self._overhead_instructions[sid] = b
            machine.set_socket_load(
                sid,
                SocketLoad(
                    characteristics=chars, demand_instructions_per_s=demand
                ),
            )
        return n_valid
