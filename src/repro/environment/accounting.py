"""Per-run carbon/cost accounting, bit-identical across stepping modes.

The runner charges one increment per tick::

    wall_j  = psu_power_w * pue * tick_s          # facility wall energy
    gco2_g += wall_j * carbon(t_start) / 3.6e6    # gCO2/kWh -> gCO2/J
    cost   += wall_j * price(t_start)  / 3.6e6

and a macro span must accumulate exactly the same float sequence as the
per-tick loop it replaces.  Both paths therefore share one fold: the
increments are computed vectorized over the span's tick-*start* grid —
itself built with the ``np.add.accumulate`` trick the machine's span
clock uses, so the evaluation times match the per-tick ``time_s``
values bit-for-bit — and reduced with ``np.add.accumulate``, a strict
sequential left fold identical to repeated ``+=``.  A per-tick call is
simply the one-element case of the same code.

Signals are evaluated at tick-start times (the ``now_s`` each live tick
sees); a signal change mid-tick charges from the next tick on, in both
modes, which is also why spans need no cap for *accounting* — the cap
exists so policy scalar reads and trace events land on live ticks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.environment.scenario import Environment

#: 1 kWh in joules — converts per-kWh signal units to per-joule rates.
JOULES_PER_KWH = 3.6e6


def _accumulate(total: float, increments: np.ndarray) -> float:
    """Sequential left fold of ``increments`` onto ``total`` (≡ ``+=``)."""
    return float(np.add.accumulate(np.concatenate(([total], increments)))[-1])


class EnvironmentAccounting:
    """Accumulates facility wall energy, carbon, and cost for one run."""

    __slots__ = ("environment", "wall_energy_j", "gco2_total_g", "cost_usd")

    def __init__(self, environment: "Environment"):
        self.environment = environment
        #: PUE-inflated wall energy in joules (PSU output × PUE × time).
        self.wall_energy_j = 0.0
        #: Total grams of CO₂ attributed to the run so far.
        self.gco2_total_g = 0.0
        #: Total electricity cost in dollars so far.
        self.cost_usd = 0.0

    def account_tick(
        self, now_s: float, dt_s: float, psu_power_w: float
    ) -> None:
        """Charge one live tick starting at ``now_s``."""
        self._fold(np.array([now_s], dtype=np.float64), dt_s, psu_power_w)

    def account_span(
        self, start_s: float, dt_s: float, n_ticks: int, psu_power_w: float
    ) -> None:
        """Charge a committed macro span of ``n_ticks`` ticks.

        ``psu_power_w`` is constant across a span by the engine's
        steady-state validity fold — the same invariant that lets the
        machine hold ``psu_power_w`` fixed over ``span_step``.
        """
        starts = np.add.accumulate(
            np.concatenate(([start_s], np.full(n_ticks - 1, dt_s)))
        )
        self._fold(starts, dt_s, psu_power_w)

    def _fold(
        self, tick_starts_s: np.ndarray, dt_s: float, psu_power_w: float
    ) -> None:
        environment = self.environment
        wall_j = psu_power_w * environment.pue * dt_s
        carbon = environment.carbon.values(tick_starts_s)
        price = environment.price.values(tick_starts_s)
        self.wall_energy_j = _accumulate(
            self.wall_energy_j, np.full(tick_starts_s.shape, wall_j)
        )
        self.gco2_total_g = _accumulate(
            self.gco2_total_g, (wall_j * carbon) / JOULES_PER_KWH
        )
        self.cost_usd = _accumulate(
            self.cost_usd, (wall_j * price) / JOULES_PER_KWH
        )
