"""Fig. 8 — the automatic uncore frequency scaling makes a bad call.

Paper: for a compute-bound workload, instructions retired are the same at
every uncore clock (slightly better at the lowest), yet automatic UFS
pins the uncore at maximum, wasting ~12 W.
"""

from repro.hardware.machine import Machine
from repro.hardware.perfmodel import SocketLoad
from repro.workloads.micro import COMPUTE_BOUND

from _shared import heading


def run_case(pin_uncore_ghz):
    """Performance and power with the uncore pinned or automatic."""
    machine = Machine(seed=7)
    machine.apply_socket_threads(1, set())
    machine.set_idle(1)
    machine.frequency.set_all_core_frequencies(2.6, 0.0)
    if pin_uncore_ghz is None:
        machine.frequency.set_uncore_auto(0)
    else:
        machine.frequency.set_uncore_frequency(0, pin_uncore_ghz)
    machine.set_socket_load(
        0, SocketLoad(characteristics=COMPUTE_BOUND, demand_instructions_per_s=None)
    )
    machine.step(0.2)
    step = machine.step(1.0)
    socket = step.sockets[0]
    return socket.performance.executed_ips, socket.power.socket_total_w, socket.uncore_ghz


def test_fig08_ufs_decision(run_once):
    results = run_once(
        lambda: {
            "auto UFS": run_case(None),
            "pinned 1.2 GHz": run_case(1.2),
            "pinned 3.0 GHz": run_case(3.0),
        }
    )

    heading("Fig. 8 — compute-bound at max core clock: UFS decision quality")
    for name, (ips, power, uncore) in results.items():
        print(f"{name:>16}: uncore {uncore:.1f} GHz  {ips:.3e} instr/s  {power:6.1f} W")

    auto = results["auto UFS"]
    low = results["pinned 1.2 GHz"]
    high = results["pinned 3.0 GHz"]

    # Auto UFS picks the maximum uncore clock under load.
    assert auto[2] == high[2]
    # Performance is (essentially) uncore-independent for compute work.
    assert abs(high[0] - low[0]) / low[0] < 0.02
    # ...but the automatic decision wastes ~12 W.
    waste = auto[1] - low[1]
    print(f"\nauto-UFS waste vs pinned 1.2 GHz: {waste:+.1f} W (paper: ~12 W)")
    assert 8.0 < waste < 16.0
