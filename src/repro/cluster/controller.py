"""The ``ecl-cluster`` policy: per-node ECL plus whole-node power-off.

``ecl-consolidate`` showed the single-machine endgame: drain a socket's
partitions away and the package falls into sleep.  On a cluster the same
move goes one step further — once *every* socket of a node is drained,
the node itself can be powered off, dropping it to the residual wattage
of its standby circuitry instead of the sum of its package-sleep floors.
This controller composes three layers:

* the full :class:`~repro.ecl.controller.EnergyControlLoop` runs
  underneath, one socket-level loop per socket across all nodes, exactly
  as on a single machine;
* a :class:`~repro.placement.policy.ConsolidatePlacement` planner runs
  at **node granularity**: each node is presented as one aggregate
  "socket" (mean utilization, summed backlog, union of partitions), so
  its pack plan drains the highest-numbered node first — socket ids are
  node-major, so this empties whole nodes, never stripes across them —
  and its spread plan targets the first empty node when load spikes.
  Node utilization is demand relative to **full** capacity (the ECL
  utilization scaled by each socket loop's applied-capability
  fraction): the raw signal rides the ECL setpoint at any load once the
  loop has trimmed capacity to match, which would read as permanent
  overload and wake nodes the demand cannot fill;
* node-level migration requests are translated to concrete sockets
  (round-robin over the target node's sockets) and executed through the
  engine's quiesce → transfer → resume migration protocol, paying the
  inter-node network cost for every byte that crosses a node boundary.

Draining a node parks each of its sockets the way ``ecl-consolidate``
does (intake redirected, threads parked, socket loop stood down, memory
vacated) and then calls :meth:`~repro.hardware.machine.Machine.
power_off_node`.  Waking is asymmetric: a powered-off node must first
boot (:meth:`power_on_node`, modeled power-up latency at boot wattage)
before its sockets can be reactivated and partitions migrated back, so a
wake spans several control ticks — power-on, boot settle, socket
reactivation, then the next planning round's spread migrations.  A
freshly reactivated node is still empty until that round runs, so it is
protected from re-parking by a time-based cooldown: for
``wake_hold_intervals`` planning intervals after reactivation the node
cannot be parked, giving the planner several rounds to either populate
it (the load that woke it is still there) or let the hold lapse and
park it once, deliberately.  A flag cleared by "the next replan that
sees the node live" is not enough — under a flat near-setpoint load
that replan may momentarily read below the spread threshold, park the
still-empty node it just booted, and cycle node power indefinitely.

Node 0 is the anchor: it is never drained, so the cluster always has an
online intake path (and on the ``mixed`` preset the anchor is the brawny
node, matching the wimpy/brawny deployment the preset models).

Macro protocol: spans are refused while migrations are in flight, while
a woken node awaits socket reactivation, and while a drained node awaits
its power-off — those advance state tick-by-tick.  A *booting* node does
not pin the run live: the machine's own event horizon
(:meth:`~repro.hardware.machine.Machine.next_internal_event_s`) caps
every span at the boot deadline, so the settle tick itself runs live at
exactly the tick the per-tick path would settle on, while the ~1000
ticks of a 2 s boot fold like any other steady state.  In-span *replays*
(:meth:`macro_step_tick`) still refuse while booting — the replay path
does not consult the machine horizon, so replaying a control tick that
coincides with the boot deadline would settle the node a tick late.
Wake-hold expiries bound the horizon the same way the planning check
does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.cluster import NodePowerState
from repro.placement import (
    ConsolidatePlacement,
    MigrationRequest,
    PlacementView,
    SocketView,
)
from repro.sim.metrics import SampleAnnotations

if TYPE_CHECKING:
    from repro.dbms.engine import DatabaseEngine
    from repro.ecl.controller import EnergyControlLoop
    from repro.sim.runner import RunConfiguration


#: The anchor node: never drained, so intake always has a live target.
ANCHOR_NODE = 0


class ClusterController:
    """ECL everywhere + node-granular consolidation and power-off."""

    def __init__(
        self,
        engine: "DatabaseEngine",
        inner: "EnergyControlLoop",
        planner: ConsolidatePlacement | None = None,
        check_interval_s: float | None = None,
    ):
        self.engine = engine
        self.machine = engine.machine
        self.inner = inner
        #: Node-granularity planner.  Always consolidate-shaped: packing
        #: onto few nodes is the point; the run's socket-level placement
        #: still governs the initial assignment.
        self.planner = planner or ConsolidatePlacement()
        self.check_interval_s = check_interval_s or inner.params.interval_s
        #: First check one full interval in, when utilization data exists.
        self._next_check_s = self.check_interval_s
        #: Same post-migration planning pause as ``ecl-consolidate``.
        self.cooldown_intervals = 2
        #: Sockets currently parked because their node is drained.
        self._drained: set[int] = set()
        #: Planning intervals a freshly woken node is protected from
        #: re-parking.  Time-based — measured on the tick clock from the
        #: moment the node's sockets reactivate — so the protection
        #: cannot be consumed by a single below-threshold utilization
        #: reading the way a seen-live flag could.  Eight intervals give
        #: the planner several rounds to spread load onto the node; if
        #: none does, the boot was mistaken and one deliberate park ends
        #: it (no oscillation: re-waking needs a fresh spread trigger).
        self.wake_hold_intervals = 8
        #: Tick-clock time until which each woken node may not be parked.
        self._wake_hold_until: dict[int, float] = {}
        #: Node power version at the last wake-completion scan (the scan
        #: only finds work when a node changed power state).
        self._seen_power_version = -1
        #: Memoized ``_reactivation_pending`` answer, keyed on
        #: (node power version, drained-set size).
        self._reactivation_cache: tuple[tuple[int, int], bool] | None = None
        #: Why :meth:`macro_view` last refused a span (telemetry).
        self.macro_cut: str = ""

    @classmethod
    def build(
        cls, engine: "DatabaseEngine", config: "RunConfiguration"
    ) -> "ClusterController":
        """Control-policy factory (see :mod:`repro.sim.policy`)."""
        # Imported lazily: repro.ecl.controller itself imports sim modules.
        from repro.ecl.controller import EnergyControlLoop

        inner = EnergyControlLoop.build(engine, config)
        return cls(engine, inner)

    # -- introspection ------------------------------------------------------

    @property
    def drained_sockets(self) -> frozenset[int]:
        """Sockets parked because their node is drained or powered off."""
        return frozenset(self._drained)

    @property
    def powered_off_nodes(self) -> frozenset[int]:
        """Nodes currently powered off by this controller."""
        return frozenset(
            node
            for node in range(self.machine.node_count)
            if self.machine.node_power_state(node) is NodePowerState.OFF
        )

    # -- main loop ----------------------------------------------------------

    def on_tick(self, now_s: float, dt_s: float) -> None:
        """Inner ECL, wake completion, planning, then node settle."""
        # A boot deadline may have elapsed during the preceding hardware
        # steps; fold it in before any decision looks at node states.
        self.machine.settle_node_power()
        self.inner.on_tick(now_s, dt_s)
        self._complete_wakes(now_s)
        if now_s + 1e-12 >= self._next_check_s:
            self._next_check_s += self.check_interval_s
            self._replan(now_s)
        self._settle(now_s)

    def annotate_sample(self) -> SampleAnnotations:
        return self.inner.annotate_sample()

    def macro_view(
        self, now_s: float, dt_s: float
    ) -> tuple[float, dict[int, float]] | None:
        """Steady-state view for the macro-stepping runner.

        Migrations, pending socket reactivations, and pending node parks
        all advance controller state on exact ticks, so each pins the
        run live.  A booting node does *not*: the machine horizon caps
        every span at the boot deadline, so the settle tick runs live on
        its exact tick while the boot itself folds.  Otherwise the inner
        ECL's horizon is tightened by the next node-planning check and
        by the earliest wake-hold expiry (a held node may become
        parkable the moment its hold lapses, and that park must land on
        the same tick as per-tick mode).
        """
        if self.engine.migrations.active_count:
            self.macro_cut = "migration"
            return None
        if self._reactivation_pending():
            self.macro_cut = "node-power"
            return None
        if self._parkable_node(now_s) is not None:
            self.macro_cut = "node-drain"
            return None
        view = self.inner.macro_view(now_s, dt_s)
        if view is None:
            self.macro_cut = self.inner.macro_cut
            return None
        horizon, charges = view
        horizon = min(horizon, self._next_check_s)
        for hold in self._wake_hold_until.values():
            if now_s + 1e-12 < hold:
                horizon = min(horizon, hold)
        return horizon, charges

    def macro_step_tick(self, now_s: float, dt_s: float) -> bool:
        """Replay one hardware-inert control tick inside a macro span.

        Mirrors :meth:`on_tick`, except that anything touching node
        power or placement forces the tick live — within a span no
        messages move, so none of those conditions can *arise* here; the
        checks catch state left over from the last live tick.  Booting
        refuses replays even though spans may fold a boot: the replay
        path does not consult the machine's boot-deadline horizon, so a
        replayed control tick coinciding with the deadline would skip
        the settle and flip the node one tick late vs per-tick mode.
        """
        if self.engine.migrations.active_count:
            return False
        if self._booting_nodes() or self._reactivation_pending():
            return False
        if now_s + 1e-12 >= self._next_check_s:
            return False  # the node-planning check replans / migrates
        if self._parkable_node(now_s) is not None:
            return False
        return self.inner.macro_step_tick(now_s, dt_s)

    def macro_replay(self, start_s: float, dt_s: float, n_ticks: int) -> None:
        """Forward the inner ECL's system-check replay (the planning
        check itself bounds the horizon, so it never fires in-span)."""
        self.inner.macro_replay(start_s, dt_s, n_ticks)

    # -- planning -----------------------------------------------------------

    def _node_view(self, now_s: float) -> PlacementView:
        """Each node collapsed to one aggregate :class:`SocketView`."""
        views = []
        for node in range(self.machine.node_count):
            sids = self.machine.node_sockets(node)
            partition_ids: list[int] = []
            pending = 0.0
            utilization = 0.0
            for sid in sids:
                partition_ids.extend(
                    p.partition_id
                    for p in self.engine.partitions.partitions_on_socket(sid)
                )
                pending += self.engine.hubs[sid].pending_cost_instructions()
                # Demand relative to *full* capacity, not the capacity
                # the inner ECL currently offers: a trimmed socket rides
                # the ECL setpoint at any load, which would read as
                # permanent overload and wake nodes for no demand.
                utilization += self.engine.utilization.utilization(
                    sid, now_s
                ) * self.inner.sockets[sid].capability_fraction()
            views.append(
                SocketView(
                    socket_id=node,
                    partition_ids=tuple(partition_ids),
                    utilization=utilization / len(sids),
                    pending_instructions=pending,
                    active=self._node_is_live(node),
                )
            )
        return PlacementView(time_s=now_s, sockets=tuple(views))

    def _translate(
        self, requests: list[MigrationRequest]
    ) -> list[tuple[int, int]]:
        """Map node-level requests to concrete target sockets.

        Round-robin over the target node's sockets, per plan, so a
        drained node's partitions spread evenly across each receiver
        node rather than piling onto its first socket.
        """
        cursor: dict[int, int] = {}
        out = []
        for request in requests:
            sids = self.machine.node_sockets(request.target_socket)
            index = cursor.get(request.target_socket, 0)
            cursor[request.target_socket] = index + 1
            out.append((request.partition_id, sids[index % len(sids)]))
        return out

    def _replan(self, now_s: float) -> None:
        if self.engine.migrations.active_count:
            return  # let the current wave land before planning the next
        requested = False
        plan = self.planner.plan(self._node_view(now_s))
        # Requests targeting nodes that are off or mid-wake cannot be
        # executed yet: begin (or continue) the wake and drop them; once
        # the node is live the next round re-plans against it.
        executable = []
        for request in plan:
            if self._node_is_live(request.target_socket):
                executable.append(request)
            else:
                self._begin_wake(request.target_socket)
                requested = True
        for partition_id, target_sid in self._translate(executable):
            if self.engine.request_migration(partition_id, target_sid) is not None:
                requested = True
        if requested:
            self._next_check_s = (
                now_s + self.cooldown_intervals * self.check_interval_s
            )

    # -- node drain / power-off ---------------------------------------------

    def _node_is_live(self, node: int) -> bool:
        """Powered on with every socket reactivated."""
        if self.machine.node_power_state(node) is not NodePowerState.ON:
            return False
        return not any(
            sid in self._drained for sid in self.machine.node_sockets(node)
        )

    def _booting_nodes(self) -> bool:
        return self.machine.booting_node_count > 0

    def _reactivation_pending(self) -> bool:
        """A woken node whose sockets still await reactivation.

        Gated on the machine's node power version: with no power-state
        change since the last scan the answer cannot have changed, and
        this is probed on every macro attempt.
        """
        if not self._drained:
            return False
        # The drained set only shrinks on wakes (no power-version bump),
        # so its size joins the key; it only grows alongside a power-off.
        key = (self.machine.node_power_version, len(self._drained))
        cached = self._reactivation_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        pending = any(
            self.machine.node_power_state(self.machine.node_of_socket(sid))
            is NodePowerState.ON
            for sid in self._drained
        )
        self._reactivation_cache = (key, pending)
        return pending

    def _parkable_node(self, now_s: float) -> int | None:
        """First non-anchor node that has fully drained and awaits park."""
        for node in range(self.machine.node_count):
            if node == ANCHOR_NODE:
                continue
            if self.machine.node_power_state(node) is not NodePowerState.ON:
                continue
            hold = self._wake_hold_until.get(node)
            if hold is not None:
                if now_s + 1e-12 < hold:
                    continue  # wake cooldown: just booted, give the
                    # planner time to put load on it before re-parking
                del self._wake_hold_until[node]
            sids = self.machine.node_sockets(node)
            if any(sid in self._drained for sid in sids):
                continue  # mid-wake; reactivation owns these sockets
            if all(
                not self.engine.hubs[sid].partition_ids
                and not self.engine.hubs[sid].pending_messages
                and not self.engine.router.buffered_from(sid)
                for sid in sids
            ):
                return node
        return None

    def _settle(self, now_s: float) -> None:
        """Park-and-power-off nodes that have finished draining."""
        if self.engine.migrations.active_count:
            return
        while (node := self._parkable_node(now_s)) is not None:
            self._park_node(node)

    def _park_node(self, node: int) -> None:
        for sid in self.machine.node_sockets(node):
            self.inner.sockets[sid].set_drained(True)
            self.engine.set_socket_online(sid, False)
            self.machine.apply_socket_threads(sid, ())
            self.machine.cstates.set_memory_vacated(sid, True)
            self._drained.add(sid)
        self.machine.power_off_node(node)

    def _begin_wake(self, node: int) -> None:
        if self.machine.node_power_state(node) is NodePowerState.OFF:
            self.machine.power_on_node(node)

    def _complete_wakes(self, now_s: float) -> None:
        """Reactivate the sockets of nodes that have finished booting.

        Reactivation starts each node's wake-hold cooldown: the hold is
        anchored to *this* tick's clock so both the per-tick and macro
        paths (which settle boots on the same tick) compute the same
        expiry, keeping park decisions bit-identical across modes.
        """
        if not self._drained:
            return
        version = self.machine.node_power_version
        if version == self._seen_power_version:
            return  # no node changed power state since the last scan
        self._seen_power_version = version
        for sid in sorted(self._drained):
            node = self.machine.node_of_socket(sid)
            if self.machine.node_power_state(node) is NodePowerState.ON:
                self._wake_socket(sid)
                self._wake_hold_until[node] = (
                    now_s + self.wake_hold_intervals * self.check_interval_s
                )

    def _wake_socket(self, socket_id: int) -> None:
        self._drained.discard(socket_id)
        self.machine.cstates.set_memory_vacated(socket_id, False)
        socket = self.machine.topology.socket(socket_id)
        # Full wake; the resumed socket-level loop trims from here.
        self.machine.apply_socket_threads(socket_id, set(socket.thread_ids()))
        self.engine.set_socket_online(socket_id, True)
        self.inner.sockets[socket_id].set_drained(False)
