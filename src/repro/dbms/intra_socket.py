"""Intra-socket message hub: per-partition queues with worker ownership.

This is the core of the paper's elasticity extension (§3): instead of a
static worker→partition binding, messages for the same partition are
buffered and queued per partition; any worker of the socket can *acquire*
a partition (taking exclusive ownership), drain a batch of its messages,
and *release* it again.  Consequences the implementation enforces:

* at most one worker owns a partition at any time (exclusive access keeps
  partition data structures latch-free),
* parking a worker never strands a partition — its messages remain queued
  and the next active worker picks them up,
* within a socket, load balancing is implicit: free workers grab whichever
  owned-by-nobody partition has pending work, oldest head first.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable

from repro.errors import MessagingError, OwnershipError
from repro.dbms.messages import Message

#: Default number of messages a worker drains per ownership acquisition.
DEFAULT_BATCH_SIZE = 64

#: Demand estimate for messages whose true cost is unknown pre-execution.
NOMINAL_REAL_OPERATION_INSTRUCTIONS = 1000.0


def _message_instructions(message: Message) -> float:
    """Instruction estimate of a queued message for the demand signal."""
    if message.cost is not None:
        return message.cost.instructions
    return NOMINAL_REAL_OPERATION_INSTRUCTIONS


class IntraSocketHub:
    """Message queues and the partition-ownership protocol of one socket."""

    def __init__(self, socket_id: int, partition_ids: Iterable[int]):
        self.socket_id = socket_id
        self._queues: dict[int, deque[Message]] = {
            pid: deque() for pid in partition_ids
        }
        if not self._queues:
            raise MessagingError(f"socket {socket_id} hub needs >= 1 partition")
        #: partition_id -> worker_id of the current owner.
        self._owners: dict[int, int] = {}
        #: Partitions quiesced for migration: still enqueue, never acquire.
        self._frozen: set[int] = set()
        self._pending_messages = 0
        self._pending_instructions = 0.0
        #: Pending instructions per characteristics tag (None = untagged).
        self._pending_by_tag: dict[object, tuple[object, float]] = {}
        #: Arrival order of partitions — the tie-break of
        #: :meth:`acquire_partition` (matches the original dict-scan order
        #: for the construction-time set; adopted partitions append).
        self._order: dict[int, int] = {
            pid: index for index, pid in enumerate(self._queues)
        }
        self._next_order = len(self._queues)
        #: Lazy max-heap of (-depth, order, pid, generation) snapshots.
        #: Entries are pushed on enqueue and on release; while a partition
        #: is unowned its depth only changes through pushes, so the entry
        #: with the newest generation is always exact and every older one
        #: can be discarded on sight.  Acquisition therefore disposes each
        #: entry exactly once — O(log n) amortized per queue mutation,
        #: replacing the original linear scan over all partitions.
        self._depth_heap: list[tuple[int, int, int, int]] = []
        self._entry_gen: dict[int, int] = {}

    def _push_depth(self, partition_id: int) -> None:
        depth = len(self._queues[partition_id])
        if depth:
            gen = self._entry_gen.get(partition_id, 0) + 1
            self._entry_gen[partition_id] = gen
            heapq.heappush(
                self._depth_heap,
                (-depth, self._order[partition_id], partition_id, gen),
            )

    # -- queue side -----------------------------------------------------------

    @property
    def partition_ids(self) -> tuple[int, ...]:
        """Partitions homed on this socket."""
        return tuple(self._queues)

    @property
    def pending_messages(self) -> int:
        """Total queued messages across all partitions."""
        return self._pending_messages

    def queue_depth(self, partition_id: int) -> int:
        """Queued messages for one partition."""
        self._require_partition(partition_id)
        return len(self._queues[partition_id])

    def enqueue(self, message: Message) -> None:
        """Buffer a message for its target partition.

        Raises:
            MessagingError: if the partition is not homed on this socket.
        """
        queue = self._queues.get(message.target_partition)
        if queue is None:
            raise MessagingError(
                f"partition {message.target_partition} is not on socket "
                f"{self.socket_id}"
            )
        queue.append(message)
        self._pending_messages += 1
        instructions = _message_instructions(message)
        self._pending_instructions += instructions
        self._tally_tag(message, instructions)
        self._push_depth(message.target_partition)

    def pending_cost_instructions(self) -> float:
        """Total modeled instructions waiting in all queues.

        Maintained incrementally on enqueue/dequeue; real-operation
        messages contribute a nominal estimate (their true cost is known
        only after execution).  This feeds the demand signal reported to
        the hardware model.
        """
        return self._pending_instructions

    def _tally_tag(self, message: Message, delta: float) -> None:
        chars = message.characteristics
        key = None if chars is None else chars.name
        stored = self._pending_by_tag.get(key)
        total = (stored[1] if stored else 0.0) + delta
        if total <= 1e-9:
            self._pending_by_tag.pop(key, None)
        else:
            self._pending_by_tag[key] = (chars, total)

    def pending_by_characteristics(self) -> list[tuple[object, float]]:
        """(characteristics, pending instructions) per tag.

        The ``None`` tag collects untagged messages; the engine substitutes
        its per-socket default characteristics for it when blending.
        """
        return list(self._pending_by_tag.values())

    # -- ownership protocol ----------------------------------------------------

    def owner_of(self, partition_id: int) -> int | None:
        """Current owner worker of a partition, or None."""
        self._require_partition(partition_id)
        return self._owners.get(partition_id)

    def acquire_partition(self, worker_id: int) -> int | None:
        """Acquire ownership of the partition with the most pending work.

        Returns the acquired partition id, or None when no unowned
        partition has pending messages.  Preferring the deepest queue
        approximates the implicit load balancing of the paper's design.
        """
        heap = self._depth_heap
        while heap:
            neg_depth, order, pid, gen = heap[0]
            if (
                pid not in self._queues
                or pid in self._owners
                or pid in self._frozen
                or gen != self._entry_gen.get(pid)
                or not self._queues[pid]
            ):
                # Owned partitions re-push on release, frozen ones on
                # unfreeze, evicted ones are gone; superseded or emptied
                # entries are simply dropped.
                heapq.heappop(heap)
                continue
            depth = len(self._queues[pid])
            if -neg_depth != depth:
                # Unreachable through the engine's call sequence (the
                # newest entry of an unowned partition is exact), kept as
                # insurance for external API orderings.
                heapq.heapreplace(heap, (-depth, order, pid, gen))
                continue
            heapq.heappop(heap)
            self._owners[pid] = worker_id
            return pid
        return None

    def acquire_specific(self, worker_id: int, partition_id: int) -> bool:
        """Try to acquire one specific partition.

        False when the partition is already owned or frozen for
        migration.
        """
        self._require_partition(partition_id)
        if partition_id in self._owners or partition_id in self._frozen:
            return False
        self._owners[partition_id] = worker_id
        return True

    def dequeue_batch(
        self, worker_id: int, partition_id: int, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> list[Message]:
        """Drain up to ``batch_size`` messages of an owned partition.

        Raises:
            OwnershipError: if the caller does not own the partition.
        """
        self._require_owner(worker_id, partition_id)
        if batch_size <= 0:
            raise MessagingError(f"batch_size must be >= 1, got {batch_size}")
        queue = self._queues[partition_id]
        batch = []
        while queue and len(batch) < batch_size:
            message = queue.popleft()
            instructions = _message_instructions(message)
            self._pending_instructions -= instructions
            self._tally_tag(message, -instructions)
            batch.append(message)
        self._pending_messages -= len(batch)
        if not self._pending_messages:
            self._pending_instructions = 0.0  # kill float drift at empty
            self._pending_by_tag.clear()
        return batch

    def requeue_front(self, worker_id: int, messages: list[Message]) -> None:
        """Put unprocessed messages back at the head of their queues.

        Used when a worker's instruction budget runs out mid-batch; the
        caller must still own the partitions involved.
        """
        for message in reversed(messages):
            self._require_owner(worker_id, message.target_partition)
            self._queues[message.target_partition].appendleft(message)
            self._pending_messages += 1
            instructions = _message_instructions(message)
            self._pending_instructions += instructions
            self._tally_tag(message, instructions)

    def release_partition(self, worker_id: int, partition_id: int) -> None:
        """Release ownership of a partition.

        Raises:
            OwnershipError: if the caller does not own the partition.
        """
        self._require_owner(worker_id, partition_id)
        del self._owners[partition_id]
        self._push_depth(partition_id)

    def release_all(self, worker_id: int) -> None:
        """Release every partition owned by a worker (park-time cleanup)."""
        owned = [pid for pid, wid in self._owners.items() if wid == worker_id]
        for pid in owned:
            del self._owners[pid]
            self._push_depth(pid)

    # -- migration support -------------------------------------------------------
    #
    # The quiesce/evict/adopt trio below is driven exclusively by the
    # migration protocol (:mod:`repro.placement.migration`); workers and
    # the router keep using the queue/ownership APIs above.

    def frozen_partitions(self) -> frozenset[int]:
        """Partitions currently quiesced for migration."""
        return frozenset(self._frozen)

    def freeze_partition(self, partition_id: int) -> None:
        """Quiesce a partition: deliveries continue, acquisition stops.

        A current owner keeps the partition until it releases normally
        (ownership is always released within the tick it was taken).
        """
        self._require_partition(partition_id)
        self._frozen.add(partition_id)

    def unfreeze_partition(self, partition_id: int) -> None:
        """Make a frozen partition acquirable again (aborted migration)."""
        self._require_partition(partition_id)
        self._frozen.discard(partition_id)
        self._push_depth(partition_id)

    def evict_partition(self, partition_id: int) -> list[Message]:
        """Remove a partition from this hub, returning its queued messages.

        The partition must be unowned (quiesced).  Its messages leave the
        pending accounting — the caller ships them to the new home socket
        through the router, so they are in transit, not lost.

        Raises:
            OwnershipError: while a worker still owns the partition.
        """
        self._require_partition(partition_id)
        owner = self._owners.get(partition_id)
        if owner is not None:
            raise OwnershipError(
                f"cannot evict partition {partition_id}: owned by worker "
                f"{owner}"
            )
        messages = list(self._queues.pop(partition_id))
        for message in messages:
            instructions = _message_instructions(message)
            self._pending_instructions -= instructions
            self._tally_tag(message, -instructions)
        self._pending_messages -= len(messages)
        if not self._pending_messages:
            self._pending_instructions = 0.0  # kill float drift at empty
            self._pending_by_tag.clear()
        self._frozen.discard(partition_id)
        self._order.pop(partition_id, None)
        # _entry_gen is kept on purpose: stale heap entries of the evicted
        # partition must never collide with generations pushed after a
        # later re-adoption, so the counter survives residency gaps.
        return messages

    def adopt_partition(self, partition_id: int) -> None:
        """Home a migrated partition on this socket.

        The partition arrives with an empty queue; its shipped messages
        follow through the normal inter-socket transfer path and enqueue
        on delivery.

        Raises:
            MessagingError: if the partition is already homed here.
        """
        if partition_id in self._queues:
            raise MessagingError(
                f"partition {partition_id} is already on socket "
                f"{self.socket_id}"
            )
        self._queues[partition_id] = deque()
        self._order[partition_id] = self._next_order
        self._next_order += 1

    def _require_partition(self, partition_id: int) -> None:
        if partition_id not in self._queues:
            raise MessagingError(
                f"partition {partition_id} is not on socket {self.socket_id}"
            )

    def _require_owner(self, worker_id: int, partition_id: int) -> None:
        self._require_partition(partition_id)
        owner = self._owners.get(partition_id)
        if owner != worker_id:
            raise OwnershipError(
                f"worker {worker_id} does not own partition {partition_id} "
                f"(owner: {owner})"
            )
