"""Query arrival generation from a (workload, load profile) pair.

Arrivals are deterministic-rate by default: the generator integrates the
instantaneous query rate and emits a query whenever the accumulated
expectation crosses 1.  ``poisson=True`` switches to Poisson per-tick
counts on top of the same rate curve (for tail-latency studies); both
modes are reproducible for a fixed seed.

Arrival *counts* are pre-drawn in blocks of :data:`BLOCK_TICKS` ticks:
one vectorized rate evaluation (``LoadProfile.fraction_array``) and one
vectorized count draw per block replace the per-tick rate lookup and RNG
call.  Ticks with a zero pre-drawn count return immediately without
touching the RNG or the profile, and the macro-stepping runner uses
:meth:`LoadGenerator.zero_arrival_run` to skip them wholesale.  Blocks
are materialized strictly in tick order, and a block is only pre-drawn
once every query of the preceding blocks has been constructed — so the
RNG stream is consumed in the same order whether the runner visits every
tick or leaps over the empty ones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.dbms.queries import Query
from repro.loadprofiles.base import LoadProfile
from repro.storage.partition import PartitionMap
from repro.workloads.base import Workload

#: Ticks per pre-drawn arrival-count block (8.2 simulated seconds at the
#: default 2 ms tick): large enough to amortize the vectorized draws,
#: small enough that a workload switch wastes little pre-drawn state.
BLOCK_TICKS = 4096


class LoadGenerator:
    """Generates query arrivals tick by tick."""

    def __init__(
        self,
        workload: Workload,
        profile: LoadProfile,
        partitions: PartitionMap,
        seed: int = 0,
        poisson: bool = False,
        real_mode: bool = False,
        use_banks: bool = False,
    ):
        self._workload = workload
        self.profile = profile
        self.partitions = partitions
        self.poisson = poisson
        self.real_mode = real_mode
        #: Ask the workload for columnar QueryBank arrivals before falling
        #: back to per-object batches (the vectorized message plane).
        self.use_banks = use_banks
        self._rng = np.random.default_rng(seed)
        self.generated_count = 0
        # Tick-grid anchor and pre-drawn count blocks.  The grid is
        # established lazily by the first arrivals() call and re-anchored
        # whenever the caller leaves it (different dt, off-grid time, or
        # going backwards) or the workload changes mid-run.
        self._anchor_t0: float | None = None
        self._anchor_dt: float = 0.0
        self._blocks: list[np.ndarray] = []
        self._carry = 0.0  # deterministic-mode expectation carry, in [0, 1)

    @property
    def workload(self) -> Workload:
        return self._workload

    @workload.setter
    def workload(self, workload: Workload) -> None:
        # Pre-drawn counts embed the old workload's rate curve; drop them
        # and re-anchor at the next arrivals() call.  Both simulation
        # modes switch workloads on the same tick (a workload switch is a
        # macro-step horizon event), so they discard identical state and
        # the RNG stream stays aligned.
        self._workload = workload
        self._anchor_t0 = None
        self._blocks = []
        self._carry = 0.0

    def rate_qps(self, t_s: float) -> float:
        """Instantaneous query rate at time ``t_s``."""
        return self._workload.queries_per_second(self.profile.fraction(t_s))

    # -- pre-drawn count blocks ---------------------------------------------

    def _anchor(self, t_s: float, dt_s: float) -> None:
        self._anchor_t0 = t_s
        self._anchor_dt = dt_s
        self._blocks = []
        self._carry = 0.0

    def _tick_index(self, t_s: float, dt_s: float) -> int:
        """Map a call time onto the anchored grid, re-anchoring if off it."""
        if self._anchor_t0 is None or dt_s != self._anchor_dt:
            self._anchor(t_s, dt_s)
            return 0
        k = int(round((t_s - self._anchor_t0) / dt_s))
        if k < 0 or abs(t_s - (self._anchor_t0 + k * dt_s)) > 0.25 * dt_s:
            self._anchor(t_s, dt_s)
            return 0
        return k

    def _materialize_through(self, block: int) -> None:
        """Pre-draw count blocks up to and including ``block``, in order."""
        counts_array = getattr(self.profile, "counts_array", None)
        while len(self._blocks) <= block:
            b = len(self._blocks)
            start = b * BLOCK_TICKS
            if counts_array is not None and not self.poisson:
                # Replay profiles carry exact per-tick counts: histogram
                # the recorded arrivals straight onto the tick grid.  No
                # expectation carry and no RNG draw, so the replayed
                # count stream is independent of stepping mode and of
                # the workload's rate scaling.
                self._blocks.append(
                    counts_array(
                        self._anchor_t0, self._anchor_dt, start, BLOCK_TICKS
                    )
                )
                continue
            # Rates are sampled at ideal mid-tick grid points; the runner's
            # folded clock drifts well under dt/4 from this grid, so the
            # sample points match the per-tick midpoints to float rounding.
            mids = self._anchor_t0 + (
                np.arange(start, start + BLOCK_TICKS, dtype=np.float64) + 0.5
            ) * self._anchor_dt
            fractions = self.profile.fraction_array(mids)
            expected = np.zeros(BLOCK_TICKS, dtype=np.float64)
            nonzero = fractions > 0.0
            if np.any(nonzero):
                expected[nonzero] = (
                    self._workload.queries_per_second_array(fractions[nonzero])
                    * self._anchor_dt
                )
            counts = np.zeros(BLOCK_TICKS, dtype=np.int64)
            if self.poisson:
                if np.any(nonzero):
                    counts[nonzero] = self._rng.poisson(expected[nonzero])
            else:
                cum = self._carry + np.cumsum(expected)
                floors = np.floor(cum)
                counts = np.diff(floors, prepend=0.0).astype(np.int64)
                self._carry = float(cum[-1] - floors[-1])
            self._blocks.append(counts)

    def _count_at(self, k: int) -> int:
        block = k // BLOCK_TICKS
        self._materialize_through(block)
        return int(self._blocks[block][k - block * BLOCK_TICKS])

    def zero_arrival_run(self, t_s: float, dt_s: float, max_ticks: int) -> int:
        """Consecutive zero-arrival ticks starting at the tick of ``t_s``.

        Capped at ``max_ticks``.  Only pre-draws a further block when every
        remaining tick of the current one is empty — exactly the point at
        which the per-tick path would pre-draw it — so calling this never
        perturbs the RNG stream relative to visiting each tick.
        """
        if max_ticks <= 0:
            return 0
        if self._anchor_t0 is None or dt_s != self._anchor_dt:
            return 0
        start = self._tick_index(t_s, dt_s)
        k = start
        limit = start + max_ticks
        while k < limit:
            block = k // BLOCK_TICKS
            self._materialize_through(block)
            lo = k - block * BLOCK_TICKS
            hi = min(BLOCK_TICKS, limit - block * BLOCK_TICKS)
            nonzero = np.nonzero(self._blocks[block][lo:hi])[0]
            if nonzero.size:
                return k + int(nonzero[0]) - start
            k = block * BLOCK_TICKS + hi
        return max_ticks

    # -- per-tick API --------------------------------------------------------

    def arrivals(self, t_s: float, dt_s: float):
        """Queries arriving within ``[t_s, t_s + dt_s)``.

        Returns either a ``list[Query]`` or, with ``use_banks`` set and a
        workload that supports it, a columnar
        :class:`~repro.dbms.querybank.QueryBank` covering the same
        arrivals (same ids, costs, and rng draws).

        Raises:
            SimulationError: on a non-positive tick.
        """
        if dt_s <= 0:
            raise SimulationError(f"tick must be > 0, got {dt_s}")
        count = self._count_at(self._tick_index(t_s, dt_s))
        if count <= 0:
            return []
        arrival_times = [t_s + dt_s * (i + 0.5) / count for i in range(count)]
        if self.real_mode:
            queries = [
                self._workload.make_real_query(self._rng, arrival, self.partitions)
                for arrival in arrival_times
            ]
        else:
            if self.use_banks:
                bank = self._workload.make_modeled_bank(
                    self._rng, arrival_times, self.partitions
                )
                if bank is not None:
                    self.generated_count += count
                    return bank
            queries = self._workload.make_modeled_batch(
                self._rng, arrival_times, self.partitions
            )
        self.generated_count += count
        return queries
