"""Extension study: a transaction-oriented architecture workload (§5.3).

The paper restricts the ECL to the data-oriented architecture and lists
two reasons transaction-oriented systems need more research:

1. **spinlocks** "often occur and tamper with our performance metric
   (instructions retired)" — waiting threads spin at full IPC, so the
   counters overreport useful work;
2. cross-socket interference causes highly frequent profile adaptations.

This module models such a system: TATP-style transactions executed under
a conventional lock manager with a centralized latch (the classic
transaction-oriented bottleneck).  Its characteristics carry both the
latch contention *and* ``spinlock_retirement`` — which makes the
hardware instruction counters lie to the ECL.  The extension benchmark
shows the consequence: profiles built from runtime counters rank
contended all-core configurations far too high.
"""

from __future__ import annotations

import numpy as np

from repro.dbms.queries import Query
from repro.hardware.perfmodel import WorkloadCharacteristics
from repro.storage.partition import PartitionMap
from repro.workloads.base import Workload, WorkloadVariant
from repro.workloads.tatp import TatpWorkload

TRANSACTION_ORIENTED_CHARACTERISTICS = WorkloadCharacteristics(
    name="tatp-transaction-oriented",
    base_cpi=0.80,
    ht_speedup=1.15,
    bytes_per_instr=0.35,
    miss_rate=0.003,
    # The centralized lock-manager latch: one contended acquisition per
    # ~400 transaction instructions.
    atomic_ops_per_instr=1.0 / 400.0,
    atomic_local_ns=60.0,
    contention_queue_factor=0.20,
    spinlock_retirement=True,
)


class TransactionOrientedTatpWorkload(Workload):
    """TATP executed by a (simulated) transaction-oriented engine.

    Transactions are not partition-bound: each one latches the shared
    lock table, so every query message carries the contended-latch
    characteristics above.  The modeled per-transaction cost reuses the
    indexed TATP operator mix.
    """

    def __init__(self, transactions_per_query: int = 20_000):
        super().__init__(WorkloadVariant.INDEXED)
        if transactions_per_query < 1:
            raise ValueError(
                f"transactions_per_query must be >= 1, got {transactions_per_query}"
            )
        self.transactions_per_query = transactions_per_query
        self._tatp = TatpWorkload(
            WorkloadVariant.INDEXED,
            transactions_per_query=transactions_per_query,
        )

    @property
    def name(self) -> str:
        return "tatp-toa"

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return TRANSACTION_ORIENTED_CHARACTERISTICS

    @property
    def nominal_peak_qps(self) -> float:
        # The latch serializes the system far below the data-oriented
        # throughput; calibrated to the contention cap of the §5.3 model.
        return 700.0 * (20_000 / self.transactions_per_query)

    def make_modeled_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """A batch of transactions, fanned like the TATP equivalent."""
        return self._tatp.make_modeled_query(rng, arrival_s, partitions)

    def setup_real(
        self, partitions: PartitionMap, scale: int, rng: np.random.Generator
    ) -> None:
        """Same TATP schema and data as the data-oriented variant."""
        self._tatp.setup_real(partitions, scale, rng)

    def make_real_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """One real TATP transaction (the storage layer is identical)."""
        return self._tatp.make_real_query(rng, arrival_s, partitions)
