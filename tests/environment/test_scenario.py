"""Tests for the Environment bundle, its registry, and the presets."""

import pytest

from repro.environment import (
    ConstantSignal,
    Environment,
    StepSignal,
    get_environment,
    make_environment,
    register_environment,
    registered_environments,
    unregister_environment,
)
from repro.environment.scenario import (
    DIURNAL_CARBON_HOURLY,
    FLAT_CARBON_G_PER_KWH,
    FLAT_PRICE_USD_PER_KWH,
    PRICE_PEAK_HOURLY,
    hourly_day_signal,
)
from repro.errors import SimulationError


class TestEnvironment:
    def test_pue_must_be_at_least_one(self):
        with pytest.raises(SimulationError):
            Environment(
                name="bad",
                carbon=ConstantSignal(400.0),
                price=ConstantSignal(0.1),
                pue=0.9,
            )

    def test_next_change_is_earliest_across_signals(self):
        env = Environment(
            name="e",
            carbon=StepSignal([(0.0, 1.0), (10.0, 2.0)]),
            price=StepSignal([(0.0, 1.0), (4.0, 2.0)]),
        )
        assert env.next_change_s(0.0) == 4.0
        assert env.next_change_s(4.0) == 10.0
        assert env.next_change_s(10.0) == float("inf")


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_environments()
        for name in ("flat", "diurnal-carbon", "price-peak"):
            assert name in names

    def test_roundtrip(self):
        register_environment(
            "test-env",
            lambda duration_s: Environment(
                name="test-env",
                carbon=ConstantSignal(100.0),
                price=ConstantSignal(0.01),
            ),
            description="for this test",
        )
        try:
            assert "test-env" in registered_environments()
            env = make_environment("test-env", 10.0)
            assert env.carbon.value(0.0) == 100.0
        finally:
            unregister_environment("test-env")
        assert "test-env" not in registered_environments()

    def test_duplicate_rejected(self):
        with pytest.raises(SimulationError):
            register_environment("flat", lambda duration_s: None)

    def test_unknown_name(self):
        with pytest.raises(SimulationError) as err:
            get_environment("mars")
        assert "flat" in str(err.value)  # message lists registrations

    def test_unregister_unknown(self):
        with pytest.raises(SimulationError):
            unregister_environment("mars")

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SimulationError):
            make_environment("flat", 0.0)


class TestPresets:
    def test_flat_is_constant(self):
        env = make_environment("flat", 100.0)
        assert env.carbon.value(0.0) == FLAT_CARBON_G_PER_KWH
        assert env.carbon.value(99.0) == FLAT_CARBON_G_PER_KWH
        assert env.price.value(50.0) == FLAT_PRICE_USD_PER_KWH
        assert env.next_change_s(0.0) == float("inf")
        assert env.pue >= 1.0

    def test_diurnal_carbon_matches_hourly_table(self):
        duration = 24.0  # 1 simulated second per modeled hour
        env = make_environment("diurnal-carbon", duration)
        for hour, level in enumerate(DIURNAL_CARBON_HOURLY):
            assert env.carbon.value(hour + 0.5) == float(level)
        # Flat price: the preset varies exactly one axis.
        assert env.price.value(0.0) == FLAT_PRICE_USD_PER_KWH
        assert env.price.next_change_s(0.0) == float("inf")

    def test_diurnal_mean_matches_flat_level(self):
        """The flat control and the diurnal curve must share the daily
        mean, so flat-vs-diurnal ablations compare equal totals under
        constant power."""
        assert sum(DIURNAL_CARBON_HOURLY) / 24.0 == pytest.approx(
            FLAT_CARBON_G_PER_KWH, rel=0.01
        )

    def test_price_peak_surges_in_the_evening(self):
        env = make_environment("price-peak", 24.0)
        assert env.price.value(18.5) == max(PRICE_PEAK_HOURLY)
        assert env.price.value(2.5) == min(PRICE_PEAK_HOURLY)
        assert env.carbon.next_change_s(0.0) == float("inf")

    def test_presets_scale_to_any_duration(self):
        short = make_environment("diurnal-carbon", 20.0)
        # Hour 13 (the solar trough) maps to [13/24, 14/24) of the run.
        t = 13.5 / 24.0 * 20.0
        assert short.carbon.value(t) == float(DIURNAL_CARBON_HOURLY[13])


class TestHourlyDaySignal:
    def test_hour_boundaries(self):
        hourly = tuple(float(h) for h in range(24))
        sig = hourly_day_signal(hourly, duration_s=48.0, name="hours")
        # Hour h covers [2h, 2h+2) seconds when the day is 48 s.
        assert sig.value(0.0) == 0.0
        assert sig.value(1.999) == 0.0
        assert sig.value(2.0) == 1.0
        assert sig.value(47.0) == 23.0
        assert sig.next_change_s(0.0) == 2.0

    def test_requires_24_entries(self):
        with pytest.raises(SimulationError):
            hourly_day_signal((1.0, 2.0), duration_s=24.0, name="short")
