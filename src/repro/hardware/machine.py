"""The :class:`Machine` facade — the simulated server as one object.

A ``Machine`` owns the topology, clock domains, C-state tracker, power and
performance models, and the RAPL / instruction counters.  Everything the
DBMS runtime and the ECL do to "hardware" goes through this facade:

* the DBMS reports per-socket demand via :meth:`Machine.set_socket_load`,
* the ECL applies hardware configurations via the frequency / C-state
  setters (or :meth:`repro.profiles.configuration.Configuration.apply`),
* the simulation advances via :meth:`Machine.step`, which resolves the
  performance model, burns energy into the RAPL counters, and retires
  instructions into the performance counters.

The machine is deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.counters import CounterReading, InstructionCounter
from repro.hardware.cstates import CState, CStateModel
from repro.hardware.frequency import EnergyPerformanceBias, FrequencyDomains
from repro.hardware.perfmodel import (
    ActiveCore,
    PerformanceModel,
    SocketLoad,
    SocketPerformance,
    WorkloadCharacteristics,
)
from repro.hardware.power import CorePowerState, PowerBreakdown, PowerModel
from repro.hardware.presets import HaswellEPParameters, haswell_ep_two_socket
from repro.hardware.rapl import RaplCounter, RaplDomain, RaplReading
from repro.hardware.topology import Topology

#: Placeholder characteristics for a socket with no assigned workload.
IDLE_CHARACTERISTICS = WorkloadCharacteristics(name="idle", base_cpi=1.0)


@dataclass(frozen=True)
class SocketStepResult:
    """Outcome of one simulation step for a single socket."""

    performance: SocketPerformance
    power: PowerBreakdown
    executed_instructions: float
    uncore_ghz: float
    uncore_halted: bool


@dataclass(frozen=True)
class StepResult:
    """Outcome of one :meth:`Machine.step` call."""

    time_s: float
    dt_s: float
    sockets: Mapping[int, SocketStepResult]
    psu_power_w: float

    @property
    def rapl_power_w(self) -> float:
        """Total power visible to RAPL across all sockets."""
        return sum(s.power.socket_total_w for s in self.sockets.values())


@dataclass(frozen=True)
class MachineState:
    """Introspection snapshot of the machine's control state."""

    time_s: float
    active_threads: frozenset[int]
    core_frequencies_ghz: Mapping[tuple[int, int], float]
    uncore_frequencies_ghz: Mapping[int, float]
    uncore_halted: Mapping[int, bool]


class Machine:
    """Simulated 2-socket NUMA server (see module docstring)."""

    def __init__(
        self,
        params: HaswellEPParameters | None = None,
        seed: int = 0,
    ):
        self.params = params if params is not None else haswell_ep_two_socket()
        self.topology = Topology.build(
            self.params.socket_count,
            self.params.cores_per_socket,
            self.params.threads_per_core,
        )
        self.frequency = FrequencyDomains(self.topology, self.params)
        self.cstates = CStateModel(self.topology, self.params)
        self.power_model = PowerModel(self.topology, self.params)
        self.perf_model = PerformanceModel(self.topology, self.params)

        rng = np.random.default_rng(seed)
        self._rapl: dict[tuple[int, RaplDomain], RaplCounter] = {}
        self._instructions: dict[int, InstructionCounter] = {}
        for sock in self.topology.sockets:
            for domain in RaplDomain:
                child = np.random.default_rng(rng.integers(0, 2**63))
                self._rapl[(sock.socket_id, domain)] = RaplCounter(
                    self.params, domain, child
                )
            self._instructions[sock.socket_id] = InstructionCounter()

        self._loads: dict[int, SocketLoad] = {
            sock.socket_id: SocketLoad(
                characteristics=IDLE_CHARACTERISTICS, demand_instructions_per_s=0.0
            )
            for sock in self.topology.sockets
        }
        self._time_s = 0.0
        self._last_step: StepResult | None = None
        #: Remaining above-TDP headroom per socket (thermal throttling).
        self._thermal_credit_s: dict[int, float] = {
            sock.socket_id: self.params.thermal_budget_s
            for sock in self.topology.sockets
        }
        self._throttled: dict[int, bool] = {
            sock.socket_id: False for sock in self.topology.sockets
        }

    # -- time ---------------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Current simulation time."""
        return self._time_s

    @property
    def last_step(self) -> StepResult | None:
        """Result of the most recent :meth:`step` call (None before any)."""
        return self._last_step

    # -- load ---------------------------------------------------------------

    def set_socket_load(self, socket_id: int, load: SocketLoad) -> None:
        """Declare the demand a socket faces until changed again."""
        if socket_id not in self._loads:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        self._loads[socket_id] = load

    def socket_load(self, socket_id: int) -> SocketLoad:
        """The load currently declared for a socket."""
        if socket_id not in self._loads:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        return self._loads[socket_id]

    def set_idle(self, socket_id: int) -> None:
        """Clear a socket's demand."""
        self.set_socket_load(
            socket_id,
            SocketLoad(
                characteristics=IDLE_CHARACTERISTICS, demand_instructions_per_s=0.0
            ),
        )

    # -- configuration shortcuts ------------------------------------------------

    def apply_socket_threads(
        self, socket_id: int, active_thread_ids: frozenset[int] | set[int]
    ) -> None:
        """Set exactly this active-thread set on one socket.

        Threads of other sockets are left untouched.  Notifies the RAPL
        counters that a reconfiguration happened (transient read noise).
        """
        own = set(self.topology.threads_on_socket(socket_id))
        foreign = set(active_thread_ids) - own
        if foreign:
            raise ConfigurationError(
                f"threads {sorted(foreign)} do not belong to socket {socket_id}"
            )
        keep = {
            tid
            for tid in self.cstates.active_threads
            if self.topology.socket_of(tid) != socket_id
        }
        self.cstates.set_active_threads(keep | set(active_thread_ids))
        self._note_switch(socket_id)

    def set_epb_all(self, bias: EnergyPerformanceBias) -> None:
        """Set the EPB of every hardware thread."""
        self.frequency.set_epb_all(bias)

    def _note_switch(self, socket_id: int) -> None:
        for domain in RaplDomain:
            self._rapl[(socket_id, domain)].note_configuration_switch(self._time_s)

    def note_configuration_switch(self, socket_id: int) -> None:
        """Record an external reconfiguration (frequency changes etc.)."""
        self._note_switch(socket_id)

    # -- counters ---------------------------------------------------------------

    def read_rapl(self, socket_id: int, domain: RaplDomain) -> RaplReading:
        """Read a RAPL counter (published value — lagged, quantized, noisy)."""
        key = (socket_id, domain)
        if key not in self._rapl:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        return self._rapl[key].read()

    def rapl_counter(self, socket_id: int, domain: RaplDomain) -> RaplCounter:
        """Direct access to a RAPL counter object (for windowed helpers)."""
        key = (socket_id, domain)
        if key not in self._rapl:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        return self._rapl[key]

    def read_instructions(self, socket_id: int) -> CounterReading:
        """Read a socket's instructions-retired counter."""
        if socket_id not in self._instructions:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        return self._instructions[socket_id].read()

    def true_socket_energy_j(self, socket_id: int) -> float:
        """Ground-truth package+DRAM energy of a socket (for evaluation)."""
        return (
            self._rapl[(socket_id, RaplDomain.PACKAGE)].true_energy_j
            + self._rapl[(socket_id, RaplDomain.DRAM)].true_energy_j
        )

    def true_total_energy_j(self) -> float:
        """Ground-truth energy across all sockets (RAPL-visible domains)."""
        return sum(
            self.true_socket_energy_j(s.socket_id) for s in self.topology.sockets
        )

    # -- stepping ----------------------------------------------------------------

    def thermally_throttled(self, socket_id: int) -> bool:
        """Whether the socket currently caps turbo at the nominal clock."""
        return self._throttled[socket_id]

    def thermal_credit_s(self, socket_id: int) -> float:
        """Remaining above-TDP operation budget of a socket."""
        return self._thermal_credit_s[socket_id]

    def _active_cores(self, socket_id: int) -> list[ActiveCore]:
        """Active physical cores of a socket with their effective clocks.

        Thermal throttling caps turbo-clocked cores at the nominal
        frequency once the socket's above-TDP budget is exhausted (the
        paper's 500 W turbo peak "can only endure for about 1 s").
        """
        cores = []
        socket = self.topology.socket(socket_id)
        active = set(self.cstates.active_threads_on_socket(socket_id))
        nominal = self.params.core_nominal_ghz
        for core in socket.cores:
            siblings = [tid for tid in core.thread_ids() if tid in active]
            if not siblings:
                continue
            freq = self.frequency.effective_core_frequency(
                socket_id, core.core_id, self._time_s
            )
            if self._throttled[socket_id] and freq > nominal:
                freq = nominal
            cores.append(
                ActiveCore(
                    socket_id=socket_id,
                    core_id=core.core_id,
                    frequency_ghz=freq,
                    sibling_count=len(siblings),
                )
            )
        return cores

    def resolve_uncore(self, socket_id: int) -> tuple[float, bool]:
        """Effective (uncore frequency, halted) of a socket right now."""
        has_active = not self.cstates.socket_is_idle(socket_id)
        freq = self.frequency.effective_uncore_frequency(socket_id, has_active)
        halted = self.cstates.uncore_may_halt(socket_id)
        return freq, halted

    def step(self, dt_s: float) -> StepResult:
        """Advance the machine by ``dt_s`` seconds.

        Resolves performance for every socket under its declared load,
        accumulates RAPL energy and retired instructions, and returns the
        step outcome.
        """
        if dt_s <= 0:
            raise ConfigurationError(f"step duration must be > 0, got {dt_s}")

        breakdowns: dict[int, PowerBreakdown] = {}
        socket_results: dict[int, SocketStepResult] = {}
        new_time = self._time_s + dt_s

        for sock in self.topology.sockets:
            sid = sock.socket_id
            load = self._loads[sid]
            active_cores = self._active_cores(sid)
            uncore_ghz, uncore_halted = self.resolve_uncore(sid)

            perf = self.perf_model.resolve(active_cores, uncore_ghz, load)
            parallel = self.perf_model.parallel_throughput_ips(
                active_cores, uncore_ghz, load.characteristics
            )
            socket_scale = 0.0 if parallel <= 0 else perf.executed_ips / parallel

            core_states = []
            for core in active_cores:
                activity = self.perf_model.core_activity(
                    core, uncore_ghz, load.characteristics, socket_scale
                )
                core_states.append(
                    CorePowerState(
                        frequency_ghz=core.frequency_ghz,
                        active_sibling_count=core.sibling_count,
                        activity=activity,
                    )
                )
            # Shallow-parked (C1) cores draw a residual.
            for core in sock.cores:
                state = self.cstates.core_state(sid, core.core_id)
                if state is CState.C1:
                    freq = self.frequency.effective_core_frequency(
                        sid, core.core_id, self._time_s
                    )
                    core_states.append(
                        CorePowerState(
                            frequency_ghz=freq,
                            active_sibling_count=0,
                            shallow=True,
                        )
                    )

            power = self.power_model.socket_power(
                socket_id=sid,
                core_states=core_states,
                uncore_ghz=uncore_ghz,
                uncore_halted=uncore_halted,
                traffic_gbs=perf.traffic_gbs,
            )
            breakdowns[sid] = power

            executed = perf.executed_ips * dt_s
            # The counters see *retired* instructions — inflated by latch
            # spinning for transaction-oriented workloads (section 5.3).
            self._instructions[sid].accumulate(perf.retired_ips * dt_s, new_time)
            self._rapl[(sid, RaplDomain.PACKAGE)].accumulate(
                power.package_w, dt_s, new_time
            )
            self._rapl[(sid, RaplDomain.DRAM)].accumulate(
                power.dram_w, dt_s, new_time
            )

            # Thermal bookkeeping: above-TDP operation drains the budget,
            # below-TDP operation slowly restores it.
            p = self.params
            credit = self._thermal_credit_s[sid]
            if power.package_w > p.tdp_w:
                credit -= dt_s
                if credit <= 0.0:
                    credit = 0.0
                    self._throttled[sid] = True
            else:
                credit = min(
                    p.thermal_budget_s,
                    credit + p.thermal_recovery_rate * dt_s,
                )
                if credit >= 0.5 * p.thermal_budget_s:
                    self._throttled[sid] = False
            self._thermal_credit_s[sid] = credit

            socket_results[sid] = SocketStepResult(
                performance=perf,
                power=power,
                executed_instructions=executed,
                uncore_ghz=uncore_ghz,
                uncore_halted=uncore_halted,
            )

        psu = self.power_model.psu_power(breakdowns)
        self._time_s = new_time
        result = StepResult(
            time_s=new_time, dt_s=dt_s, sockets=socket_results, psu_power_w=psu
        )
        self._last_step = result
        return result

    # -- introspection ---------------------------------------------------------

    def state(self) -> MachineState:
        """Snapshot the control state (frequencies, active threads)."""
        core_freqs = {}
        uncore_freqs = {}
        uncore_halted = {}
        for sock in self.topology.sockets:
            sid = sock.socket_id
            for core in sock.cores:
                core_freqs[(sid, core.core_id)] = (
                    self.frequency.effective_core_frequency(
                        sid, core.core_id, self._time_s
                    )
                )
            freq, halted = self.resolve_uncore(sid)
            uncore_freqs[sid] = freq
            uncore_halted[sid] = halted
        return MachineState(
            time_s=self._time_s,
            active_threads=self.cstates.active_threads,
            core_frequencies_ghz=core_freqs,
            uncore_frequencies_ghz=uncore_freqs,
            uncore_halted=uncore_halted,
        )
