"""Observer hooks over the runner's phased tick pipeline.

The :class:`~repro.sim.runner.SimulationRunner` advances each tick
through five explicit phases::

    arrivals -> control -> engine step -> completions -> sampling

Instrumentation and scripted events attach to those phases as
*observers* instead of inline special cases in the loop.  The two
built-ins are exactly the features that used to be hardcoded:

* :class:`SamplingObserver` — emits the periodic
  :class:`~repro.sim.metrics.SamplePoint` time series, asking the
  control policy for its per-sample annotations;
* :class:`WorkloadSwitchObserver` — the §6.3 profile-adaptation event:
  at ``switch_at_s`` the load generator and the engine's declared
  characteristics flip to another workload.

Custom observers (tracing, extra metrics, fault injection, live
plotting) subclass :class:`RunObserver`, override any subset of hooks,
and are passed to ``SimulationRunner(config, observers=[...])``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.sim.clock import OneShotDeadline, PeriodicDeadline
from repro.sim.metrics import RunResult, SamplePoint

if TYPE_CHECKING:
    from repro.dbms.engine import EngineTickResult
    from repro.dbms.queries import Query, QueryCompletion
    from repro.sim.runner import SimulationRunner
    from repro.workloads.base import Workload


class RunObserver:
    """No-op base class: override the hooks a concrete observer needs.

    Hook order within one tick mirrors the pipeline phases; ``now_s`` is
    always the simulation time at the *start* of the tick.
    """

    #: Component label used by span-cut attribution when this observer's
    #: horizon bounds or refuses a macro span (see :mod:`repro.sim.macro`).
    macro_label = "observer"

    def on_run_start(self, runner: "SimulationRunner", result: RunResult) -> None:
        """Before the first tick; keep references, never mutate state."""

    def before_arrivals(self, now_s: float, dt_s: float) -> None:
        """Phase 1 entry — scripted events (e.g. workload switches)."""

    def on_arrival(self, now_s: float, query: "Query") -> None:
        """Phase 1: one query was submitted to the engine."""

    def after_arrivals(self, now_s: float, dt_s: float) -> None:
        """Phase 1 exit — this tick's arrivals are all submitted."""

    def after_control(self, now_s: float, dt_s: float) -> None:
        """Phase 2 exit — the policy has reconfigured the hardware."""

    def after_step(self, now_s: float, tick_result: "EngineTickResult") -> None:
        """Phase 3 exit — engine and machine advanced one tick."""

    def on_completion(
        self, now_s: float, completion: "QueryCompletion"
    ) -> None:
        """Phase 4: one query finished during this tick."""

    def after_completions(self, now_s: float) -> None:
        """Phase 4 exit — every completion of this tick is accounted."""

    def end_tick(self, now_s: float, tick_result: "EngineTickResult") -> None:
        """Phase 5 — sampling/accounting point at the end of the tick."""

    def on_run_end(self, result: RunResult) -> None:
        """After the last tick, once totals are final."""

    def macro_horizon_s(self, now_s: float) -> float | None:
        """How far the macro-stepping runner may leap past this observer.

        Returning a time ``H`` promises that every hook of this observer
        is a no-op for any tick starting strictly before ``H`` on which
        the simulation state does not change (no arrivals, completions,
        reconfigurations, or migrations — the runner separately
        guarantees those).  ``float("inf")`` means "always skippable
        under those conditions".  The default ``None`` declares the
        observer macro-unaware and disables span stepping while it is
        attached — per-tick semantics are always safe.
        """
        return None


class SamplingObserver(RunObserver):
    """Emits the periodic sample time series into the run result.

    The cadence is phase-anchored at t=0 (samples at 0, T, 2T, ... of
    *simulation* time), tolerant of non-divisible tick ratios via
    :class:`~repro.sim.clock.PeriodicDeadline`.
    """

    macro_label = "sampler"

    def __init__(self, sample_every_s: float):
        self._deadline = PeriodicDeadline(sample_every_s, first_due_s=0.0)
        self._runner: "SimulationRunner | None" = None
        self._result: RunResult | None = None

    def on_run_start(self, runner: "SimulationRunner", result: RunResult) -> None:
        self._runner = runner
        self._result = result

    def end_tick(self, now_s: float, tick_result: "EngineTickResult") -> None:
        if not self._deadline.due(now_s):
            return
        self._deadline.advance()
        assert self._runner is not None and self._result is not None
        self._result.samples.append(self._sample(now_s, tick_result))

    def macro_horizon_s(self, now_s: float) -> float | None:
        # end_tick is a pure deadline check until the next sample is due.
        return self._deadline.next_due_s

    def _sample(
        self, now_s: float, tick_result: "EngineTickResult"
    ) -> SamplePoint:
        runner = self._runner
        assert runner is not None
        step = tick_result.step
        annotations = runner.policy.annotate_sample()
        return SamplePoint(
            time_s=now_s,
            load_qps=runner.loadgen.rate_qps(now_s),
            rapl_power_w=step.rapl_power_w,
            psu_power_w=step.psu_power_w,
            avg_latency_s=runner.engine.latency.average_latency_s(now_s),
            pending_messages=runner.engine.pending_messages(),
            in_flight_queries=runner.engine.tracker.in_flight,
            performance_levels=annotations.performance_levels,
            applied=annotations.applied,
        )


class WorkloadSwitchObserver(RunObserver):
    """Flips the running workload at a fixed time (§6.3 experiments).

    At the first tick at or after ``switch_at_s`` the load generator
    starts drawing queries from ``workload`` and the engine's declared
    workload characteristics follow; the control policy is *not*
    notified — discovering the change from its counters is the point of
    the adaptation experiment.
    """

    def __init__(self, switch_at_s: float, workload: "Workload"):
        self._deadline = OneShotDeadline(switch_at_s)
        self._workload = workload
        self._runner: "SimulationRunner | None" = None

    @property
    def switched(self) -> bool:
        """Whether the switch has already happened."""
        return self._deadline.fired

    def on_run_start(self, runner: "SimulationRunner", result: RunResult) -> None:
        self._runner = runner

    def before_arrivals(self, now_s: float, dt_s: float) -> None:
        if not self._deadline.poll(now_s):
            return
        runner = self._runner
        assert runner is not None
        runner.loadgen.workload = self._workload
        runner.engine.set_workload_characteristics(
            self._workload.characteristics
        )

    def macro_horizon_s(self, now_s: float) -> float | None:
        # Inert once fired; before that, the switch tick must run live —
        # it swaps the load generator's pre-drawn arrival blocks, and
        # both simulation modes must do so on the same tick.
        if self._deadline.fired:
            return float("inf")
        return self._deadline.at_s


class ObserverList:
    """Dispatches one pipeline hook to every observer, in order."""

    def __init__(self, observers: Sequence[RunObserver]):
        self._observers = tuple(observers)
        #: Whether any member overrides on_arrival.  The bank arrival path
        #: only materializes per-query views when someone is listening.
        self.wants_arrivals = any(
            type(obs).on_arrival is not RunObserver.on_arrival
            for obs in self._observers
        )

    def __iter__(self):
        return iter(self._observers)

    def on_run_start(self, runner: "SimulationRunner", result: RunResult) -> None:
        for obs in self._observers:
            obs.on_run_start(runner, result)

    def before_arrivals(self, now_s: float, dt_s: float) -> None:
        for obs in self._observers:
            obs.before_arrivals(now_s, dt_s)

    def on_arrival(self, now_s: float, query: "Query") -> None:
        for obs in self._observers:
            obs.on_arrival(now_s, query)

    def after_arrivals(self, now_s: float, dt_s: float) -> None:
        for obs in self._observers:
            obs.after_arrivals(now_s, dt_s)

    def after_control(self, now_s: float, dt_s: float) -> None:
        for obs in self._observers:
            obs.after_control(now_s, dt_s)

    def after_step(self, now_s: float, tick_result: "EngineTickResult") -> None:
        for obs in self._observers:
            obs.after_step(now_s, tick_result)

    def on_completion(
        self, now_s: float, completion: "QueryCompletion"
    ) -> None:
        for obs in self._observers:
            obs.on_completion(now_s, completion)

    def after_completions(self, now_s: float) -> None:
        for obs in self._observers:
            obs.after_completions(now_s)

    def end_tick(self, now_s: float, tick_result: "EngineTickResult") -> None:
        for obs in self._observers:
            obs.end_tick(now_s, tick_result)

    def on_run_end(self, result: RunResult) -> None:
        for obs in self._observers:
            obs.on_run_end(result)

    def macro_horizon_s(self, now_s: float) -> float | None:
        """Aggregate horizon: the tightest member horizon, None if any
        member is macro-unaware (which disables span stepping)."""
        return self.attributed_macro_horizon_s(now_s)[0]

    def attributed_macro_horizon_s(
        self, now_s: float
    ) -> tuple[float | None, str]:
        """Aggregate horizon plus the ``macro_label`` of the member that
        set it, for span-cut attribution.  ``(None, label)`` identifies
        the first macro-unaware member."""
        horizon = float("inf")
        label = "observer"
        for obs in self._observers:
            h = obs.macro_horizon_s(now_s)
            if h is None:
                return None, obs.macro_label
            if h < horizon:
                horizon = h
                label = obs.macro_label
        return horizon, label
