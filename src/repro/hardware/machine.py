"""The :class:`Machine` facade — the simulated server as one object.

A ``Machine`` owns the topology, clock domains, C-state tracker, power and
performance models, and the RAPL / instruction counters.  Everything the
DBMS runtime and the ECL do to "hardware" goes through this facade:

* the DBMS reports per-socket demand via :meth:`Machine.set_socket_load`,
* the ECL applies hardware configurations via the frequency / C-state
  setters (or :meth:`repro.profiles.configuration.Configuration.apply`),
* the simulation advances via :meth:`Machine.step`, which resolves the
  performance model, burns energy into the RAPL counters, and retires
  instructions into the performance counters.

The machine is deterministic for a fixed seed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec, NodePowerState
from repro.hardware.counters import (
    CounterReading,
    InstructionCounter,
    InstructionCounterBank,
)
from repro.hardware.cstates import CState, CStateModel
from repro.hardware.frequency import EnergyPerformanceBias, FrequencyDomains
from repro.hardware.perfmodel import (
    ActiveCore,
    PerformanceModel,
    SocketLoad,
    SocketPerformance,
    WorkloadCharacteristics,
)
from repro.hardware.power import CorePowerState, PowerBreakdown, PowerModel
from repro.hardware.presets import HaswellEPParameters, haswell_ep_two_socket
from repro.hardware.rapl import (
    RaplCounter,
    RaplCounterBank,
    RaplDomain,
    RaplReading,
)
from repro.hardware.topology import Topology

#: Placeholder characteristics for a socket with no assigned workload.
IDLE_CHARACTERISTICS = WorkloadCharacteristics(name="idle", base_cpi=1.0)

#: Resolution of a socket whose node is powered off or booting: no cores,
#: no work, no traffic.  Identical to the empty-``active_cores`` result of
#: :meth:`PerformanceModel.resolve`.
_DARK_PERFORMANCE = SocketPerformance(
    capacity_ips=0.0,
    executed_ips=0.0,
    traffic_gbs=0.0,
    utilization=0.0,
    bandwidth_limited=False,
    contention_limited=False,
    retired_ips=0.0,
)


@dataclass(frozen=True)
class SocketStepResult:
    """Outcome of one simulation step for a single socket."""

    performance: SocketPerformance
    power: PowerBreakdown
    executed_instructions: float
    uncore_ghz: float
    uncore_halted: bool


@dataclass(frozen=True)
class StepResult:
    """Outcome of one :meth:`Machine.step` call."""

    time_s: float
    dt_s: float
    sockets: Mapping[int, SocketStepResult]
    psu_power_w: float

    @property
    def rapl_power_w(self) -> float:
        """Total power visible to RAPL across all sockets."""
        return sum(s.power.socket_total_w for s in self.sockets.values())


@dataclass(frozen=True)
class _ConfigEntry:
    """Cached hardware view of one socket (configuration-dependent only)."""

    active_cores: tuple[ActiveCore, ...]
    uncore_ghz: float
    uncore_halted: bool
    c1_states: tuple[CorePowerState, ...]


@dataclass(frozen=True)
class _CapacityEntry:
    """Cached demand-independent performance resolution of one socket."""

    capacity_ips: float
    parallel_ips: float
    bandwidth_limited: bool
    contention_limited: bool
    compute_shares: tuple[float, ...]


@dataclass(frozen=True)
class _FullEntry:
    """Cached full (performance, power) resolution of one socket."""

    performance: SocketPerformance
    power: PowerBreakdown


def _lru_get(cache: OrderedDict, key):
    entry = cache.get(key)
    if entry is not None:
        cache.move_to_end(key)
    return entry


def _lru_put(cache: OrderedDict, key, value, maxsize: int) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > maxsize:
        cache.popitem(last=False)


@dataclass(frozen=True)
class MachineState:
    """Introspection snapshot of the machine's control state."""

    time_s: float
    active_threads: frozenset[int]
    core_frequencies_ghz: Mapping[tuple[int, int], float]
    uncore_frequencies_ghz: Mapping[int, float]
    uncore_halted: Mapping[int, bool]


class Machine:
    """Simulated NUMA server — or an N-node fleet of them.

    Without ``cluster`` this is the paper's single 2-socket box,
    bit-for-bit.  With a :class:`~repro.hardware.cluster.ClusterSpec`
    every node's sockets are concatenated onto one flat (node, socket)
    axis — global socket ids are node-major — so stepping an N-node
    fleet runs the very same per-socket loop as the 2-socket machine.
    Per-socket parameter sets make mixed wimpy/brawny fleets possible,
    and whole nodes can be powered off (residual wall draw) and on again
    (boot latency + boot power) via :meth:`power_off_node` /
    :meth:`power_on_node`.
    """

    def __init__(
        self,
        params: HaswellEPParameters | None = None,
        seed: int = 0,
        step_cache_size: int = 1024,
        cluster: ClusterSpec | None = None,
    ):
        self.cluster = cluster
        if cluster is None:
            self.params = params if params is not None else haswell_ep_two_socket()
            self.topology = Topology.build(
                self.params.socket_count,
                self.params.cores_per_socket,
                self.params.threads_per_core,
            )
            self._socket_params = tuple(
                self.params for _ in self.topology.sockets
            )
            self._socket_node = (0,) * len(self.topology.sockets)
            self._node_sockets = (
                tuple(s.socket_id for s in self.topology.sockets),
            )
            self.frequency = FrequencyDomains(self.topology, self.params)
            self.cstates = CStateModel(self.topology, self.params)
            self.power_model = PowerModel(self.topology, self.params)
            self.perf_model = PerformanceModel(self.topology, self.params)
        else:
            if params is not None:
                raise ConfigurationError(
                    "pass either params or cluster to Machine, not both"
                )
            self.params = cluster.nodes[0].params
            self.topology = Topology.build(
                cluster.total_sockets,
                cluster.cores_per_socket(),
                cluster.nodes[0].params.threads_per_core,
            )
            self._socket_params = cluster.socket_params()
            self._socket_node = cluster.socket_node_map()
            self._node_sockets = cluster.node_socket_ids()
            self.frequency = FrequencyDomains(
                self.topology, self.params, self._socket_params
            )
            self.cstates = CStateModel(
                self.topology, self.params, self._socket_node
            )
            self.power_model = PowerModel(
                self.topology,
                self.params,
                self._socket_params,
                self._socket_node,
            )
            self.perf_model = PerformanceModel(
                self.topology, self.params, self._socket_params
            )

        #: Node power states: every node starts ON.  ``cluster=None``
        #: machines are one always-ON node and never transition.
        self._node_state: list[NodePowerState] = [
            NodePowerState.ON for _ in self._node_sockets
        ]
        self._node_boot_until: list[float] = [
            float("-inf") for _ in self._node_sockets
        ]
        #: BOOTING nodes and their deadlines — the O(1) index behind
        #: :meth:`settle_node_power` / :meth:`next_internal_event_s`.
        self._booting: dict[int, float] = {}
        #: Monotonic counter bumped on every node power transition
        #: (telemetry watches it the way it watches frequency versions).
        self.node_power_version = 0
        #: Per-socket power breakdowns while the owning node is OFF or
        #: BOOTING: the node-level residual/boot wattage split evenly
        #: over the node's sockets and charged as RAPL *package* power.
        self._dark_power: dict[tuple[int, NodePowerState], PowerBreakdown] = {}
        if cluster is not None:
            for node_index, node in enumerate(cluster.nodes):
                count = len(self._node_sockets[node_index])
                for state, watts in (
                    (NodePowerState.OFF, node.off_residual_w),
                    (NodePowerState.BOOTING, node.boot_power_w),
                ):
                    share = watts / count
                    for sid in self._node_sockets[node_index]:
                        self._dark_power[(sid, state)] = PowerBreakdown(
                            cores_w=0.0,
                            uncore_w=0.0,
                            package_w=share,
                            dram_w=0.0,
                        )

        #: Node-major struct-of-arrays buffers: every per-socket scalar
        #: the hot step path folds — counter state, per-tick powers,
        #: thermal credit — lives at index ``socket_id`` of a numpy
        #: array (global socket ids are node-major), so a fleet tick is
        #: one vectorized pass over the socket axis instead of N
        #: per-socket Python loops.
        socket_count = len(self.topology.sockets)
        self._socket_count = socket_count
        self._socket_ids = tuple(s.socket_id for s in self.topology.sockets)
        params_by_sid = [self._socket_params[sid] for sid in self._socket_ids]
        self._tdp_w_arr = np.array([p.tdp_w for p in params_by_sid])
        self._budget_arr = np.array(
            [p.thermal_budget_s for p in params_by_sid]
        )
        self._half_budget_arr = 0.5 * self._budget_arr
        self._recovery_arr = np.array(
            [p.thermal_recovery_rate for p in params_by_sid]
        )

        rng = np.random.default_rng(seed)
        self._instr_bank = InstructionCounterBank(socket_count)
        #: RAPL bank slot layout: ``2 * socket_id + domain`` with the
        #: :class:`RaplDomain` enum order (PACKAGE even, DRAM odd).
        self._rapl_bank = RaplCounterBank(
            np.array(
                [
                    p.rapl_update_period_s
                    for p in params_by_sid
                    for _ in RaplDomain
                ]
            )
        )
        self._rapl: dict[tuple[int, RaplDomain], RaplCounter] = {}
        self._instructions: dict[int, InstructionCounter] = {}
        for sock in self.topology.sockets:
            sid = sock.socket_id
            for index, domain in enumerate(RaplDomain):
                child = np.random.default_rng(rng.integers(0, 2**63))
                self._rapl[(sid, domain)] = self._rapl_bank.view(
                    2 * sid + index, self._socket_params[sid], domain, child
                )
            self._instructions[sid] = self._instr_bank.view(sid)

        self._loads: dict[int, SocketLoad] = {
            sock.socket_id: SocketLoad(
                characteristics=IDLE_CHARACTERISTICS, demand_instructions_per_s=0.0
            )
            for sock in self.topology.sockets
        }
        self._time_s = 0.0
        self._last_step: StepResult | None = None
        #: Remaining above-TDP headroom per socket (thermal throttling).
        self._thermal_credit = np.array(
            [p.thermal_budget_s for p in params_by_sid]
        )
        self._throttled = np.zeros(socket_count, dtype=bool)

        #: Per-tick scratch buffers.  ``_buf_rapl_w`` mirrors the RAPL
        #: bank layout (package even, DRAM odd); after every step they
        #: hold exactly the powers/rates of :attr:`last_step` (dark
        #: slots are pre-filled by :meth:`_refresh_dark` and only
        #: rewritten on node power transitions).
        self._buf_retired = np.zeros(socket_count)
        self._buf_rapl_w = np.zeros(2 * socket_count)
        self._total_w: list[float] = [0.0] * socket_count
        self._results: list[SocketStepResult | None] = [None] * socket_count
        #: Per-socket memo of the last built :class:`SocketStepResult`,
        #: keyed by the identity of the cached (performance, power)
        #: resolution — steady states rebuild no result objects.
        self._sres_memo: list[tuple | None] = [None] * socket_count
        #: One-slot per-socket fast path over :meth:`_resolve_socket`:
        #: the last resolution together with the monotonic version
        #: counters it was taken under.  Versions are strictly monotone,
        #: so equality implies the content fingerprints are unchanged —
        #: a hit skips fingerprinting and LRU hashing entirely and
        #: returns the very same (performance, power) objects the LRU
        #: layers would.  Disabled with the LRUs by ``step_cache_size``.
        self._resolve_fast: list[tuple | None] = [None] * socket_count
        #: Thermal fast path: True when the last thermal update was a
        #: fixpoint (credit and throttle flags reproduced themselves), so
        #: replaying it under the same dt and unchanged powers is a
        #: provable no-op the step can skip.
        self._thermal_settled = False
        self._thermal_settled_dt = 0.0
        #: Node-power version observed by the last step; a transition
        #: rewrites dark buffer slots, so the step after it must rebuild
        #: its result set even if every live resolution is memo-stable.
        self._last_npv = -1
        self._dark_results: dict[
            tuple[int, NodePowerState], SocketStepResult
        ] = {}
        self._dark_mask = np.zeros(socket_count, dtype=bool)
        self._live_sids: tuple[int, ...] = self._socket_ids
        self._refresh_dark()

        #: Step-resolution memoization (see :meth:`_resolve_socket`).  The
        #: inputs of a socket's per-step resolution are piecewise-constant
        #: — the ECL holds one configuration between decision intervals —
        #: so the (configuration, workload, demand) → (performance, power)
        #: mapping is cached in LRU dictionaries.  ``step_cache_size <= 0``
        #: disables memoization entirely (the exact uncached path).
        self._step_cache_size = step_cache_size
        self._config_cache: OrderedDict = OrderedDict()
        self._capacity_cache: OrderedDict = OrderedDict()
        self._full_cache: OrderedDict = OrderedDict()
        #: Hit/miss counters for tests and performance introspection.
        self.step_cache_stats: dict[str, int] = {
            "full_hits": 0,
            "capacity_hits": 0,
            "misses": 0,
            "fast_hits": 0,
        }
        #: Configurations already validated against this machine
        #: (immutable value objects, so a one-time check suffices; the
        #: RTI duty cycle re-applies the same two configurations every
        #: period).
        self.validated_configurations: set = set()

    # -- cluster axis ---------------------------------------------------------

    def params_for(self, socket_id: int) -> HaswellEPParameters:
        """The parameter set governing one socket (its node's, on clusters)."""
        return self._socket_params[socket_id]

    @property
    def node_count(self) -> int:
        """Number of nodes (1 for the classic single-server machine)."""
        return len(self._node_sockets)

    def node_of_socket(self, socket_id: int) -> int:
        """Node index owning a global socket id."""
        return self._socket_node[socket_id]

    def node_sockets(self, node: int) -> tuple[int, ...]:
        """Global socket ids of one node."""
        return tuple(self._node_sockets[node])

    def node_power_state(self, node: int) -> NodePowerState:
        """Current power state of one node."""
        return self._node_state[node]

    def node_is_dark(self, socket_id: int) -> bool:
        """Whether a socket's node is OFF or BOOTING (not serving work)."""
        return self._node_state[self._socket_node[socket_id]] is not (
            NodePowerState.ON
        )

    def power_off_node(self, node: int) -> None:
        """Power a whole node off.

        Requires a cluster machine and a fully drained node: every
        hardware thread of the node parked.  While OFF the node draws
        its :attr:`~repro.hardware.cluster.NodeSpec.off_residual_w` at
        the wall (split over its sockets' RAPL package domains).
        """
        if self.cluster is None:
            raise ConfigurationError(
                "node power control requires a cluster machine"
            )
        if self._node_state[node] is not NodePowerState.ON:
            raise ConfigurationError(
                f"node {node} is {self._node_state[node].value}, not on"
            )
        for sid in self._node_sockets[node]:
            if self.cstates.active_threads_on_socket(sid):
                raise ConfigurationError(
                    f"cannot power off node {node}: socket {sid} still has "
                    f"active threads"
                )
        self._node_state[node] = NodePowerState.OFF
        self.node_power_version += 1
        self._refresh_dark()
        for sid in self._node_sockets[node]:
            self._note_switch(sid)

    def power_on_node(self, node: int) -> None:
        """Begin powering an OFF node back on.

        The node BOOTs for its
        :attr:`~repro.hardware.cluster.NodeSpec.power_up_s` (drawing
        ``boot_power_w``), then transitions to ON at the first step
        boundary past the deadline.
        """
        if self.cluster is None:
            raise ConfigurationError(
                "node power control requires a cluster machine"
            )
        if self._node_state[node] is not NodePowerState.OFF:
            raise ConfigurationError(
                f"node {node} is {self._node_state[node].value}, not off"
            )
        power_up = self.cluster.nodes[node].power_up_s
        if power_up <= 0.0:
            self._node_state[node] = NodePowerState.ON
        else:
            self._node_state[node] = NodePowerState.BOOTING
            self._node_boot_until[node] = self._time_s + power_up
            self._booting[node] = self._node_boot_until[node]
        self.node_power_version += 1
        self._refresh_dark()
        for sid in self._node_sockets[node]:
            self._note_switch(sid)

    def settle_node_power(self) -> None:
        """Flip BOOTING nodes whose deadline has passed to ON.

        Idempotent; :meth:`step` calls it automatically, and controllers
        call it at the top of their control phase so a boot completing on
        the previous tick is visible before decisions are made.  O(1)
        when nothing is booting (the common case on every tick).
        """
        if not self._booting:
            return
        settled = [
            node
            for node, deadline in self._booting.items()
            if self._time_s >= deadline
        ]
        for node in settled:
            del self._booting[node]
            self._node_state[node] = NodePowerState.ON
            self.node_power_version += 1
            for sid in self._node_sockets[node]:
                self._note_switch(sid)
        if settled:
            self._refresh_dark()

    @property
    def booting_node_count(self) -> int:
        """Number of nodes currently BOOTING (O(1))."""
        return len(self._booting)

    def _refresh_dark(self) -> None:
        """Rebuild the dark-socket mask and pre-fill dark buffer slots.

        Called on every node power transition.  Dark sockets (node OFF
        or BOOTING) contribute constants to the step fold — zero work,
        the node-level residual/boot share as package power — so their
        buffer slots and :class:`SocketStepResult` are written once here
        and the per-tick pass only touches live sockets.
        """
        mask = self._dark_mask
        mask[:] = False
        dark: list[int] = []
        for node, state in enumerate(self._node_state):
            if state is not NodePowerState.ON:
                for sid in self._node_sockets[node]:
                    mask[sid] = True
                    dark.append(sid)
        self._live_sids = tuple(
            sid for sid in self._socket_ids if not mask[sid]
        )
        for sid in dark:
            state = self._node_state[self._socket_node[sid]]
            key = (sid, state)
            sres = self._dark_results.get(key)
            if sres is None:
                sres = SocketStepResult(
                    performance=_DARK_PERFORMANCE,
                    power=self._dark_power[key],
                    executed_instructions=0.0,
                    uncore_ghz=0.0,
                    uncore_halted=True,
                )
                self._dark_results[key] = sres
            power = sres.power
            self._results[sid] = sres
            self._buf_retired[sid] = 0.0
            self._buf_rapl_w[2 * sid] = power.package_w
            self._buf_rapl_w[2 * sid + 1] = power.dram_w
            self._total_w[sid] = power.socket_total_w

    # -- time ---------------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Current simulation time."""
        return self._time_s

    @property
    def last_step(self) -> StepResult | None:
        """Result of the most recent :meth:`step` call (None before any)."""
        return self._last_step

    # -- load ---------------------------------------------------------------

    def set_socket_load(self, socket_id: int, load: SocketLoad) -> None:
        """Declare the demand a socket faces until changed again."""
        if socket_id not in self._loads:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        self._loads[socket_id] = load

    def socket_load(self, socket_id: int) -> SocketLoad:
        """The load currently declared for a socket."""
        if socket_id not in self._loads:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        return self._loads[socket_id]

    def set_idle(self, socket_id: int) -> None:
        """Clear a socket's demand."""
        self.set_socket_load(
            socket_id,
            SocketLoad(
                characteristics=IDLE_CHARACTERISTICS, demand_instructions_per_s=0.0
            ),
        )

    # -- configuration shortcuts ------------------------------------------------

    def apply_socket_threads(
        self, socket_id: int, active_thread_ids: frozenset[int] | set[int]
    ) -> None:
        """Set exactly this active-thread set on one socket.

        Threads of other sockets are left untouched.  Notifies the RAPL
        counters that a reconfiguration happened (transient read noise).
        """
        self.cstates.set_socket_threads(socket_id, active_thread_ids)
        self._note_switch(socket_id)

    def set_epb_all(self, bias: EnergyPerformanceBias) -> None:
        """Set the EPB of every hardware thread."""
        self.frequency.set_epb_all(bias)

    def _note_switch(self, socket_id: int) -> None:
        for domain in RaplDomain:
            self._rapl[(socket_id, domain)].note_configuration_switch(self._time_s)

    def note_configuration_switch(self, socket_id: int) -> None:
        """Record an external reconfiguration (frequency changes etc.)."""
        self._note_switch(socket_id)

    # -- counters ---------------------------------------------------------------

    def read_rapl(self, socket_id: int, domain: RaplDomain) -> RaplReading:
        """Read a RAPL counter (published value — lagged, quantized, noisy)."""
        key = (socket_id, domain)
        if key not in self._rapl:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        return self._rapl[key].read()

    def rapl_counter(self, socket_id: int, domain: RaplDomain) -> RaplCounter:
        """Direct access to a RAPL counter object (for windowed helpers)."""
        key = (socket_id, domain)
        if key not in self._rapl:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        return self._rapl[key]

    def read_instructions(self, socket_id: int) -> CounterReading:
        """Read a socket's instructions-retired counter."""
        if socket_id not in self._instructions:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        return self._instructions[socket_id].read()

    def true_socket_energy_j(self, socket_id: int) -> float:
        """Ground-truth package+DRAM energy of a socket (for evaluation)."""
        return (
            self._rapl[(socket_id, RaplDomain.PACKAGE)].true_energy_j
            + self._rapl[(socket_id, RaplDomain.DRAM)].true_energy_j
        )

    def true_total_energy_j(self) -> float:
        """Ground-truth energy across all sockets (RAPL-visible domains)."""
        return sum(
            self.true_socket_energy_j(s.socket_id) for s in self.topology.sockets
        )

    # -- stepping ----------------------------------------------------------------

    def thermally_throttled(self, socket_id: int) -> bool:
        """Whether the socket currently caps turbo at the nominal clock."""
        return bool(self._throttled[socket_id])

    def thermal_credit_s(self, socket_id: int) -> float:
        """Remaining above-TDP operation budget of a socket."""
        return float(self._thermal_credit[socket_id])

    def _active_cores(self, socket_id: int) -> list[ActiveCore]:
        """Active physical cores of a socket with their effective clocks.

        Thermal throttling caps turbo-clocked cores at the nominal
        frequency once the socket's above-TDP budget is exhausted (the
        paper's 500 W turbo peak "can only endure for about 1 s").
        """
        cores = []
        socket = self.topology.socket(socket_id)
        active = set(self.cstates.active_threads_on_socket(socket_id))
        nominal = self._socket_params[socket_id].core_nominal_ghz
        for core in socket.cores:
            siblings = [tid for tid in core.thread_ids() if tid in active]
            if not siblings:
                continue
            freq = self.frequency.effective_core_frequency(
                socket_id, core.core_id, self._time_s
            )
            if self._throttled[socket_id] and freq > nominal:
                freq = nominal
            cores.append(
                ActiveCore(
                    socket_id=socket_id,
                    core_id=core.core_id,
                    frequency_ghz=freq,
                    sibling_count=len(siblings),
                )
            )
        return cores

    def resolve_uncore(self, socket_id: int) -> tuple[float, bool]:
        """Effective (uncore frequency, halted) of a socket right now."""
        has_active = not self.cstates.socket_is_idle(socket_id)
        freq = self.frequency.effective_uncore_frequency(socket_id, has_active)
        halted = self.cstates.uncore_may_halt(socket_id)
        return freq, halted

    def _hardware_signature(self, socket_id: int):
        """Key fragment capturing everything that shapes a socket's step
        resolution besides the declared load: content fingerprints of the
        clock and C-state models, the EET dwell phase (the only
        time-dependence of effective clocks), and the thermal-throttle
        flag.  Content fingerprints — not the monotonic version counters —
        so that recurring control states (RTI duty cycling between the
        same active and idle configurations, multiplexed measurement
        slots) hit the cache instead of missing on every reconfiguration.
        """
        return (
            self.frequency.state_fingerprint(socket_id),
            self.cstates.state_fingerprint(socket_id),
            self.frequency.turbo_dwell_signature(socket_id, self._time_s),
            bool(self._throttled[socket_id]),
        )

    def _compute_socket(
        self, sid: int, load: SocketLoad
    ) -> tuple[SocketPerformance, PowerBreakdown, _ConfigEntry, _CapacityEntry]:
        """Exact (uncached) per-socket step resolution."""
        chars = load.characteristics
        active_cores = tuple(self._active_cores(sid))
        uncore_ghz, uncore_halted = self.resolve_uncore(sid)

        perf = self.perf_model.resolve(active_cores, uncore_ghz, load)
        parallel = self.perf_model.parallel_throughput_ips(
            active_cores, uncore_ghz, chars
        )
        socket_scale = 0.0 if parallel <= 0 else perf.executed_ips / parallel

        compute_shares = tuple(
            self.perf_model.core_compute_share(core, uncore_ghz, chars)
            for core in active_cores
        )
        core_states = [
            CorePowerState(
                frequency_ghz=core.frequency_ghz,
                active_sibling_count=core.sibling_count,
                activity=self.perf_model.activity_from_share(share, socket_scale),
            )
            for core, share in zip(active_cores, compute_shares)
        ]
        # Shallow-parked (C1) cores draw a residual.
        c1_states = []
        for core in self.topology.socket(sid).cores:
            state = self.cstates.core_state(sid, core.core_id)
            if state is CState.C1:
                freq = self.frequency.effective_core_frequency(
                    sid, core.core_id, self._time_s
                )
                c1_states.append(
                    CorePowerState(
                        frequency_ghz=freq,
                        active_sibling_count=0,
                        shallow=True,
                    )
                )
        core_states.extend(c1_states)

        power = self.power_model.socket_power(
            socket_id=sid,
            core_states=core_states,
            uncore_ghz=uncore_ghz,
            uncore_halted=uncore_halted,
            traffic_gbs=perf.traffic_gbs,
        )
        config = _ConfigEntry(
            active_cores=active_cores,
            uncore_ghz=uncore_ghz,
            uncore_halted=uncore_halted,
            c1_states=tuple(c1_states),
        )
        capacity = _CapacityEntry(
            capacity_ips=perf.capacity_ips,
            parallel_ips=parallel,
            bandwidth_limited=perf.bandwidth_limited,
            contention_limited=perf.contention_limited,
            compute_shares=compute_shares,
        )
        return perf, power, config, capacity

    def _resolve_socket(
        self, sid: int, load: SocketLoad
    ) -> tuple[SocketPerformance, PowerBreakdown, float, bool]:
        """Resolve one socket's step via the memoization layers.

        Three LRU levels, all bit-identical to the uncached path:

        1. *config* — the hardware view (active cores with effective
           clocks, uncore state) per hardware signature;
        2. *capacity* — the demand-independent performance resolution per
           (hardware signature, workload characteristics);
        3. *full* — the complete (performance, power) pair per (hardware
           signature, characteristics, demand signature).  Demands at or
           above capacity all resolve to the same saturated result, so
           they share one bucket; below capacity the key is the exact
           demand, and a miss falls back to exact recomputation of the
           demand-dependent tail.
        """
        if self._step_cache_size <= 0:
            perf, power, config, _ = self._compute_socket(sid, load)
            return perf, power, config.uncore_ghz, config.uncore_halted

        hw_sig = self._hardware_signature(sid)
        chars = load.characteristics
        cap_key = (sid, hw_sig, chars)
        capacity = _lru_get(self._capacity_cache, cap_key)
        config = (
            _lru_get(self._config_cache, (sid, hw_sig))
            if capacity is not None
            else None
        )
        if capacity is None or config is None:
            self.step_cache_stats["misses"] += 1
            perf, power, config, capacity = self._compute_socket(sid, load)
            size = self._step_cache_size
            _lru_put(self._config_cache, (sid, hw_sig), config, size)
            _lru_put(self._capacity_cache, cap_key, capacity, size)
            demand = load.demand_instructions_per_s
            demand_key = (
                None
                if demand is None or demand >= capacity.capacity_ips
                else demand
            )
            _lru_put(
                self._full_cache,
                (sid, hw_sig, chars, demand_key),
                _FullEntry(performance=perf, power=power),
                size,
            )
            return perf, power, config.uncore_ghz, config.uncore_halted

        demand = load.demand_instructions_per_s
        # Saturated demands (>= capacity) all yield the executed == capacity
        # resolution; they quantize onto one shared bucket (None).
        demand_key = (
            None if demand is None or demand >= capacity.capacity_ips else demand
        )
        full_key = (sid, hw_sig, chars, demand_key)
        full = _lru_get(self._full_cache, full_key)
        if full is not None:
            self.step_cache_stats["full_hits"] += 1
            return (
                full.performance,
                full.power,
                config.uncore_ghz,
                config.uncore_halted,
            )

        self.step_cache_stats["capacity_hits"] += 1
        perf = self.perf_model.resolve_with_capacity(
            capacity.capacity_ips,
            capacity.parallel_ips,
            capacity.bandwidth_limited,
            capacity.contention_limited,
            load,
        )
        socket_scale = (
            0.0
            if capacity.parallel_ips <= 0
            else perf.executed_ips / capacity.parallel_ips
        )
        core_states = [
            CorePowerState(
                frequency_ghz=core.frequency_ghz,
                active_sibling_count=core.sibling_count,
                activity=self.perf_model.activity_from_share(share, socket_scale),
            )
            for core, share in zip(config.active_cores, capacity.compute_shares)
        ]
        core_states.extend(config.c1_states)
        power = self.power_model.socket_power(
            socket_id=sid,
            core_states=core_states,
            uncore_ghz=config.uncore_ghz,
            uncore_halted=config.uncore_halted,
            traffic_gbs=perf.traffic_gbs,
        )
        _lru_put(
            self._full_cache,
            full_key,
            _FullEntry(performance=perf, power=power),
            self._step_cache_size,
        )
        return perf, power, config.uncore_ghz, config.uncore_halted

    def step(self, dt_s: float) -> StepResult:
        """Advance the machine by ``dt_s`` seconds.

        Resolves performance for every live socket under its declared
        load (through the step-resolution cache) into the node-major
        buffers — dark sockets keep their mask-maintained constants —
        then retires instructions, burns RAPL energy, and updates
        thermal state in one vectorized pass over the socket axis.
        Every array element performs the exact IEEE operations of the
        former per-socket loop, so results are bit-identical.
        """
        if dt_s <= 0:
            raise ConfigurationError(f"step duration must be > 0, got {dt_s}")
        self.settle_node_power()

        new_time = self._time_s + dt_s
        now = self._time_s
        retired = self._buf_retired
        rapl_w = self._buf_rapl_w
        totals = self._total_w
        results = self._results
        memo = self._sres_memo
        fast = self._resolve_fast if self._step_cache_size > 0 else None
        freq = self.frequency
        cstates = self.cstates
        npv = self.node_power_version
        # ``changed`` tracks whether any buffer slot or result object can
        # differ from the previous step: False only when every live socket
        # reused its memoized SocketStepResult and no node power
        # transition rewrote dark slots — then the powers, the thermal
        # inputs, and the PSU draw are all provably identical.
        changed = npv != self._last_npv
        self._last_npv = npv

        for sid in self._live_sids:
            load = self._loads[sid]
            hit = None
            if fast is not None:
                entry = fast[sid]
                if (
                    entry is not None
                    and entry[0] == freq.socket_mutation_version(sid)
                    and entry[1] == cstates.socket_mutation_version(sid)
                    and entry[2] == npv
                    and entry[4] is load.characteristics
                    and entry[5] == bool(self._throttled[sid])
                    and entry[3] == freq.turbo_dwell_signature(sid, now)
                ):
                    demand = load.demand_instructions_per_s
                    seen = entry[6]
                    # Same demand, or both saturated (>= capacity): the
                    # LRU's shared saturated bucket, without the hashing.
                    if demand == seen or (
                        demand is not None
                        and seen is not None
                        and demand >= entry[7]
                        and seen >= entry[7]
                    ):
                        hit = entry[8]
            if hit is not None:
                # A fast hit is a full-cache hit that skipped the hashing.
                stats = self.step_cache_stats
                stats["full_hits"] += 1
                stats["fast_hits"] += 1
                perf, power, uncore_ghz, uncore_halted = hit
            else:
                perf, power, uncore_ghz, uncore_halted = self._resolve_socket(
                    sid, load
                )
                if fast is not None:
                    fast[sid] = (
                        freq.socket_mutation_version(sid),
                        cstates.socket_mutation_version(sid),
                        npv,
                        freq.turbo_dwell_signature(sid, now),
                        load.characteristics,
                        bool(self._throttled[sid]),
                        load.demand_instructions_per_s,
                        perf.capacity_ips,
                        (perf, power, uncore_ghz, uncore_halted),
                    )
            cached = memo[sid]
            if (
                cached is not None
                and cached[0] is perf
                and cached[1] is power
                and cached[2] == dt_s
            ):
                sres = cached[3]
            else:
                sres = SocketStepResult(
                    performance=perf,
                    power=power,
                    executed_instructions=perf.executed_ips * dt_s,
                    uncore_ghz=uncore_ghz,
                    uncore_halted=uncore_halted,
                )
                memo[sid] = (perf, power, dt_s, sres)
                changed = True
            if results[sid] is not sres:
                results[sid] = sres
                changed = True
            if changed:
                base = 2 * sid
                # The counters see *retired* instructions — inflated by
                # latch spinning for transaction-oriented workloads
                # (section 5.3).
                retired[sid] = perf.retired_ips
                rapl_w[base] = power.package_w
                rapl_w[base + 1] = power.dram_w
                totals[sid] = power.socket_total_w

        self._instr_bank.accumulate_all(retired * dt_s, new_time)
        self._rapl_bank.accumulate_all(rapl_w, dt_s, new_time)

        # Thermal bookkeeping, masked over the socket axis: above-TDP
        # operation drains the budget, below-TDP operation slowly
        # restores it.  Dark sockets ride the same arrays (their package
        # share is far below TDP, so they recover like idle sockets).
        # Skipped entirely when the powers are unchanged and the last
        # update already reproduced its own inputs under the same dt —
        # replaying a fixpoint is a no-op.
        if changed or not self._thermal_settled or dt_s != self._thermal_settled_dt:
            pkg_w = rapl_w[0::2]
            credit = self._thermal_credit
            throttled = self._throttled
            above = pkg_w > self._tdp_w_arr
            drained = credit - dt_s
            crossed = drained <= 0.0
            recovered = np.minimum(
                self._budget_arr, credit + self._recovery_arr * dt_s
            )
            new_credit = np.where(
                above, np.where(crossed, 0.0, drained), recovered
            )
            new_throttled = np.where(
                above,
                throttled | crossed,
                throttled & ~(recovered >= self._half_budget_arr),
            )
            self._thermal_settled = bool(
                (new_credit == credit).all()
                and (new_throttled == throttled).all()
            )
            self._thermal_settled_dt = dt_s
            self._thermal_credit = new_credit
            self._throttled = new_throttled

        last = self._last_step
        if not changed and last is not None:
            # Nothing resolved differently: the socket map and the PSU
            # draw are the previous step's, object-identical.
            sockets = last.sockets
            psu = last.psu_power_w
        else:
            sockets = dict(zip(self._socket_ids, results))
            if self.cluster is None:
                psu = self.power_model.psu_power(
                    {sid: results[sid].power for sid in self._socket_ids}
                )
            else:
                # Per-node PSUs: ON/BOOTING nodes pay their own conversion
                # overhead on the node's RAPL-visible power; an OFF node
                # contributes exactly its residual wall draw (already
                # charged into its sockets' package domains — no overhead
                # on standby rails).
                psu = 0.0
                for node_index, node in enumerate(self.cluster.nodes):
                    node_rapl = 0.0
                    for sid in self._node_sockets[node_index]:
                        node_rapl += totals[sid]
                    if self._node_state[node_index] is NodePowerState.OFF:
                        psu += node_rapl
                    else:
                        p = node.params
                        psu += node_rapl * (1.0 + p.psu_overhead_factor) + (
                            p.psu_static_w
                        )
        self._time_s = new_time
        result = StepResult(
            time_s=new_time,
            dt_s=dt_s,
            sockets=sockets,
            psu_power_w=psu,
        )
        self._last_step = result
        return result

    # -- macro-stepping ----------------------------------------------------------

    def next_internal_event_s(self) -> float:
        """Earliest future time the machine changes behaviour on its own.

        Machine state only evolves under external mutation (versioned) or
        through internal mechanisms: the EET turbo dwell elapsing, thermal
        credit drift, and — on clusters — a BOOTING node's power-up
        deadline.  Credit drift is visible in the steady-state signature
        the runner compares, so the dwell expiry and boot deadlines are
        the latent events a macro span must stop short of.
        """
        expiry = self.frequency.next_dwell_expiry_s(self._time_s)
        for deadline in self._booting.values():
            expiry = min(expiry, deadline)
        return expiry

    def thermal_steady(self, socket_id: int) -> bool:
        """Whether one more step would leave thermal state unchanged.

        True exactly when replaying the last step's thermal update is a
        no-op: fully recovered credit below TDP, or exhausted credit under
        sustained above-TDP throttling.
        """
        last = self._last_step
        if last is None:
            return False
        power = last.sockets[socket_id].power
        p = self._socket_params[socket_id]
        credit = float(self._thermal_credit[socket_id])
        if power.package_w > p.tdp_w:
            return credit <= 0.0 and bool(self._throttled[socket_id])
        recovered = min(p.thermal_budget_s, credit + p.thermal_recovery_rate * last.dt_s)
        if recovered != credit:
            return False
        throttled = bool(self._throttled[socket_id]) and (
            credit < 0.5 * p.thermal_budget_s
        )
        return throttled == bool(self._throttled[socket_id])

    def thermal_steady_all(self) -> bool:
        """Vectorized :meth:`thermal_steady` over every socket at once.

        Reads the last step's package powers from the step buffers
        (which mirror :attr:`last_step` by construction).
        """
        last = self._last_step
        if last is None:
            return False
        credit = self._thermal_credit
        throttled = self._throttled
        pkg_w = self._buf_rapl_w[0::2]
        above = pkg_w > self._tdp_w_arr
        steady_above = (credit <= 0.0) & throttled
        recovered = np.minimum(
            self._budget_arr, credit + self._recovery_arr * last.dt_s
        )
        steady_below = (recovered == credit) & (
            ~throttled | (credit < self._half_budget_arr)
        )
        return bool(np.where(above, steady_above, steady_below).all())

    def span_step(self, dt_s: float, n_ticks: int) -> StepResult:
        """Advance ``n_ticks`` steps of ``dt_s`` in one steady-state span.

        Requires that every per-socket step resolution is constant over
        the span (same configuration versions, dwell phase, thermal state,
        and a demand yielding the same resolved performance — the runner
        verifies all of this before calling).  The whole fleet folds in
        two ``np.add.accumulate`` calls over an ``(n_ticks, counters)``
        grid — a strict per-column left fold with the same folded
        timestamps the per-tick path would produce, so every float —
        time, true energy, RAPL publish points, instructions — is
        bit-identical to ``n_ticks`` individual :meth:`step` calls.
        """
        if dt_s <= 0:
            raise ConfigurationError(f"step duration must be > 0, got {dt_s}")
        if n_ticks < 1:
            raise ConfigurationError(f"span must cover >= 1 tick, got {n_ticks}")
        last = self._last_step
        if last is None:
            raise ConfigurationError("span_step requires a preceding step")
        if not self.thermal_steady_all():
            for sid in self._socket_ids:
                if not self.thermal_steady(sid):
                    raise ConfigurationError(
                        f"socket {sid} thermal state is not steady"
                    )

        t = self._time_s
        times = np.add.accumulate(
            np.concatenate(([t], np.full(n_ticks, dt_s)))
        )[1:]
        retired = np.empty(self._socket_count)
        rapl_w = np.empty(2 * self._socket_count)
        for sid in self._socket_ids:
            sres = last.sockets[sid]
            retired[sid] = sres.performance.retired_ips * dt_s
            rapl_w[2 * sid] = sres.power.package_w
            rapl_w[2 * sid + 1] = sres.power.dram_w
        self._instr_bank.accumulate_span_all(retired, times)
        self._rapl_bank.accumulate_span_all(rapl_w, dt_s, times)
        t = float(times[-1])
        self._time_s = t
        result = StepResult(
            time_s=t, dt_s=dt_s, sockets=last.sockets, psu_power_w=last.psu_power_w
        )
        self._last_step = result
        return result

    # -- introspection ---------------------------------------------------------

    def state(self) -> MachineState:
        """Snapshot the control state (frequencies, active threads)."""
        core_freqs = {}
        uncore_freqs = {}
        uncore_halted = {}
        for sock in self.topology.sockets:
            sid = sock.socket_id
            for core in sock.cores:
                core_freqs[(sid, core.core_id)] = (
                    self.frequency.effective_core_frequency(
                        sid, core.core_id, self._time_s
                    )
                )
            freq, halted = self.resolve_uncore(sid)
            uncore_freqs[sid] = freq
            uncore_halted[sid] = halted
        return MachineState(
            time_s=self._time_s,
            active_threads=self.cstates.active_threads,
            core_frequencies_ghz=core_freqs,
            uncore_frequencies_ghz=uncore_freqs,
            uncore_halted=uncore_halted,
        )
