"""Deployment scenarios: exogenous time-varying signals around a run.

The paper optimizes joules per query; real deployments optimize *cost*
and *carbon* under grid conditions that change hour by hour.  This
package supplies the scenario layer:

* :mod:`repro.environment.signal` — the piecewise time-varying
  :class:`Signal` abstraction (scalar ``value``, vectorized ``values``,
  ``next_change_s`` for macro-horizon capping) shared by load profiles
  and environment curves alike;
* :mod:`repro.environment.scenario` — :class:`Environment` (carbon
  intensity gCO₂/kWh, electricity price $/kWh, facility PUE) plus the
  name registry behind ``repro run --environment`` and
  ``--list-environments``;
* :mod:`repro.environment.accounting` —
  :class:`EnvironmentAccounting`, the per-run carbon/cost fold that is
  bit-identical between per-tick and macro-stepped execution.
"""

from repro.environment.accounting import JOULES_PER_KWH, EnvironmentAccounting
from repro.environment.scenario import (
    Environment,
    EnvironmentInfo,
    get_environment,
    make_environment,
    register_environment,
    registered_environments,
    unregister_environment,
)
from repro.environment.signal import (
    ConstantSignal,
    PiecewiseLinearSignal,
    Signal,
    StepSignal,
    load_signal,
)

__all__ = [
    "Signal",
    "ConstantSignal",
    "StepSignal",
    "PiecewiseLinearSignal",
    "load_signal",
    "Environment",
    "EnvironmentInfo",
    "register_environment",
    "unregister_environment",
    "registered_environments",
    "get_environment",
    "make_environment",
    "EnvironmentAccounting",
    "JOULES_PER_KWH",
]
