"""Hardware-only energy management: the EPB hint is the whole policy.

Section 4 of the paper (Fig. 7) studies what the processor's *own*
energy management can do without any DBMS integration: the
energy-performance bias (EPB) MSR hints the package control unit toward
saving energy, the energy-efficient turbo (EET) gates turbo behind a
~1 s dwell, and the uncore-frequency-scaling heuristic factors the bias
into its clock decision.  This policy reproduces that deployment: set
every thread's EPB to powersave once, then never touch the machine
again —

* every hardware thread stays active (the DBMS polls);
* core clocks sit at the nominal frequency (no turbo requests, so the
  EET never has anything to gate);
* the uncore stays in automatic UFS mode, where the powersave bias
  makes the hardware heuristic settle mid-ladder instead of racing to
  the maximum (see
  :meth:`repro.hardware.frequency.FrequencyDomains.effective_uncore_frequency`);
* no parking, no latency feedback, no profile.

Expectation (asserted by the ablation bench): between baseline and ECL.
The lower uncore clock saves a steady slice of power, but it is applied
blindly — bandwidth-bound work slows down and backlogs under load
peaks, exactly the §4 argument for why hardware heuristics alone are
not enough.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dbms.engine import DatabaseEngine
from repro.hardware.frequency import EnergyPerformanceBias
from repro.sim.metrics import SampleAnnotations

if TYPE_CHECKING:
    from repro.sim.runner import RunConfiguration


class EpbOnlyPolicy:
    """Set the powersave EPB once; the hardware does the rest."""

    def __init__(self, engine: DatabaseEngine):
        self.engine = engine
        self.machine = engine.machine
        self._initialized = False

    @classmethod
    def build(
        cls, engine: DatabaseEngine, config: "RunConfiguration"
    ) -> "EpbOnlyPolicy":
        """Control-policy factory (see :mod:`repro.sim.policy`)."""
        return cls(engine)

    def on_tick(self, now_s: float, dt_s: float) -> None:
        """One-shot setup; afterwards the machine manages itself."""
        if self._initialized:
            return
        machine = self.machine
        all_threads = {t.global_id for t in machine.topology.iter_threads()}
        machine.cstates.set_active_threads(all_threads)
        for sock in machine.topology.sockets:
            nominal = machine.params_for(sock.socket_id).core_nominal_ghz
            machine.frequency.set_socket_core_frequencies(
                sock.socket_id,
                {core.core_id: nominal for core in sock.cores},
                machine.time_s,
            )
        machine.set_epb_all(EnergyPerformanceBias.POWERSAVE)
        for sock in machine.topology.sockets:
            machine.frequency.set_uncore_auto(sock.socket_id)
        self._initialized = True

    def macro_view(
        self, now_s: float, dt_s: float
    ) -> tuple[float, dict[int, float]] | None:
        """Steady-state view for the macro-stepping runner.

        After the one-shot setup :meth:`on_tick` never touches the
        machine again, so the horizon is unbounded.
        """
        if not self._initialized:
            return None  # the next tick performs the one-shot setup
        return float("inf"), {}

    def annotate_sample(self) -> SampleAnnotations:
        """The (static) hardware hint in effect."""
        if not self._initialized:
            return SampleAnnotations()
        return SampleAnnotations(
            applied=tuple(
                "epb-powersave" for _ in self.machine.topology.sockets
            ),
        )
