"""The system-level ECL: latency supervision (§5.2).

Query latency is a *global* metric — every socket contributes — so one
system-level ECL monitors the sliding-window average against the
user-defined maximum response time (a soft constraint; a reactive loop
cannot guarantee it).  From the average and its trend it estimates the
time until the limit would be violated and publishes that number to the
socket-level ECLs, which use it to

1. raise their discovery aggressiveness under full utilization, and
2. shorten or disable race-to-idle stints (idling costs latency).

A low time-to-violation does **not** make sockets ramp to maximum — load
can be skewed across sockets, so each socket still scales with its own
utilization, just more eagerly.
"""

from __future__ import annotations

from repro.errors import ControlError
from repro.dbms.stats import LatencyTracker


class SystemEcl:
    """Monitors the latency limit and publishes time-to-violation."""

    def __init__(
        self,
        latency_tracker: LatencyTracker,
        latency_limit_s: float = 0.1,
        check_interval_s: float = 0.1,
    ):
        if latency_limit_s <= 0:
            raise ControlError(
                f"latency limit must be > 0, got {latency_limit_s}"
            )
        if check_interval_s <= 0:
            raise ControlError(
                f"check interval must be > 0, got {check_interval_s}"
            )
        self.latency = latency_tracker
        self.latency_limit_s = latency_limit_s
        self.check_interval_s = check_interval_s
        self._next_check_s = 0.0
        self._time_to_violation_s = float("inf")
        self._average_latency_s: float | None = None
        self.violations = 0
        self._checks = 0

    def on_tick(self, now_s: float) -> None:
        """Refresh the cached estimate once per check interval."""
        if now_s + 1e-12 < self._next_check_s:
            return
        self._next_check_s = now_s + self.check_interval_s
        self._checks += 1
        self._average_latency_s = self.latency.average_latency_s(now_s)
        self._time_to_violation_s = self.latency.time_to_violation_s(
            self.latency_limit_s, now_s
        )
        if (
            self._average_latency_s is not None
            and self._average_latency_s > self.latency_limit_s
        ):
            self.violations += 1

    @property
    def next_check_s(self) -> float:
        """When the next latency check fires (macro-stepping horizon).

        Between checks :meth:`on_tick` is a pure deadline comparison, so
        the macro runner may skip any tick strictly before this time.
        """
        return self._next_check_s

    def time_to_violation_s(self) -> float:
        """Latest estimate; ``inf`` when latency is flat/shrinking."""
        return self._time_to_violation_s

    def average_latency_s(self) -> float | None:
        """Latest window-average latency (None without samples)."""
        return self._average_latency_s

    @property
    def limit_violated(self) -> bool:
        """Whether the latest average exceeds the limit."""
        return (
            self._average_latency_s is not None
            and self._average_latency_s > self.latency_limit_s
        )

    def violation_fraction(self) -> float:
        """Fraction of checks that found the limit violated."""
        if self._checks == 0:
            return 0.0
        return self.violations / self._checks
