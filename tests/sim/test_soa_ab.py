"""SoA message-plane A/B bit-identity across policies, arrivals, clusters.

``EngineConfig.vector_messages`` switches the intra-socket message plane
between the object queues (scalar path) and the struct-of-arrays compact
columns (vectorized drain, bank-fabricated arrivals).  The flag is a pure
execution strategy: every observable of a run — energy, query counts,
latencies, samples, machine clocks and counters — must be *bit-identical*
either way.  These tests A/B every registered control policy under both
arrival modes, both macro-stepping modes, and the cluster presets, and
compare the full result surface with ``==`` (no tolerances).
"""

import pytest

from repro.dbms.config import EngineConfig
from repro.hardware.cluster import homogeneous_cluster, mixed_cluster
from repro.loadprofiles import constant_profile, spike_profile
from repro.sim import RunConfiguration, SimulationRunner, registered_policies
from repro.workloads import KeyValueWorkload, WorkloadVariant


def _run(policy, *, vector, poisson=False, macro=True, cluster=None):
    config = RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=spike_profile(duration_s=3.0),
        policy=policy,
        seed=5,
        macro_step=macro,
        poisson_arrivals=poisson,
        cluster=cluster,
        engine_config=EngineConfig(vector_messages=vector),
    )
    runner = SimulationRunner(config)
    result = runner.run()
    return result, runner


def _assert_identical(vec, obj):
    """Full-surface bitwise comparison of two RunResults."""
    assert vec.total_energy_j == obj.total_energy_j
    assert vec.queries_submitted == obj.queries_submitted
    assert vec.queries_completed == obj.queries_completed
    assert vec.latencies_s == obj.latencies_s
    assert vec.duration_s == obj.duration_s
    assert len(vec.samples) == len(obj.samples)
    for a, b in zip(vec.samples, obj.samples):
        assert a == b


class TestEveryPolicyBothArrivalModes:
    @pytest.mark.parametrize("policy", sorted(registered_policies()))
    @pytest.mark.parametrize("poisson", [False, True])
    def test_vector_scalar_identity(self, policy, poisson):
        vec, runner_vec = _run(policy, vector=True, poisson=poisson)
        obj, runner_obj = _run(policy, vector=False, poisson=poisson)
        _assert_identical(vec, obj)
        assert runner_vec.machine.time_s == runner_obj.machine.time_s
        assert (
            runner_vec.machine.true_total_energy_j()
            == runner_obj.machine.true_total_energy_j()
        )
        # Worker-pool counters fold the same messages either way.
        assert (
            runner_vec.engine.pool.total_stats()
            == runner_obj.engine.pool.total_stats()
        )

    def test_vector_run_actually_uses_banks(self):
        """The identity tests are vacuous if the vector run fabricated no
        compact banks: pin that arrivals took the bank path."""
        _, runner = _run("baseline", vector=True)
        assert runner.engine.tracker.dispatched_count > 0
        assert runner.engine.tracker.completed_count > 0
        # The object-lane dict of per-query state stays empty: every
        # query of this single-stage workload lived in the dense store.
        assert runner.engine.tracker._queries == {}


class TestPerTickModeAndClusters:
    @pytest.mark.parametrize("policy", ["baseline", "ecl"])
    def test_identity_without_macro_stepping(self, policy):
        vec, _ = _run(policy, vector=True, macro=False)
        obj, _ = _run(policy, vector=False, macro=False)
        _assert_identical(vec, obj)

    @pytest.mark.parametrize(
        "cluster_factory", [homogeneous_cluster, mixed_cluster]
    )
    def test_identity_on_cluster_presets(self, cluster_factory):
        cluster = cluster_factory(3)
        vec, _ = _run("ecl-cluster", vector=True, cluster=cluster)
        obj, _ = _run("ecl-cluster", vector=False, cluster=cluster)
        _assert_identical(vec, obj)


class TestMigrationInteraction:
    def test_identity_through_consolidation_waves(self):
        """Freeze/evict/adopt during migrations must preserve the SoA
        invariants: the consolidation policy drains sockets (evicting
        compact columns into the object transfer path) and wakes them
        again, and the result surface must not move a bit."""
        config_kwargs = dict(
            workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
            profile=constant_profile(duration_s=4.0, fraction=0.18),
            policy="ecl-consolidate",
            seed=5,
        )
        results = {}
        for vector in (True, False):
            config = RunConfiguration(
                engine_config=EngineConfig(vector_messages=vector),
                **config_kwargs,
            )
            runner = SimulationRunner(config)
            runner.policy.cooldown_intervals = 0
            results[vector] = (runner.run(), runner)
        _assert_identical(results[True][0], results[False][0])
        assert len(results[True][1].engine.migration_log) == len(
            results[False][1].engine.migration_log
        )
