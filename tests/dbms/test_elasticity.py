"""Tests for the elastic worker pool, including full-socket parking."""

import pytest

from repro.dbms.engine import DatabaseEngine
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage
from repro.workloads.micro import COMPUTE_BOUND


def modeled_query(arrival, partitions, instructions=20_000):
    stage = QueryStage(
        [
            Message(query_id=-1, target_partition=p, cost=WorkCost(instructions))
            for p in partitions
        ]
    )
    return Query(arrival_s=arrival, stages=[stage], coordinator_socket=0)


@pytest.fixture
def loaded_engine(engine: DatabaseEngine):
    engine.set_workload_characteristics(COMPUTE_BOUND)
    return engine


class TestPool:
    def test_one_worker_per_thread(self, engine):
        pool = engine.pool
        total = engine.machine.params.total_threads
        assert sum(
            len(pool.workers_on_socket(s)) for s in engine.hubs
        ) == total

    def test_sync_parks_and_unparks(self, engine):
        pool = engine.pool
        socket = engine.machine.topology.socket(0)
        threads = sorted(socket.thread_ids())
        pool.sync_with_threads(0, threads[:2])
        assert pool.active_count(0) == 2
        pool.sync_with_threads(0, threads)
        assert pool.active_count(0) == len(threads)

    def test_parking_releases_ownership(self, engine):
        pool = engine.pool
        worker = pool.workers_on_socket(0)[0]
        engine.hubs[0].acquire_specific(worker.worker_id, 0)
        pool.park_all(0)
        assert engine.hubs[0].owner_of(0) is None


class TestFullSocketPark:
    def test_queued_messages_survive_a_parked_socket(self, loaded_engine):
        """Park every worker of a socket while its hub holds messages.

        The messages must neither be lost nor processed while parked, and
        must drain normally after unparking — the invariant consolidation
        relies on before it migrates a drained socket's partitions.
        """
        machine = loaded_engine.machine
        machine.apply_socket_threads(1, set())  # parks workers via engine
        # Partition 1 lives on socket 1; the flush still delivers there.
        loaded_engine.submit(modeled_query(0.0, [1, 3]))
        loaded_engine.tick(0.001)
        queued = loaded_engine.hubs[1].pending_messages
        assert queued >= 1
        for _ in range(3):
            result = loaded_engine.tick(0.001)
            assert not result.completions
        assert loaded_engine.hubs[1].pending_messages == queued
        # Unpark: the queue drains and the query completes exactly once.
        socket = machine.topology.socket(1)
        machine.apply_socket_threads(1, set(socket.thread_ids()))
        done = []
        for _ in range(4):
            done.extend(loaded_engine.tick(0.001).completions)
        assert len(done) == 1
        assert loaded_engine.pending_messages() == 0

    def test_parked_queue_is_migratable(self, loaded_engine):
        """A parked socket's queued messages can leave via migration.

        This is exactly the consolidation drain path: all workers parked,
        messages still queued, and the migration protocol ships the queue
        to another socket where it completes.
        """
        machine = loaded_engine.machine
        machine.apply_socket_threads(1, set())
        loaded_engine.submit(modeled_query(0.0, [1]))
        loaded_engine.tick(0.001)
        assert loaded_engine.hubs[1].pending_messages == 1
        record = loaded_engine.request_migration(1, 0)
        done = []
        for _ in range(5):
            done.extend(loaded_engine.tick(0.001).completions)
        assert record.messages_in_flight == 1
        assert loaded_engine.partitions.socket_of(1) == 0
        assert len(done) == 1
        assert loaded_engine.pending_messages() == 0
