"""Tests for the load generator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.loadprofiles import constant_profile
from repro.sim.loadgen import LoadGenerator
from repro.storage.partition import PartitionMap
from repro.workloads import KeyValueWorkload, WorkloadVariant


@pytest.fixture
def pmap():
    return PartitionMap(48, 2)


def make_generator(pmap, fraction=0.5, poisson=False, seed=0):
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    profile = constant_profile(fraction, duration_s=10.0)
    return LoadGenerator(workload, profile, pmap, seed=seed, poisson=poisson), workload


class TestDeterministicArrivals:
    def test_rate_matches_profile(self, pmap):
        gen, workload = make_generator(pmap, fraction=0.5)
        assert gen.rate_qps(1.0) == pytest.approx(workload.nominal_peak_qps / 2)

    def test_arrival_count_over_a_second(self, pmap):
        gen, workload = make_generator(pmap, fraction=0.5)
        total = 0
        for i in range(1000):
            total += len(gen.arrivals(i * 0.001, 0.001))
        expected = workload.nominal_peak_qps * 0.5
        assert total == pytest.approx(expected, rel=0.01)

    def test_zero_load_generates_nothing(self, pmap):
        gen, _ = make_generator(pmap, fraction=0.0)
        assert gen.arrivals(0.0, 0.01) == []

    def test_arrival_times_inside_tick(self, pmap):
        gen, _ = make_generator(pmap, fraction=1.0)
        queries = gen.arrivals(5.0, 0.01)
        assert queries
        for query in queries:
            assert 5.0 <= query.arrival_s < 5.01

    def test_reproducible(self, pmap):
        counts = []
        for _ in range(2):
            gen, _ = make_generator(pmap, fraction=0.4, seed=3)
            counts.append(
                [len(gen.arrivals(i * 0.002, 0.002)) for i in range(500)]
            )
        assert counts[0] == counts[1]

    def test_invalid_tick(self, pmap):
        gen, _ = make_generator(pmap)
        with pytest.raises(SimulationError):
            gen.arrivals(0.0, 0.0)


class TestPoissonArrivals:
    def test_mean_rate_preserved(self, pmap):
        gen, workload = make_generator(pmap, fraction=0.5, poisson=True, seed=5)
        total = sum(len(gen.arrivals(i * 0.001, 0.001)) for i in range(2000))
        expected = workload.nominal_peak_qps * 0.5 * 2.0
        assert total == pytest.approx(expected, rel=0.1)

    def test_has_variance(self, pmap):
        gen, _ = make_generator(pmap, fraction=1.0, poisson=True, seed=5)
        counts = [len(gen.arrivals(i * 0.01, 0.01)) for i in range(200)]
        assert np.std(counts) > 0


class TestRealMode:
    def test_real_mode_produces_operation_messages(self, pmap):
        import numpy as np

        from repro.workloads import TatpWorkload, WorkloadVariant

        rng = np.random.default_rng(1)
        workload = TatpWorkload(WorkloadVariant.INDEXED)
        workload.setup_real(pmap, scale=50, rng=rng)
        gen = LoadGenerator(
            workload,
            constant_profile(1.0, duration_s=10.0),
            pmap,
            seed=2,
            real_mode=True,
        )
        queries = []
        t = 0.0
        while not queries:
            queries = gen.arrivals(t, 0.001)
            t += 0.001
        for query in queries:
            for message in query.stages[0].messages:
                assert not message.is_modeled
