"""Simulation-core throughput: engine+machine ticks per second.

Not a paper figure — a harness benchmark guarding the fast simulation
core (memoized hardware step resolution, idle fast path, macro-tick span
stepping, vectorized arrival/completion hot path).  Two parts:

* a sine/SSB microbenchmark asserting the absolute ticks/s floor that
  keeps the full experiment grid tractable, plus the telemetry
  pay-for-use bound;
* the **Twitter-day macro matrix** — one simulated day (night included)
  replayed per registered policy with macro-stepping on and off.  It
  asserts macro on/off bit-identity, the headline speedup, and a
  generous ticks/s floor, and writes the numbers to
  ``BENCH_tick_throughput.json`` at the repo root (uploaded as a CI
  artifact; the CI smoke fails when the macro-on rate drops below the
  checked-in floor).

Environment knobs: ``REPRO_BENCH_DAY_DURATION`` scales the simulated
day (default 86.4 s = 1000x-compressed 24 h).
"""

import json
import os
import time
from pathlib import Path

from repro.environment import make_environment
from repro.hardware.cluster import homogeneous_cluster
from repro.loadprofiles import sine_profile, twitter_day_profile
from repro.sim import RunConfiguration, SimulationRunner, registered_policies
from repro.telemetry import PhaseTimingObserver, TraceRecorder
from repro.workloads import KeyValueWorkload, SsbWorkload, WorkloadVariant

from _shared import heading

#: Simulated seconds per measured microbenchmark run.
DURATION_S = 4.0

#: Conservative floor — the seed tree ran ~1.6k ticks/s for the ECL
#: policy on the reference container; the fast core runs ~3x that.
MIN_TICKS_PER_S = 1000.0

#: The Twitter-day trace: heavy KV point-lookup queries (1000 ops each,
#: ~32 qps at peak) over a full compressed day with a true-zero night.
DAY_SEED = 11
DAY_OPS_PER_QUERY = 1000

#: Generous CI floors for the macro-on day replay of the headline
#: policy.  Measured on the reference container: ~70k ticks/s and
#: 3-5x over per-tick mode; the floors leave wide scheduling headroom.
HEADLINE_POLICY = "baseline"
MIN_DAY_TICKS_PER_S = 10000.0
MIN_DAY_SPEEDUP = 1.5

#: Per-policy macro-on floors for the control-heavy policies.  The
#: composite span executor keeps the ECL family within a small factor
#: of the uncontrolled baseline (reference container: ecl ~24-28k,
#: ecl-consolidate ~26k, ondemand ~54k ticks/s); the floors stay ~2x
#: below the measured rates to absorb CI scheduling noise.
MIN_DAY_POLICY_TICKS_PER_S = {
    "ecl": 12000.0,
    "ecl-consolidate": 12000.0,
    "ecl-cluster": 12000.0,
    "ondemand": 25000.0,
}

#: Per-policy *macro-off* (live-tick) floors.  Every tick takes the full
#: per-tick path here, so this row is what the struct-of-arrays message
#: plane and the machine-step fast paths are responsible for: the SoA
#: drain loop lifted the live baseline row from ~14.6k to ~27-32k
#: ticks/s on the reference container (ecl ~17-19k, ondemand ~33k).
#: Floors sit ~2x under the measured rates.
MIN_DAY_LIVE_TICKS_PER_S = {
    "baseline": 16000.0,
    "ecl": 9000.0,
    "ecl-consolidate": 9000.0,
    "ecl-cluster": 9000.0,
    "ondemand": 16000.0,
}

#: The cluster fleet row: the same day replayed on a multi-node machine
#: under ``ecl-cluster`` (node drain, power-off, boot cycles).  The
#: node-axis step retires the whole fleet's counters in vectorized bank
#: passes and node boots fold into macro spans, so the fleet row runs
#: within ~2x of single-node throughput (reference container: ~15-19k
#: ticks/s macro-on at 3 nodes; the floor locks in the vectorization
#: win while leaving slack for slow CI machines).
CLUSTER_NODES = 3
MIN_CLUSTER_TICKS_PER_S = 4000.0

#: The environment row: the fleet day under ``ecl-carbon`` with the
#: diurnal-carbon scenario attached.  The environment adds one span cap
#: per signal change (23 over the day) plus a vectorized accounting
#: fold per committed span — a constant-factor overhead, so the floor
#: matches the plain cluster row.
MIN_ENVIRONMENT_TICKS_PER_S = 4000.0

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_tick_throughput.json"


def day_duration_s() -> float:
    return float(os.environ.get("REPRO_BENCH_DAY_DURATION", "86.4"))


def _measure(policy: str, observers=None) -> tuple[float, float]:
    config = RunConfiguration(
        workload=SsbWorkload(),
        profile=sine_profile(low=0.1, high=0.8, period_s=2.0, duration_s=DURATION_S),
        policy=policy,
        seed=7,
    )
    runner = SimulationRunner(config, observers=observers or [])
    ticks = round(DURATION_S / config.tick_s)
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    assert result.queries_completed > 0
    return ticks / elapsed, elapsed


def _measure_day(
    policy: str, macro: bool, nodes: int = 1, environment: str | None = None
) -> dict:
    duration = day_duration_s()
    config = RunConfiguration(
        workload=KeyValueWorkload(
            WorkloadVariant.NON_INDEXED, ops_per_query=DAY_OPS_PER_QUERY
        ),
        profile=twitter_day_profile(duration_s=duration),
        policy=policy,
        seed=DAY_SEED,
        macro_step=macro,
        cluster=homogeneous_cluster(nodes) if nodes > 1 else None,
        environment=(
            make_environment(environment, duration)
            if environment is not None
            else None
        ),
    )
    runner = SimulationRunner(config)
    ticks = round(duration / config.tick_s)
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    cell = {
        "wall_s": round(elapsed, 4),
        "ticks": ticks,
        "ticks_per_s": round(ticks / elapsed, 1),
        "spans": runner.macro_spans,
        "ticks_skipped": runner.macro_ticks_skipped,
        "energy_j": result.total_energy_j,
        "queries_submitted": result.queries_submitted,
        "queries_completed": result.queries_completed,
    }
    if environment is not None:
        cell["environment"] = environment
        cell["gco2_total_g"] = result.gco2_total_g
        cell["cost_usd"] = result.cost_usd
    if macro:
        # Span-cut attribution: which component bounded each span /
        # refused each attempt, span-length histogram, in-span replays.
        cell["span_cuts"] = runner.span_cut_stats()
    return cell


def test_tick_throughput(run_once):
    rates = run_once(
        lambda: {policy: _measure(policy) for policy in ("baseline", "ecl")}
    )

    heading("Simulation core — engine ticks per second")
    for policy, (ticks_per_s, elapsed) in rates.items():
        print(f"{policy:>9}: {ticks_per_s:10,.0f} ticks/s  ({elapsed:.2f} s wall)")

    for policy, (ticks_per_s, _) in rates.items():
        assert ticks_per_s > MIN_TICKS_PER_S, policy


def test_telemetry_overhead(run_once):
    """Telemetry must be pay-for-use: with no observers attached the
    tick rate stays above the floor, and full tracing (event recorder +
    phase timer) costs at most half the throughput."""
    rates = run_once(
        lambda: {
            "off": _measure("ecl"),
            "on": _measure("ecl", [TraceRecorder(), PhaseTimingObserver()]),
        }
    )

    heading("Telemetry overhead — ECL ticks per second")
    for mode, (ticks_per_s, elapsed) in rates.items():
        print(f"{mode:>9}: {ticks_per_s:10,.0f} ticks/s  ({elapsed:.2f} s wall)")
    off, on = rates["off"][0], rates["on"][0]
    print(f" overhead: {1 - on / off:8.1%}")

    assert off > MIN_TICKS_PER_S
    assert on > 0.5 * off


def test_twitter_day_macro_matrix(run_once):
    """One simulated day per policy, macro-stepping on vs off.

    Asserts bit-identity (energy and query counts) per policy, the
    headline speedup and ticks/s floor, and writes the whole matrix to
    ``BENCH_tick_throughput.json`` for the CI artifact.
    """
    policies = sorted(registered_policies())
    cluster_row = f"ecl-cluster@{CLUSTER_NODES}n"

    def _all_rows():
        rows = {
            policy: {
                "macro_off": _measure_day(policy, False),
                "macro_on": _measure_day(policy, True),
            }
            for policy in policies
        }
        # The fleet row: the same day on a multi-node machine, where the
        # cluster controller actually drains, powers off, and reboots
        # whole nodes (on one node it degrades to the plain ECL).
        rows[cluster_row] = {
            "macro_off": _measure_day("ecl-cluster", False, nodes=CLUSTER_NODES),
            "macro_on": _measure_day("ecl-cluster", True, nodes=CLUSTER_NODES),
        }
        return rows

    matrix = run_once(_all_rows)

    heading("Twitter-day trace — macro-stepping on vs off")
    print(
        f"{'policy':>16} {'off ticks/s':>12} {'on ticks/s':>12} "
        f"{'speedup':>8} {'skipped':>14}"
    )
    for policy, cell in matrix.items():
        off, on = cell["macro_off"], cell["macro_on"]
        speedup = off["wall_s"] / on["wall_s"]
        cell["speedup"] = round(speedup, 2)
        cell["bit_identical"] = (
            off["energy_j"] == on["energy_j"]
            and off["queries_submitted"] == on["queries_submitted"]
            and off["queries_completed"] == on["queries_completed"]
        )
        print(
            f"{policy:>16} {off['ticks_per_s']:12,.0f} {on['ticks_per_s']:12,.0f} "
            f"{speedup:7.2f}x {on['ticks_skipped']:6}/{on['ticks']}"
        )

    for policy, cell in matrix.items():
        assert cell["bit_identical"], policy
        assert cell["macro_off"]["ticks_skipped"] == 0, policy
        assert cell["macro_on"]["ticks_skipped"] > 0, policy

    headline = matrix[HEADLINE_POLICY]
    payload = {
        "benchmark": "tick_throughput",
        "trace": {
            "profile": "twitter-day",
            "duration_s": day_duration_s(),
            "workload": "kv-non-indexed",
            "ops_per_query": DAY_OPS_PER_QUERY,
            "seed": DAY_SEED,
        },
        "floors": {
            "headline_policy": HEADLINE_POLICY,
            "min_ticks_per_s_macro_on": MIN_DAY_TICKS_PER_S,
            "min_speedup": MIN_DAY_SPEEDUP,
            "per_policy_min_ticks_per_s": MIN_DAY_POLICY_TICKS_PER_S,
            "per_policy_min_live_ticks_per_s": MIN_DAY_LIVE_TICKS_PER_S,
            "cluster_row": cluster_row,
            "cluster_nodes": CLUSTER_NODES,
            "min_cluster_ticks_per_s": MIN_CLUSTER_TICKS_PER_S,
        },
        "policies": matrix,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")

    # CI regression smoke: generous floors on the headline policy, plus
    # per-policy floors on the control-heavy policies the composite span
    # executor is responsible for keeping fast.
    assert headline["macro_on"]["ticks_per_s"] > MIN_DAY_TICKS_PER_S
    assert headline["speedup"] > MIN_DAY_SPEEDUP
    for policy, floor in MIN_DAY_POLICY_TICKS_PER_S.items():
        assert matrix[policy]["macro_on"]["ticks_per_s"] > floor, policy
    # Live-tick floors: macro-stepping off exercises the full per-tick
    # path on every tick, so these guard the SoA message plane and the
    # machine-step fast paths against regression.
    for policy, floor in MIN_DAY_LIVE_TICKS_PER_S.items():
        assert matrix[policy]["macro_off"]["ticks_per_s"] > floor, policy
    assert matrix[cluster_row]["macro_on"]["ticks_per_s"] > MIN_CLUSTER_TICKS_PER_S


def test_environment_day_floor(run_once):
    """The fleet day with the diurnal-carbon scenario attached.

    The environment layer cuts spans at every signal change and folds
    carbon/cost accounting over each committed span; both are
    constant-factor costs, so the macro-on tick rate must hold the same
    floor as the plain cluster row — and the accounting must stay
    bit-identical between stepping modes along the way.
    """
    cells = run_once(
        lambda: {
            "macro_off": _measure_day(
                "ecl-carbon",
                False,
                nodes=CLUSTER_NODES,
                environment="diurnal-carbon",
            ),
            "macro_on": _measure_day(
                "ecl-carbon",
                True,
                nodes=CLUSTER_NODES,
                environment="diurnal-carbon",
            ),
        }
    )

    off, on = cells["macro_off"], cells["macro_on"]
    heading("Environment-attached day — ecl-carbon @ diurnal-carbon")
    for mode, cell in cells.items():
        print(
            f"{mode:>10}: {cell['ticks_per_s']:10,.0f} ticks/s  "
            f"{cell['gco2_total_g']:10.1f} gCO2  ${cell['cost_usd']:.4f}"
        )

    assert on["ticks_skipped"] > 0
    assert off["ticks_skipped"] == 0
    assert on["gco2_total_g"] > 0
    # Accounting is part of the bit-identity contract.
    assert on["energy_j"] == off["energy_j"]
    assert on["gco2_total_g"] == off["gco2_total_g"]
    assert on["cost_usd"] == off["cost_usd"]
    assert on["ticks_per_s"] > MIN_ENVIRONMENT_TICKS_PER_S


def test_tick_throughput_extra_info(benchmark):
    """Record the ECL tick rate in the pytest-benchmark report."""
    ticks_per_s, _ = benchmark.pedantic(
        _measure, args=("ecl",), rounds=1, iterations=1
    )
    benchmark.extra_info["ticks_per_s"] = round(ticks_per_s)
