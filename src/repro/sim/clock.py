"""Discrete tick timekeeping for the simulation pipeline.

The runner used to scatter its scheduling arithmetic across the tick
loop: ``int(round(duration_s / tick_s))`` for the step count, and
repeated ``now + 1e-12 >= deadline`` epsilon comparisons for the sample
cadence and the §6.3 workload switch.  Those comparisons are easy to get
subtly wrong — accumulated float error across thousands of
non-divisible ticks makes a bare ``>=`` fire one tick late — so they
live here once:

* :class:`TickClock` — the authoritative tick count of a run;
* :class:`PeriodicDeadline` — a repeating deadline (sampling, governor
  decision periods) with drift-free epsilon comparisons;
* :class:`OneShotDeadline` — a single deadline (the workload switch).

Every policy, observer, and the runner itself schedule against these
helpers; nothing else in :mod:`repro.sim` compares simulation times
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

#: Slack for comparing accumulated simulation times against deadlines.
#: Tick timestamps are sums of thousands of float ``dt`` additions, so a
#: deadline that is *mathematically* on a tick boundary may be missed by
#: a few ULPs without it.
EPSILON_S = 1e-12


def at_or_after(now_s: float, deadline_s: float) -> bool:
    """Whether ``now_s`` has reached ``deadline_s``, within float slack."""
    return now_s + EPSILON_S >= deadline_s


def span_ticks_until(now_s: float, deadline_s: float, tick_s: float) -> int:
    """How many whole ticks fit strictly before ``deadline_s``.

    Used by the macro-stepping runner to size a steady-state span: the
    count is one tick *short* of the arithmetic floor, so the tick on
    which the deadline fires — and the tick before it — always execute
    live.  The margin absorbs both the :data:`EPSILON_S` slack of
    :func:`at_or_after` and the ULP-level drift of folded tick
    timestamps, making "strictly before" robust rather than exact.
    """
    if deadline_s == float("inf"):
        raise SimulationError("span_ticks_until needs a finite deadline")
    return int((deadline_s - now_s) / tick_s) - 1


@dataclass(frozen=True)
class TickClock:
    """The fixed-step time base of one simulation run.

    Attributes:
        tick_s: simulation step width.
        duration_s: requested run length.
    """

    tick_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise SimulationError(f"tick_s must be > 0, got {self.tick_s}")
        if self.duration_s < 0:
            raise SimulationError(
                f"duration_s must be >= 0, got {self.duration_s}"
            )

    @property
    def tick_count(self) -> int:
        """Number of whole ticks in the run.

        A non-divisible ``duration_s / tick_s`` ratio rounds to the
        nearest tick (not down): a 1.0 s run at 0.3 s ticks executes 3
        ticks, a 1.0 s run at 0.4 s ticks executes 2 — the run length is
        matched as closely as the step width allows, and a duration that
        is one ULP short of a whole multiple still yields that multiple.
        """
        return int(round(self.duration_s / self.tick_s))

    @property
    def realized_duration_s(self) -> float:
        """The duration actually simulated (``tick_count * tick_s``)."""
        return self.tick_count * self.tick_s


class PeriodicDeadline:
    """A repeating deadline checked against the simulation clock.

    Two advancement styles cover every periodic schedule in the tree:

    * :meth:`advance` steps the deadline by exactly one period — the
      sampling cadence: deadlines stay anchored to the original phase
      (0, T, 2T, ...) no matter when the check happens;
    * :meth:`restart` re-anchors the deadline at ``now + period`` — the
      ondemand governor's decision timer: the next decision is a full
      period after the previous one *fired*.
    """

    def __init__(self, period_s: float, first_due_s: float = 0.0):
        if period_s <= 0:
            raise SimulationError(f"period_s must be > 0, got {period_s}")
        self.period_s = period_s
        self._next_due_s = first_due_s

    @property
    def next_due_s(self) -> float:
        """The deadline currently armed."""
        return self._next_due_s

    def due(self, now_s: float) -> bool:
        """Whether the deadline has been reached (epsilon-tolerant)."""
        return at_or_after(now_s, self._next_due_s)

    def advance(self) -> None:
        """Arm the next phase-anchored deadline (one period later)."""
        self._next_due_s += self.period_s

    def restart(self, now_s: float) -> None:
        """Re-anchor: next deadline one full period after ``now_s``."""
        self._next_due_s = now_s + self.period_s


class OneShotDeadline:
    """A deadline that fires exactly once (or never, when unset).

    ``OneShotDeadline(None)`` is the disarmed schedule: :meth:`poll`
    always returns False.  This lets callers model optional events (the
    workload switch) without special-casing ``None`` at every check.
    """

    def __init__(self, at_s: float | None):
        self._at_s = at_s
        self._fired = at_s is None

    @property
    def fired(self) -> bool:
        """Whether the deadline has already fired (or was never armed)."""
        return self._fired

    @property
    def at_s(self) -> float | None:
        """The armed deadline time (None when disarmed)."""
        return self._at_s

    def poll(self, now_s: float) -> bool:
        """True exactly once: the first check at or after the deadline."""
        if self._fired:
            return False
        assert self._at_s is not None
        if at_or_after(now_s, self._at_s):
            self._fired = True
            return True
        return False
