"""Property-based tests on the engine: conservation and blending."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dbms.engine import DatabaseEngine
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage
from repro.hardware.machine import Machine
from repro.workloads.micro import COMPUTE_BOUND, MEMORY_BOUND


@st.composite
def query_specs(draw):
    """A batch of query shapes: (partitions, instructions, stages)."""
    count = draw(st.integers(min_value=1, max_value=12))
    specs = []
    for _ in range(count):
        fan = draw(st.integers(min_value=1, max_value=6))
        targets = draw(
            st.lists(
                st.integers(min_value=0, max_value=47),
                min_size=fan,
                max_size=fan,
                unique=True,
            )
        )
        instructions = draw(st.floats(min_value=1e3, max_value=5e6))
        two_stage = draw(st.booleans())
        specs.append((targets, instructions, two_stage))
    return specs


@settings(max_examples=25, deadline=None)
@given(specs=query_specs())
def test_property_every_query_completes_exactly_once(specs):
    """Conservation: submitted = completed once the queues drain."""
    machine = Machine(seed=1)
    engine = DatabaseEngine(machine)
    engine.set_workload_characteristics(COMPUTE_BOUND)

    for targets, instructions, two_stage in specs:
        stage0 = QueryStage(
            [
                Message(
                    query_id=-1,
                    target_partition=p,
                    cost=WorkCost(instructions / len(targets)),
                )
                for p in targets
            ]
        )
        stages = [stage0]
        if two_stage:
            stages.append(
                QueryStage(
                    [
                        Message(
                            query_id=-1,
                            target_partition=targets[0],
                            cost=WorkCost(1000.0),
                        )
                    ]
                )
            )
        engine.submit(Query(arrival_s=0.0, stages=stages))

    completed = 0
    for _ in range(200):
        completed += len(engine.tick(0.001).completions)
        if engine.pending_messages() == 0 and engine.tracker.in_flight == 0:
            break
    assert completed == len(specs)
    assert engine.tracker.in_flight == 0
    assert engine.pending_messages() == 0
    # Latency samples exist for every completion.
    assert engine.latency.total_completed == len(specs)


@settings(max_examples=20, deadline=None)
@given(
    compute_weight=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_blend_stays_within_component_bounds(compute_weight):
    """The socket blend never leaves the envelope of its components."""
    machine = Machine(seed=2)
    engine = DatabaseEngine(machine)
    machine.cstates.set_active_threads(set())  # freeze queues

    total = 1e6
    compute_instr = total * compute_weight
    mem_instr = total - compute_instr
    stage = []
    if compute_instr > 0:
        stage.append(
            Message(
                query_id=-1,
                target_partition=0,
                cost=WorkCost(compute_instr),
                characteristics=COMPUTE_BOUND,
            )
        )
    if mem_instr > 0:
        stage.append(
            Message(
                query_id=-1,
                target_partition=2,
                cost=WorkCost(mem_instr),
                characteristics=MEMORY_BOUND,
            )
        )
    engine.submit(Query(arrival_s=0.0, stages=[QueryStage(stage)]))
    engine.tick(0.001)

    blended = machine.socket_load(0).characteristics
    low_bpi = min(COMPUTE_BOUND.bytes_per_instr, MEMORY_BOUND.bytes_per_instr)
    high_bpi = max(COMPUTE_BOUND.bytes_per_instr, MEMORY_BOUND.bytes_per_instr)
    assert low_bpi - 1e-9 <= blended.bytes_per_instr <= high_bpi + 1e-9
    expected_bpi = (
        COMPUTE_BOUND.bytes_per_instr * compute_weight
        + MEMORY_BOUND.bytes_per_instr * (1.0 - compute_weight)
    )
    assert blended.bytes_per_instr == pytest.approx(expected_bpi, abs=1e-6)
