"""The four micro workloads of the paper's §2 and §4 experiments.

These are pure hardware-characteristic definitions (they never touch the
DBMS): the energy-profile figures evaluate configurations directly
against the performance model under each of them.

* **compute-bound** — incrementing thread-local counters (Fig. 9): no
  memory traffic, near-ideal IPC; the profile is the clean frequency fan
  where the lowest core and uncore clocks are most energy-efficient.
* **memory-bound** — a column scan (Fig. 10(a)): throughput is capped by
  the uncore-governed bandwidth, so high core clocks are wasted and a
  high uncore clock is good for *both* performance and efficiency.
* **atomic contention** — all threads atomically increment one shared
  variable (Fig. 10(b)): throughput is the serial hand-off rate of one
  cache line.  Two HyperThreads of a single core at turbo keep the line
  core-local and beat the all-cores baseline by ~3× while allowing the
  minimum uncore clock (≈ 90 % energy saving).
* **hash-table insert** — multiple threads insert into a shared hash
  table (Fig. 10(c)): the same effect at a smaller scale (≈ 42 % saving,
  ≈ 8 % response benefit) because the hot metadata line is touched only
  once per few hundred instructions.
"""

from __future__ import annotations

from repro.hardware.perfmodel import WorkloadCharacteristics

COMPUTE_BOUND = WorkloadCharacteristics(
    name="compute-bound",
    base_cpi=0.33,
    ht_speedup=1.30,
)
"""Thread-local counter increments: pure core-clock scaling."""

MEMORY_BOUND = WorkloadCharacteristics(
    name="memory-bound",
    base_cpi=0.70,
    ht_speedup=1.10,
    bytes_per_instr=8.0,
)
"""Column scan over a large array: bandwidth-bound at every clock."""

ATOMIC_CONTENTION = WorkloadCharacteristics(
    name="atomic-contention",
    base_cpi=1.00,
    ht_speedup=1.05,
    bytes_per_instr=0.0,
    atomic_ops_per_instr=0.10,
    atomic_local_ns=70.0,
    contention_queue_factor=0.30,
)
"""All threads atomically increment one shared variable."""

HASHTABLE_INSERT = WorkloadCharacteristics(
    name="hashtable-insert",
    base_cpi=0.70,
    ht_speedup=1.30,
    bytes_per_instr=0.5,
    miss_rate=0.0005,
    atomic_ops_per_instr=1.0 / 250.0,
    atomic_local_ns=66.0,
    contention_queue_factor=0.01,
)
"""Parallel inserts into one shared hash table (hot metadata line)."""

MICRO_WORKLOADS: dict[str, WorkloadCharacteristics] = {
    c.name: c
    for c in (COMPUTE_BOUND, MEMORY_BOUND, ATOMIC_CONTENTION, HASHTABLE_INSERT)
}
"""All micro workloads by name."""
