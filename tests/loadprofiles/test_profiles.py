"""Tests for load profiles."""

import pytest

from repro.errors import SimulationError
from repro.loadprofiles import (
    constant_profile,
    sine_profile,
    spike_profile,
    step_profile,
    twitter_profile,
)
from repro.loadprofiles.base import SegmentProfile


class TestSegmentProfile:
    def test_interpolation(self):
        profile = SegmentProfile("p", [(0.0, 0.0), (10.0, 1.0)])
        assert profile.fraction(5.0) == pytest.approx(0.5)
        assert profile.fraction(0.0) == pytest.approx(0.0)
        assert profile.fraction(10.0) == pytest.approx(1.0)

    def test_outside_duration_is_zero(self):
        profile = SegmentProfile("p", [(0.0, 0.5), (10.0, 0.5)])
        assert profile.fraction(-1.0) == 0.0
        assert profile.fraction(11.0) == 0.0

    def test_unordered_points_rejected(self):
        with pytest.raises(SimulationError):
            SegmentProfile("p", [(5.0, 0.1), (1.0, 0.2)])

    def test_negative_fraction_rejected(self):
        with pytest.raises(SimulationError):
            SegmentProfile("p", [(0.0, -0.1), (1.0, 0.2)])

    def test_single_point_rejected(self):
        with pytest.raises(SimulationError):
            SegmentProfile("p", [(0.0, 0.1)])

    def test_average_and_peak(self):
        profile = SegmentProfile("p", [(0.0, 0.0), (10.0, 1.0)])
        assert profile.average_fraction() == pytest.approx(0.5, abs=0.02)
        assert profile.peak_fraction() == pytest.approx(1.0, abs=0.05)


class TestSpike:
    def test_covers_full_range(self):
        profile = spike_profile()
        assert profile.duration_s == pytest.approx(180.0)
        assert profile.peak_fraction() > 1.0  # deliberate overload
        fractions = [profile.fraction(t) for t in range(0, 180, 5)]
        assert min(fractions) < 0.1
        assert max(fractions) > 1.0

    def test_overload_window_location(self):
        """The overload plateau sits around 80-100 s (Fig. 13)."""
        profile = spike_profile()
        assert profile.fraction(90.0) > 1.0
        assert profile.fraction(40.0) < 1.0
        assert profile.fraction(150.0) < 0.5

    def test_scaling(self):
        profile = spike_profile(duration_s=60.0)
        assert profile.duration_s == pytest.approx(60.0)
        assert profile.fraction(30.0) > 1.0  # overload scaled to 1/3 position


class TestTwitter:
    def test_deterministic(self):
        a = twitter_profile(seed=1)
        b = twitter_profile(seed=1)
        assert [a.fraction(t) for t in range(0, 180, 7)] == [
            b.fraction(t) for t in range(0, 180, 7)
        ]

    def test_has_bursts(self):
        """The profile must alternate sharply (sudden spikes, Fig. 14)."""
        profile = twitter_profile()
        values = [profile.fraction(t * 0.5) for t in range(360)]
        rises = max(
            values[i + 1] - values[i] for i in range(len(values) - 1)
        )
        assert rises > 0.2  # a sharp jump exists

    def test_mean_moderate(self):
        profile = twitter_profile()
        assert 0.25 < profile.average_fraction() < 0.6

    def test_never_negative(self):
        profile = twitter_profile()
        assert all(profile.fraction(t * 0.25) >= 0 for t in range(720))


class TestSynthetic:
    def test_constant(self):
        profile = constant_profile(0.3, duration_s=20.0)
        assert profile.fraction(10.0) == pytest.approx(0.3)
        assert profile.duration_s == 20.0

    def test_constant_negative_rejected(self):
        with pytest.raises(SimulationError):
            constant_profile(-0.1)

    def test_step(self):
        profile = step_profile([(10.0, 0.2), (10.0, 0.8)])
        assert profile.fraction(5.0) == pytest.approx(0.2)
        assert profile.fraction(15.0) == pytest.approx(0.8)
        assert profile.duration_s == pytest.approx(20.0)

    def test_step_empty_rejected(self):
        with pytest.raises(SimulationError):
            step_profile([])

    def test_step_bad_duration_rejected(self):
        with pytest.raises(SimulationError):
            step_profile([(0.0, 0.5)])

    def test_sine_range(self):
        profile = sine_profile(low=0.2, high=0.8, period_s=10.0, duration_s=40.0)
        values = [profile.fraction(t * 0.1) for t in range(400)]
        assert min(values) == pytest.approx(0.2, abs=0.01)
        assert max(values) == pytest.approx(0.8, abs=0.01)

    def test_sine_validation(self):
        with pytest.raises(SimulationError):
            sine_profile(low=0.8, high=0.2)


class TestVectorizedAggregates:
    """The vectorized average/peak must agree with the historical
    scalar-loop computation on every built-in shape."""

    def _profiles(self):
        return [
            spike_profile(duration_s=60.0),
            twitter_profile(seed=2, duration_s=60.0),
            constant_profile(0.4, duration_s=30.0),
            sine_profile(low=0.1, high=0.9, period_s=7.0, duration_s=35.0),
            SegmentProfile("ramp", [(0.0, 0.0), (12.0, 1.2), (20.0, 0.3)]),
        ]

    @staticmethod
    def _scalar_average(profile, resolution_s=0.5):
        steps = max(1, int(profile.duration_s / resolution_s))
        mids = [
            (i + 0.5) * profile.duration_s / steps for i in range(steps)
        ]
        return sum(profile.fraction(t) for t in mids) / len(mids)

    @staticmethod
    def _scalar_peak(profile, resolution_s=0.1):
        steps = max(1, int(profile.duration_s / resolution_s))
        mids = [
            (i + 0.5) * profile.duration_s / steps for i in range(steps)
        ]
        return max(profile.fraction(t) for t in mids)

    def test_average_agrees_with_scalar_loop(self):
        for profile in self._profiles():
            assert profile.average_fraction() == pytest.approx(
                self._scalar_average(profile), abs=1e-12
            ), profile.name

    def test_peak_agrees_with_scalar_loop(self):
        for profile in self._profiles():
            assert profile.peak_fraction() == pytest.approx(
                self._scalar_peak(profile), abs=1e-12
            ), profile.name

    def test_resolution_validation(self):
        with pytest.raises(SimulationError):
            constant_profile(0.5).average_fraction(resolution_s=0.0)
