"""Data placement: migration overhead and the consolidation payoff.

Three guarantees around the placement layer:

1. **Static placement is free** — the default ``static`` placement runs
   the exact golden configurations bit-identically to the pinned
   pre-placement results (the refactor cost nothing).
2. **Migration is bounded** — a single-partition move quiesces, ships,
   and resumes within a handful of engine ticks; its lump cost stalls
   the involved sockets briefly, not indefinitely.
3. **Consolidation pays** — at sustained low load, ``ecl-consolidate``
   drains a socket into package sleep and finishes the same work with
   less energy per query than the plain ECL.
"""

import pickle

from repro.dbms.engine import DatabaseEngine
from repro.hardware.machine import Machine
from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, WorkloadVariant
from repro.workloads.micro import COMPUTE_BOUND

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests" / "sim"))
from golden_config import GOLDEN_POLICIES, golden_configuration, golden_path

from _shared import heading


def test_static_placement_matches_goldens(run_once):
    """The placement refactor must not move a float on default runs."""

    def run_all():
        return {
            policy: run_experiment(golden_configuration(policy))
            for policy in GOLDEN_POLICIES
        }

    results = run_once(run_all)
    heading("Placement refactor — static placement vs pinned goldens")
    for policy in GOLDEN_POLICIES:
        with open(golden_path(policy), "rb") as fh:
            golden = pickle.load(fh)
        fresh = results[policy]
        print(
            f"{policy:10s} golden E={golden.total_energy_j:10.4f} J   "
            f"fresh E={fresh.total_energy_j:10.4f} J"
        )
        assert fresh.total_energy_j == golden.total_energy_j
        assert fresh.queries_completed == golden.queries_completed
        assert fresh.latencies_s == golden.latencies_s


def test_single_migration_completes_within_bounded_ticks():
    """Quiesce + transfer resolves in ticks, not seconds."""
    machine = Machine(seed=1)
    engine = DatabaseEngine(machine)
    engine.set_workload_characteristics(COMPUTE_BOUND)
    record = engine.request_migration(1, 0)
    ticks = 0
    while engine.migrations.active_count and ticks < 10:
        engine.tick(0.001)
        ticks += 1
    heading("Single-partition migration latency")
    print(
        f"completed in {ticks} tick(s); "
        f"{record.data_bytes / 1e6:.2f} MB charged at "
        f"{record.cost_instructions_per_side:.3g} instructions per side"
    )
    # Unowned partitions transfer on the very next migration step; leave
    # headroom for one quiesce tick under ownership.
    assert ticks <= 3
    assert engine.partitions.socket_of(1) == 0


def test_consolidation_beats_ecl_at_low_load(run_once):
    """The acceptance experiment: package sleep wins at sustained low load."""

    def run_pair():
        results = {}
        for policy in ("ecl", "ecl-consolidate"):
            results[policy] = run_experiment(
                RunConfiguration(
                    workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
                    profile=constant_profile(duration_s=8.0, fraction=0.18),
                    policy=policy,
                    seed=0,
                )
            )
        return results

    results = run_once(run_pair)
    ecl = results["ecl"]
    consolidated = results["ecl-consolidate"]
    heading("Consolidation vs plain ECL — constant 18 % load, 8 s")
    for name, r in results.items():
        per_query = r.total_energy_j / r.queries_completed
        print(
            f"{name:16s} E={r.total_energy_j:8.2f} J  "
            f"completed={r.queries_completed:5d}  E/q={per_query:.4f} J  "
            f"p99={1000 * r.percentile_latency_s(99):.1f} ms"
        )
    # All work still completes...
    assert consolidated.queries_completed >= ecl.queries_completed - 5
    # ...and the drained package saves energy both in total and per query.
    assert consolidated.total_energy_j < ecl.total_energy_j
    eclq = ecl.total_energy_j / ecl.queries_completed
    conq = consolidated.total_energy_j / consolidated.queries_completed
    assert conq < eclq
