"""Edge cases of the struct-of-arrays intra-socket hub.

The SoA message plane must behave exactly like the object queues under
the awkward interleavings the migration and elasticity layers produce:
deliveries into a quiesced (frozen) partition, acquisition tie-breaks
after adoptions, workers parked mid-batch with a budget-cut round trip
in flight, and arbitrary acquire→drain→release sequences (the hypothesis
conservation property at the end).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbms.intra_socket import IntraSocketHub
from repro.dbms.messages import Message, MessageKind, WorkCost
from repro.dbms.worker import CompletedRun, Worker


def _bank(hub, targets, costs, first_qid=0):
    """Enqueue one compact bank (fan-out 1 per message) onto ``hub``."""
    targets = np.asarray(targets, dtype=np.int64)
    costs = np.asarray(costs, dtype=np.float64)
    hub.enqueue_bank(
        targets,
        costs,
        np.zeros_like(costs),
        np.arange(first_qid, first_qid + targets.size, dtype=np.int64),
    )


def _drain_qids(completed):
    """Flatten a completion list into drained query ids, in drain order."""
    qids = []
    for item in completed:
        if type(item) is CompletedRun:
            qids.extend(int(q) for q in item.query_ids)
        else:
            qids.append(item.query_id)
    return qids


class TestFrozenPartitionEnqueueWhileQuiesced:
    def test_deliveries_land_but_acquisition_stops(self):
        hub = IntraSocketHub(0, [1, 2], vectorized=True)
        hub.freeze_partition(1)
        # Deliveries continue into the quiesced partition — both lanes.
        _bank(hub, [1, 1, 2], [10.0, 20.0, 30.0])
        hub.enqueue(
            Message(query_id=9, target_partition=1, cost=WorkCost(5.0))
        )
        assert hub.queue_depth(1) == 3
        assert hub.pending_messages == 4
        assert hub.pending_cost_instructions() == pytest.approx(65.0)
        # The frozen partition is never handed to a worker, however deep.
        assert hub.acquire_partition(worker_id=7) == 2
        assert hub.acquire_partition(worker_id=8) is None
        hub.release_partition(7, 2)
        # Unfreezing exposes the full backlog accumulated while frozen.
        hub.unfreeze_partition(1)
        assert hub.acquire_partition(worker_id=7) == 1
        assert hub.modeled_run(1) == 2

    def test_evict_while_frozen_materializes_in_order(self):
        hub = IntraSocketHub(0, [1, 2], vectorized=True)
        hub.freeze_partition(1)
        _bank(hub, [1, 1], [10.0, 20.0], first_qid=100)
        hub.enqueue(
            Message(query_id=102, target_partition=1, cost=WorkCost(5.0))
        )
        _bank(hub, [1], [40.0], first_qid=103)
        shipped = hub.evict_partition(1)
        # Two-lane seq merge: compact, compact, object, compact.
        assert [m.query_id for m in shipped] == [100, 101, 102, 103]
        assert [m.cost.instructions for m in shipped] == [10.0, 20.0, 5.0, 40.0]
        # The eviction left the accounting consistent (partition 2 empty).
        assert hub.pending_messages == 0
        assert hub.pending_cost_instructions() == 0.0
        assert 1 not in hub.partition_ids


class TestAdoptedPartitionTieBreak:
    def test_adopted_partitions_rank_after_construction_set(self):
        hub = IntraSocketHub(0, [3, 4], vectorized=True)
        hub.adopt_partition(9)
        hub.adopt_partition(5)
        # Equal depths: the construction-time order wins, then adoption
        # order (9 before 5 — arrival rank, not partition id).
        _bank(hub, [9, 5, 4, 3], [1.0, 1.0, 1.0, 1.0])
        order = []
        for worker_id in range(4):
            pid = hub.acquire_partition(worker_id)
            order.append(pid)
        assert order == [3, 4, 9, 5]

    def test_readopted_partition_moves_to_the_back(self):
        hub = IntraSocketHub(0, [3, 4], vectorized=True)
        _bank(hub, [3], [1.0])
        hub.freeze_partition(3)
        hub.evict_partition(3)
        hub.adopt_partition(3)  # returns home after a residency gap
        _bank(hub, [3, 4], [1.0, 1.0])
        # Re-adoption assigned a fresh (later) arrival rank: 4 wins the
        # equal-depth tie-break now, and the stale heap entries of the
        # evicted residency never resurface.
        assert hub.acquire_partition(worker_id=1) == 4
        assert hub.acquire_partition(worker_id=2) == 3


class TestParkMidBatch:
    def test_budget_cut_round_trip_then_handoff(self):
        hub = IntraSocketHub(0, [1], vectorized=True)
        _bank(hub, [1, 1, 1, 1], [10.0, 10.0, 10.0, 10.0])
        first = Worker(worker_id=1, socket_id=0, hw_thread_id=0)
        used, completed = first.process_quantum(hub, None, 25.0)
        # Two messages fit, the third round-trips (dequeue + requeue).
        assert used == 20.0
        assert _drain_qids(completed) == [0, 1]
        assert hub.owner_of(1) is None  # released on the way out
        assert hub.pending_messages == 2
        # The parked worker's half-drained partition hands off cleanly:
        # a second worker resumes at the round-tripped message.
        second = Worker(worker_id=2, socket_id=0, hw_thread_id=1)
        used, completed = second.process_quantum(hub, None, 100.0)
        assert used == 20.0
        assert _drain_qids(completed) == [2, 3]
        assert hub.pending_messages == 0
        assert hub.pending_cost_instructions() == 0.0
        # Stats attribute the split quantum to the right workers.
        assert first.stats.messages_processed == 2
        assert second.stats.messages_processed == 2

    def test_release_all_after_explicit_acquire(self):
        hub = IntraSocketHub(0, [1, 2], vectorized=True)
        _bank(hub, [1, 2], [10.0, 10.0])
        assert hub.acquire_partition(worker_id=1) is not None
        assert hub.acquire_partition(worker_id=1) is not None
        hub.release_all(1)  # park-time cleanup
        assert hub.owner_of(1) is None
        assert hub.owner_of(2) is None
        # Both partitions are acquirable again.
        assert hub.acquire_partition(worker_id=2) is not None
        assert hub.acquire_partition(worker_id=3) is not None


@settings(max_examples=60, deadline=None)
@given(
    batches=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # partition index
            st.lists(
                st.floats(min_value=0.5, max_value=50.0),
                min_size=1,
                max_size=40,
            ),
        ),
        min_size=1,
        max_size=6,
    ),
    objects=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.floats(min_value=0.5, max_value=50.0),
        ),
        max_size=4,
    ),
    budgets=st.lists(
        st.floats(min_value=1.0, max_value=400.0), min_size=1, max_size=8
    ),
)
def test_conservation_across_acquire_drain_release(batches, objects, budgets):
    """Nothing is created or lost across acquire→drain→release cycles.

    Messages either complete or stay queued; instruction accounting dies
    to exactly zero when the hub empties; per-partition drain order is
    FIFO over both lanes.
    """
    pids = (11, 22, 33)
    hub = IntraSocketHub(0, pids, vectorized=True)
    enqueued = 0
    next_qid = 0
    for pid_index, costs in batches:
        _bank(
            hub,
            [pids[pid_index]] * len(costs),
            costs,
            first_qid=next_qid,
        )
        next_qid += len(costs)
        enqueued += len(costs)
    for pid_index, cost in objects:
        hub.enqueue(
            Message(
                query_id=next_qid,
                target_partition=pids[pid_index],
                cost=WorkCost(cost),
            )
        )
        next_qid += 1
        enqueued += 1

    drained = []
    worker = Worker(worker_id=1, socket_id=0, hw_thread_id=0)
    for budget in budgets:
        used, completed = worker.process_quantum(hub, None, budget)
        this_drain = _drain_qids(completed)
        drained.extend(this_drain)
        # A quantum may overdraw only on its very first message (a real
        # worker cannot preempt an operator mid-flight) — so an
        # over-budget quantum consumed exactly one message.
        assert used <= budget or len(this_drain) == 1
        # Ownership never leaks out of a quantum.
        assert all(hub.owner_of(pid) is None for pid in pids)

    still_queued = sum(hub.queue_depth(pid) for pid in pids)
    assert len(drained) + still_queued == enqueued
    assert hub.pending_messages == still_queued
    assert len(set(drained)) == len(drained)  # nothing drained twice
    if still_queued == 0:
        assert hub.pending_cost_instructions() == 0.0
    else:
        assert hub.pending_cost_instructions() > 0.0
    # Drain a final unbounded budget: everything must come out, FIFO per
    # partition, and the accounting must snap to exactly zero.
    while hub.pending_messages:
        used, completed = worker.process_quantum(hub, None, 1e12)
        drained.extend(_drain_qids(completed))
        assert used > 0.0
    assert sorted(drained) == list(range(enqueued))
    assert hub.pending_cost_instructions() == 0.0
