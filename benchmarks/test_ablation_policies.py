"""Ablation — the full control-policy ladder on the spike profile.

The paper's §7 argues that prior feedback controllers (one DVFS setting
per processor, no uncore control, no C-state orchestration, no energy
profile) leave most of the savings behind, and §4 (Fig. 7) shows the
processor's own energy management recovering even less.  This bench
runs *every registered policy* over the spike profile and checks the
expected ladder:

    ecl  <  ondemand  <  baseline          (§7: DVFS-only vs full ECL)
    ecl  <  performance  <  baseline       (race-to-idle alone helps some)
    ecl  <  epb-only     <  baseline       (§4: hardware hints alone)
"""

from repro.loadprofiles import spike_profile
from repro.workloads import KeyValueWorkload, WorkloadVariant

from _shared import bench_duration_s, heading, run_policy_grid


def run_ladder():
    profile = spike_profile(duration_s=bench_duration_s())
    return run_policy_grid(
        lambda: KeyValueWorkload(WorkloadVariant.NON_INDEXED), profile
    )


def test_ablation_policies(run_once):
    runs = run_once(run_ladder)

    heading("Ablation — policy ladder on the spike profile (KV scans)")
    for policy, run in runs.items():
        print(
            f"{policy:>12}: energy {run.total_energy_j:8.0f} J  "
            f"power {run.average_power_w():6.1f} W  "
            f"mean lat {1000 * run.mean_latency_s():7.1f} ms  "
            f"done {run.queries_completed}/{run.queries_submitted}"
        )
    base = runs["baseline"].total_energy_j
    ondemand = runs["ondemand"].total_energy_j
    ecl = runs["ecl"].total_energy_j
    performance = runs["performance"].total_energy_j
    epb_only = runs["epb-only"].total_energy_j
    print(
        f"\nsavings vs baseline: ondemand {1 - ondemand / base:.1%}, "
        f"performance {1 - performance / base:.1%}, "
        f"epb-only {1 - epb_only / base:.1%}, "
        f"ecl {1 - ecl / base:.1%}"
    )

    # The ladder: per-core DVFS alone helps, the full ECL helps more.
    assert ondemand < base * 0.95
    assert ecl < ondemand * 0.95
    # DBMS-integrated control roughly doubles the DVFS-only savings.
    assert (1 - ecl / base) > 1.5 * (1 - ondemand / base) * 0.8
    # Single-technique deployments land between baseline and the ECL.
    assert ecl < performance < base
    assert ecl < epb_only < base
