"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers embedding the simulator can catch one base class.  Subclasses are
split by subsystem to keep error handling targeted.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library errors."""


class HardwareError(ReproError):
    """Invalid hardware operation (bad frequency, unknown thread, ...)."""


class ConfigurationError(HardwareError):
    """A hardware configuration is malformed or not applicable."""


class TopologyError(HardwareError):
    """A topology lookup referenced a socket/core/thread that does not exist."""


class StorageError(ReproError):
    """Invalid storage operation (schema mismatch, unknown column, ...)."""


class SchemaError(StorageError):
    """A schema definition or row does not match the declared schema."""


class PartitionError(StorageError):
    """A partition lookup or ownership operation failed."""


class PlacementError(ReproError):
    """A placement policy or partition migration was driven incorrectly."""


class MessagingError(ReproError):
    """The hierarchical message-passing layer was used incorrectly."""


class OwnershipError(MessagingError):
    """A worker violated the partition-ownership protocol."""


class WorkloadError(ReproError):
    """A workload definition or generated request is invalid."""


class ProfileError(ReproError):
    """An energy-profile operation failed (empty profile, unknown config)."""


class ControlError(ReproError):
    """The ECL was driven with invalid parameters or state."""


class SimulationError(ReproError):
    """The simulation runner detected an inconsistent setup."""
