"""Fig. 11 — the socket-level ECL guiding example.

Paper: a scripted utilization sequence drives the loop through its modes:
full utilization → exponential performance-level discovery; partial
utilization → exact scaling (Eq. 3); low demand → RTI duty cycling; a
workload change → multiplexed adaptation slots.  The bench replays an
equivalent scripted load against one socket and reports utilization and
the applied performance level per ECL interval.
"""

from repro.dbms.engine import DatabaseEngine
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage
from repro.ecl.controller import EnergyControlLoop
from repro.hardware.machine import Machine
from repro.workloads.micro import COMPUTE_BOUND

from _shared import heading

#: Scripted per-second load fractions on socket 0 (mirrors Fig. 11's arc:
#: ramp into saturation, a brief spike, partial load, low-load RTI tail).
SCRIPT = [0.2, 0.5, 1.3, 0.9, 0.6, 0.6, 0.35, 0.2, 0.2, 0.15, 0.15, 0.1]


def run_guiding_example():
    machine = Machine(seed=10)
    engine = DatabaseEngine(machine)
    engine.set_workload_characteristics(COMPUTE_BOUND)
    ecl = EnergyControlLoop(engine)
    ecl.warm_start_from_model(chars=COMPUTE_BOUND)

    # Loads are scripted relative to the optimal configuration's
    # throughput (the sustained capacity the ECL prefers to run at).
    base_level = ecl.profiles[0].most_efficient().measurement.performance_score
    tick = 0.002
    per_message = 10_000_000.0
    statuses = []
    accumulated = 0.0
    while machine.time_s < len(SCRIPT):
        now = machine.time_s
        fraction = SCRIPT[min(int(now), len(SCRIPT) - 1)]
        accumulated += fraction * base_level * tick / per_message
        while accumulated >= 1.0:
            accumulated -= 1.0
            engine.submit(
                Query(
                    arrival_s=now,
                    stages=[
                        QueryStage(
                            [
                                Message(
                                    query_id=-1,
                                    target_partition=p,
                                    cost=WorkCost(per_message / 4),
                                )
                                for p in (0, 2, 4, 6)
                            ]
                        )
                    ],
                )
            )
        ecl.on_tick(now, tick)
        engine.tick(tick)
        if abs(now - round(now)) < tick / 2 and now > 0.5:
            statuses.append(ecl.sockets[0].status(now))
    return statuses, base_level


def test_fig11_guiding_example(run_once):
    statuses, base = run_once(run_guiding_example)

    heading("Fig. 11 — socket-ECL guiding example (per-interval status)")
    print(f"{'t':>4} {'util':>6} {'level/base':>11} {'duty':>6} {'zone':>20} applied")
    for status in statuses:
        zone = status.zone.value if status.zone else "-"
        print(
            f"{status.time_s:4.0f} {status.utilization:6.2f} "
            f"{status.performance_level / base:11.2f} {status.plan_duty:6.2f} "
            f"{zone:>20} {status.applied}"
        )

    by_second = {round(s.time_s): s for s in statuses}

    # Saturation spike (t=3): utilization pegged, discovery raised the level.
    assert by_second[3].utilization > 0.95
    assert by_second[3].performance_level > by_second[2].performance_level

    # Partial load (t=6..7): the level scales back down with demand.
    assert by_second[7].performance_level < by_second[3].performance_level

    # Low load (t=10+): RTI duty cycling engages (duty < 1).
    assert by_second[10].plan_duty < 0.7

    # Level roughly tracks the scripted demand at the tail.
    tail = by_second[max(by_second)]
    assert tail.performance_level < 0.45 * base
