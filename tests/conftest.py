"""Shared fixtures for the test suite."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.dbms.engine import DatabaseEngine
from repro.hardware.machine import Machine
from repro.hardware.presets import HaswellEPParameters, haswell_ep_two_socket


@pytest.fixture
def params() -> HaswellEPParameters:
    """The default Haswell-EP parameter set."""
    return haswell_ep_two_socket()


@pytest.fixture
def small_params() -> HaswellEPParameters:
    """A downsized platform (2 sockets × 4 cores) for cheap sweeps."""
    return dataclasses.replace(haswell_ep_two_socket(), cores_per_socket=4)


@pytest.fixture
def machine() -> Machine:
    """A fresh default machine, deterministic seed."""
    return Machine(seed=42)


@pytest.fixture
def small_machine(small_params: HaswellEPParameters) -> Machine:
    """A fresh downsized machine."""
    return Machine(params=small_params, seed=42)


@pytest.fixture
def engine(machine: Machine) -> DatabaseEngine:
    """A database engine bound to the default machine."""
    return DatabaseEngine(machine)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for workload generation."""
    return np.random.default_rng(7)
