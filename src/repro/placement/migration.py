"""The partition-migration protocol: quiesce, transfer, resume.

Moving a partition between sockets must neither lose messages nor
double-execute them, and it must cost instructions and latency like any
other work.  The :class:`MigrationCoordinator` drives each move through
a small state machine, advanced once per engine tick:

1. **Quiesce** — on request, the partition is *frozen* in its source
   hub: already-queued messages stay put, new deliveries still enqueue,
   but no worker can acquire the partition anymore.  Workers release
   ownership within the tick they acquired it, so the partition is
   unowned by the next tick.
2. **Transfer** — once unowned, the queued messages are evicted and
   handed to the :class:`~repro.dbms.inter_socket.InterSocketRouter`,
   which re-homes the partition and ships the queue through the normal
   one-tick-latency transfer path.  The data copy itself is charged as
   overhead instructions on *both* sockets: a per-byte cost over the
   partition's actual table sizes (floored by
   ``EngineConfig.migration_floor_bytes`` for modeled workloads whose
   fragments are empty).
3. **Resume** — the target hub adopts the partition; in-flight messages
   still addressed to the old socket are forwarded by the router's
   per-message home check at flush time, never lost.

Lump charges deliberately stall the involved sockets for a few ticks —
the engine consumes overhead before any worker runs — which is exactly
the migration pause a real system would see.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import PlacementError

if TYPE_CHECKING:
    from repro.dbms.config import EngineConfig
    from repro.dbms.inter_socket import InterSocketRouter
    from repro.dbms.intra_socket import IntraSocketHub
    from repro.storage.partition import PartitionMap


class MigrationState(enum.Enum):
    """Lifecycle of one partition move."""

    QUIESCING = "quiescing"  #: frozen at the source, waiting for release
    COMPLETE = "complete"  #: re-homed; queue in transit to the target


@dataclass
class MigrationRecord:
    """Bookkeeping of one partition move (telemetry + tests)."""

    partition_id: int
    source_socket: int
    target_socket: int
    requested_at_s: float
    state: MigrationState = MigrationState.QUIESCING
    completed_at_s: float | None = None
    #: Bytes charged for the data copy (after the modeled-workload floor).
    data_bytes: float = 0.0
    #: Queued messages shipped along with the partition.
    messages_in_flight: int = 0
    #: Overhead instructions charged to each of the two sockets.
    cost_instructions_per_side: float = 0.0

    def to_event(self) -> dict[str, object]:
        """Flat dict for trace/telemetry export."""
        return {
            "partition": self.partition_id,
            "source": self.source_socket,
            "target": self.target_socket,
            "requested_at_s": self.requested_at_s,
            "completed_at_s": self.completed_at_s,
            "data_bytes": self.data_bytes,
            "messages_in_flight": self.messages_in_flight,
            "cost_instructions_per_side": self.cost_instructions_per_side,
        }


class MigrationCoordinator:
    """Drives requested partition moves through quiesce → transfer.

    Owned by the :class:`~repro.dbms.engine.DatabaseEngine`; ``tick`` is
    called once per engine tick (after the router flush, before demand
    reporting) and is a no-op while nothing is migrating.
    """

    def __init__(
        self,
        partitions: "PartitionMap",
        hubs: dict[int, "IntraSocketHub"],
        router: "InterSocketRouter",
        config: "EngineConfig",
        charge: Callable[[int, float], None],
    ):
        self._partitions = partitions
        self._hubs = hubs
        self._router = router
        self._config = config
        self._charge = charge
        self._active: dict[int, MigrationRecord] = {}
        #: Every completed migration, in completion order.
        self.log: list[MigrationRecord] = []

    @property
    def active_count(self) -> int:
        """Moves currently in flight."""
        return len(self._active)

    def migrating(self, partition_id: int) -> bool:
        """Whether a partition has an unfinished move."""
        return partition_id in self._active

    def request(
        self, partition_id: int, target_socket: int, now_s: float
    ) -> MigrationRecord | None:
        """Begin moving a partition; freezes it in its source hub.

        Returns None (and does nothing) when the partition already lives
        on the target or is already migrating — requests are idempotent
        so control policies may re-plan freely.

        Raises:
            PlacementError: for unknown partition or socket ids.
        """
        if target_socket not in self._hubs:
            raise PlacementError(f"unknown target socket {target_socket}")
        source = self._partitions.socket_of(partition_id)
        if source == target_socket or partition_id in self._active:
            return None
        self._hubs[source].freeze_partition(partition_id)
        record = MigrationRecord(
            partition_id=partition_id,
            source_socket=source,
            target_socket=target_socket,
            requested_at_s=now_s,
        )
        self._active[partition_id] = record
        return record

    def tick(self, now_s: float) -> list[MigrationRecord]:
        """Advance every in-flight move; returns those completed now."""
        completed: list[MigrationRecord] = []
        for pid in list(self._active):
            record = self._active[pid]
            source_hub = self._hubs[record.source_socket]
            if source_hub.owner_of(pid) is not None:
                continue  # still quiescing: a worker holds ownership
            messages = source_hub.evict_partition(pid)
            partition = self._partitions.partition(pid)
            data_bytes = float(
                max(partition.bytes_used, self._config.migration_floor_bytes)
            )
            cost = self._router.transfer_partition(
                pid, record.target_socket, messages, data_bytes
            )
            self._hubs[record.target_socket].adopt_partition(pid)
            self._partitions.move_partition(pid, record.target_socket)
            self._charge(record.source_socket, cost.instructions)
            self._charge(record.target_socket, cost.instructions)
            record.data_bytes = data_bytes
            record.messages_in_flight = len(messages)
            record.cost_instructions_per_side = cost.instructions
            record.completed_at_s = now_s
            record.state = MigrationState.COMPLETE
            del self._active[pid]
            self.log.append(record)
            completed.append(record)
        return completed
