"""Instructions-retired performance counters.

The paper uses "instructions retired by all of the active hardware
threads on the socket" as the workload-agnostic performance score of a
configuration (§4.1).  Hardware instruction counters are exact, so unlike
:mod:`repro.hardware.rapl` no noise model is needed — only windowed reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareError


@dataclass(frozen=True)
class CounterReading:
    """One read of an instructions-retired counter."""

    instructions: float
    timestamp_s: float


class InstructionCounter:
    """Accumulates instructions retired on one socket."""

    def __init__(self) -> None:
        self._instructions = 0.0
        self._now_s = 0.0

    @property
    def total_instructions(self) -> float:
        """Instructions retired since machine construction."""
        return self._instructions

    def accumulate(self, instructions: float, now_s: float) -> None:
        """Add retired instructions up to time ``now_s``."""
        if instructions < 0:
            raise HardwareError(f"negative instruction count {instructions}")
        self._instructions += instructions
        self._now_s = now_s

    def accumulate_span(self, instructions: float, times: np.ndarray) -> None:
        """Replay ``accumulate(instructions, t)`` for every ``t`` in ``times``.

        ``np.add.accumulate`` is a strict left-to-right fold over IEEE
        doubles, so the final total is bit-identical to the per-call
        path while the loop runs in C.
        """
        if instructions < 0:
            raise HardwareError(f"negative instruction count {instructions}")
        n = len(times)
        if n == 0:
            return
        fold = np.add.accumulate(
            np.concatenate(([self._instructions], np.full(n, instructions)))
        )
        self._instructions = float(fold[-1])
        self._now_s = float(times[-1])

    def read(self) -> CounterReading:
        """Read the counter."""
        return CounterReading(instructions=self._instructions, timestamp_s=self._now_s)

    @staticmethod
    def window_rate(start: CounterReading, end: CounterReading) -> float:
        """Average instructions/second between two reads.

        Raises:
            HardwareError: if the readings are not strictly ordered in time.
        """
        dt = end.timestamp_s - start.timestamp_s
        if dt <= 0:
            raise HardwareError(
                f"readings not ordered: {start.timestamp_s} -> {end.timestamp_s}"
            )
        return max(0.0, end.instructions - start.instructions) / dt
