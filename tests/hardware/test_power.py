"""Tests for the power model's calibration targets (DESIGN.md §5)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.hardware.power import CorePowerState, PowerModel
from repro.hardware.presets import haswell_ep_two_socket
from repro.hardware.topology import Topology


@pytest.fixture
def model():
    params = haswell_ep_two_socket()
    topo = Topology.build(
        params.socket_count, params.cores_per_socket, params.threads_per_core
    )
    return PowerModel(topo, params)


@pytest.fixture
def params():
    return haswell_ep_two_socket()


class TestVoltageCurve:
    def test_monotone_in_frequency(self, model, params):
        freqs = params.core_pstates_ghz
        volts = [model.core_voltage(f) for f in freqs]
        assert volts == sorted(volts)

    def test_anchor_points(self, model, params):
        assert model.core_voltage(1.2) == pytest.approx(params.core_volt_min)
        assert model.core_voltage(2.6) == pytest.approx(params.core_volt_nominal)
        assert model.core_voltage(3.1) == pytest.approx(params.core_volt_turbo)

    def test_clamps_below_minimum(self, model, params):
        assert model.core_voltage(0.8) == pytest.approx(params.core_volt_min)


class TestCorePower:
    def test_busy_core_at_nominal(self, model):
        state = CorePowerState(frequency_ghz=2.6, active_sibling_count=1)
        watts = model.core_power(state)
        assert 5.0 < watts < 9.0  # ~6.5 W dynamic + ~1 W leakage

    def test_power_grows_superlinearly_with_frequency(self, model):
        """P ∝ f·V² — doubling the clock more than doubles the power."""
        low = model.core_power(CorePowerState(1.2, 1))
        high = model.core_power(CorePowerState(2.6, 1))
        assert high > low * (2.6 / 1.2)

    def test_ht_sibling_nearly_free(self, model):
        """Fig. 4: activating a HyperThread sibling costs almost nothing."""
        one = model.core_power(CorePowerState(2.6, 1))
        two = model.core_power(CorePowerState(2.6, 2))
        assert two > one
        assert (two - one) / one < 0.12

    def test_c6_core_draws_nothing(self, model):
        state = CorePowerState(frequency_ghz=2.6, active_sibling_count=0)
        assert model.core_power(state) == 0.0

    def test_c1_core_draws_residual(self, model):
        state = CorePowerState(2.6, 0, shallow=True)
        residual = model.core_power(state)
        busy = model.core_power(CorePowerState(2.6, 1))
        assert 0 < residual < busy

    def test_polling_floor(self, model):
        """An active-but-stalled core still draws a large share (polling)."""
        stalled = model.core_power(CorePowerState(2.6, 1, activity=0.0))
        busy = model.core_power(CorePowerState(2.6, 1, activity=1.0))
        assert stalled > 0.4 * busy

    def test_invalid_frequency_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.core_power(CorePowerState(0.0, 1))


class TestUncorePower:
    def test_halt_saves_up_to_30w(self, model, params):
        """Fig. 4/5: halting the uncore gates the LLC, saving ≤ ~30 W."""
        active_max = model.uncore_power(params.uncore_max_ghz, halted=False)
        halted = model.uncore_power(params.uncore_max_ghz, halted=True)
        saving = active_max - halted
        assert 20.0 < saving < 32.0

    def test_uncore_span_is_about_12w(self, model, params):
        """Fig. 8: 3.0 GHz draws ~12 W more than 1.2 GHz."""
        low = model.uncore_power(params.uncore_min_ghz, halted=False)
        high = model.uncore_power(params.uncore_max_ghz, halted=False)
        assert high - low == pytest.approx(12.0, abs=1.0)

    def test_traffic_adds_power(self, model, params):
        quiet = model.uncore_power(3.0, False, traffic_gbs=0.0)
        busy = model.uncore_power(3.0, False, traffic_gbs=40.0)
        assert busy > quiet

    def test_out_of_range_frequency_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.uncore_power(3.5, halted=False)

    def test_negative_traffic_rejected(self, model):
        with pytest.raises(ValueError):
            model.uncore_power(3.0, False, traffic_gbs=-1.0)


class TestSocketAggregation:
    def _full_load_states(self, params):
        return [
            CorePowerState(params.core_nominal_ghz, 2, activity=1.0)
            for _ in range(params.cores_per_socket)
        ]

    def test_full_load_package_near_tdp(self, model, params):
        power = model.socket_power(
            0, self._full_load_states(params), 3.0, False, traffic_gbs=40.0
        )
        assert 110.0 < power.package_w < 150.0  # 135 W TDP part

    def test_socket_asymmetry(self, model, params):
        """Fig. 5: socket 1 statically draws slightly less than socket 0."""
        states = self._full_load_states(params)
        s0 = model.socket_power(0, states, 3.0, False, 40.0)
        s1 = model.socket_power(1, states, 3.0, False, 40.0)
        assert s0.package_w > s1.package_w
        assert s0.package_w - s1.package_w == pytest.approx(
            params.socket_static_asymmetry_w
        )

    def test_dram_split(self, model, params):
        power = model.socket_power(0, [], 1.2, True, traffic_gbs=0.0)
        assert power.dram_w == pytest.approx(params.dram_static_w)

    def test_psu_adds_overhead(self, model, params):
        states = self._full_load_states(params)
        breakdowns = {
            sid: model.socket_power(sid, states, 3.0, False, 40.0)
            for sid in (0, 1)
        }
        rapl = sum(b.socket_total_w for b in breakdowns.values())
        psu = model.psu_power(breakdowns)
        assert psu > rapl * 1.1  # ≥ 10 % overhead plus static draw

    def test_idle_vs_peak_ratio(self, model, params):
        """Fig. 3: static power ≈ 18 % of peak at the PSU."""
        idle = {
            sid: model.socket_power(sid, [], params.uncore_min_ghz, True, 0.0)
            for sid in (0, 1)
        }
        peak = {
            sid: model.socket_power(
                sid, self._full_load_states(params), 3.0, False, 44.0
            )
            for sid in (0, 1)
        }
        ratio = model.psu_power(idle) / model.psu_power(peak)
        assert 0.13 < ratio < 0.23


@given(
    freq=st.sampled_from([1.2, 1.5, 1.9, 2.2, 2.6, 3.1]),
    activity=st.floats(min_value=0.0, max_value=1.0),
    siblings=st.sampled_from([1, 2]),
)
def test_property_core_power_positive_and_activity_monotone(freq, activity, siblings):
    params = haswell_ep_two_socket()
    topo = Topology.build(2, 12, 2)
    model = PowerModel(topo, params)
    power = model.core_power(CorePowerState(freq, siblings, activity=activity))
    assert power > 0
    more = model.core_power(
        CorePowerState(freq, siblings, activity=min(1.0, activity + 0.1))
    )
    assert more >= power - 1e-9
