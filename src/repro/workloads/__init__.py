"""Benchmark workloads used in the paper's evaluation (Table 1, §6).

* :mod:`repro.workloads.micro` — the four §2/§4 micro workloads that
  shape the energy-profile figures: compute-bound counter increments,
  memory-bandwidth-bound column scans, a contended atomic increment, and
  shared hash-table inserts.
* :mod:`repro.workloads.kv` — the custom key-value store benchmark
  (4-byte uniformly distributed keys/values), indexed (memory
  latency-bound) or non-indexed (memory bandwidth-bound).
* :mod:`repro.workloads.tatp` — the TATP telecom OLTP benchmark.
* :mod:`repro.workloads.ssb` — the Star Schema Benchmark (OLAP).

Every workload provides hardware characteristics (for the performance
model), a modeled query generator (for high-rate end-to-end simulation),
and a real-execution mode that loads data into partitions and issues
operator messages (for tests and examples).
"""

from repro.workloads.base import Workload, WorkloadVariant
from repro.workloads.micro import (
    ATOMIC_CONTENTION,
    COMPUTE_BOUND,
    HASHTABLE_INSERT,
    MEMORY_BOUND,
    MICRO_WORKLOADS,
)
from repro.workloads.kv import KeyValueWorkload
from repro.workloads.tatp import TatpWorkload
from repro.workloads.ssb import SsbWorkload
from repro.workloads.toa import TransactionOrientedTatpWorkload
from repro.workloads.mixed import MixedWorkload

__all__ = [
    "Workload",
    "WorkloadVariant",
    "COMPUTE_BOUND",
    "MEMORY_BOUND",
    "ATOMIC_CONTENTION",
    "HASHTABLE_INSERT",
    "MICRO_WORKLOADS",
    "KeyValueWorkload",
    "TatpWorkload",
    "SsbWorkload",
    "TransactionOrientedTatpWorkload",
    "MixedWorkload",
]
