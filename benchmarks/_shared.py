"""Shared helpers for the benchmark harness (see conftest.py)."""

from __future__ import annotations

import os
from typing import Callable, Sequence

from repro.loadprofiles.base import LoadProfile
from repro.sim import (
    ExperimentSuite,
    RunConfiguration,
    RunResult,
    policy_grid,
    registered_policies,
)
from repro.sim.suite import suite_worker_count
from repro.workloads.base import Workload


def bench_duration_s() -> float:
    """Configured duration of end-to-end load-profile runs."""
    return float(os.environ.get("REPRO_BENCH_DURATION", "45"))


def suite_workers() -> int:
    """Worker processes per experiment batch.

    Set with ``--suite-workers`` (see conftest.py) or the
    ``REPRO_SUITE_WORKERS`` environment variable; defaults to 1 (inline,
    no subprocesses).
    """
    return suite_worker_count(default=1)


def run_experiments(
    configs: Sequence[RunConfiguration],
    durations: Sequence[float | None] | None = None,
) -> list[RunResult]:
    """Run a batch of configurations through the shared experiment suite.

    Fans out across ``suite_workers()`` processes and serves repeats from
    the on-disk result cache (``REPRO_CACHE_DIR``, default
    ``.repro_cache/``) — a second benchmark invocation with unchanged
    configurations replays from disk.
    """
    return ExperimentSuite(workers=suite_workers()).run(configs, durations)


def run_policy_grid(
    workload_factory: Callable[[], Workload],
    profile: LoadProfile,
    policies: Sequence[str] | None = None,
    **config_kwargs,
) -> dict[str, RunResult]:
    """Run one configuration per policy, keyed by policy name.

    ``policies=None`` runs every policy in the registry — benchmarks
    written against this helper automatically pick up new registrations.
    """
    names = registered_policies() if policies is None else tuple(policies)
    configs = policy_grid(
        workload_factory, profile, policies=names, **config_kwargs
    )
    return dict(zip(names, run_experiments(configs)))


def heading(title: str) -> None:
    """Print a figure/table heading."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
