"""Tests for benchmark workloads: characteristics, queries, real mode."""

import pytest

from repro.storage.partition import PartitionMap
from repro.workloads import (
    KeyValueWorkload,
    SsbWorkload,
    TatpWorkload,
    WorkloadVariant,
)
from repro.workloads.micro import MICRO_WORKLOADS
from repro.workloads.base import pick_partitions
from repro.errors import WorkloadError


ALL_WORKLOADS = [
    KeyValueWorkload(WorkloadVariant.INDEXED),
    KeyValueWorkload(WorkloadVariant.NON_INDEXED),
    TatpWorkload(WorkloadVariant.INDEXED),
    TatpWorkload(WorkloadVariant.NON_INDEXED),
    SsbWorkload(WorkloadVariant.INDEXED),
    SsbWorkload(WorkloadVariant.NON_INDEXED),
]


@pytest.fixture
def pmap():
    return PartitionMap(48, 2)


class TestCommonContract:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.full_name)
    def test_characteristics_and_peak(self, workload):
        chars = workload.characteristics
        assert chars.base_cpi > 0
        assert workload.nominal_peak_qps > 0
        assert workload.queries_per_second(0.5) == pytest.approx(
            workload.nominal_peak_qps / 2
        )

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.full_name)
    def test_modeled_query_structure(self, workload, pmap, rng):
        query = workload.make_modeled_query(rng, 1.5, pmap)
        assert query.arrival_s == 1.5
        assert query.stages
        for stage in query.stages:
            for message in stage.messages:
                assert message.is_modeled
                assert message.cost.instructions > 0
                assert 0 <= message.target_partition < 48

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.full_name)
    def test_negative_load_rejected(self, workload):
        with pytest.raises(WorkloadError):
            workload.queries_per_second(-0.1)

    def test_variant_names(self):
        assert "indexed" in KeyValueWorkload(WorkloadVariant.INDEXED).full_name
        assert KeyValueWorkload(WorkloadVariant.INDEXED).is_indexed


class TestMicroWorkloads:
    def test_registry_complete(self):
        assert set(MICRO_WORKLOADS) == {
            "compute-bound",
            "memory-bound",
            "atomic-contention",
            "hashtable-insert",
        }

    def test_compute_bound_has_no_memory_traffic(self):
        assert MICRO_WORKLOADS["compute-bound"].bytes_per_instr == 0.0

    def test_memory_bound_is_bandwidth_heavy(self):
        assert MICRO_WORKLOADS["memory-bound"].bytes_per_instr >= 4.0

    def test_contended_workloads_have_atomics(self):
        assert MICRO_WORKLOADS["atomic-contention"].atomic_ops_per_instr > 0
        assert MICRO_WORKLOADS["hashtable-insert"].atomic_ops_per_instr > 0


class TestKeyValue:
    def test_indexed_is_latency_bound(self):
        chars = KeyValueWorkload(WorkloadVariant.INDEXED).characteristics
        assert chars.miss_rate > 0
        assert chars.bytes_per_instr < 1.0

    def test_non_indexed_is_bandwidth_bound(self):
        chars = KeyValueWorkload(WorkloadVariant.NON_INDEXED).characteristics
        assert chars.bytes_per_instr >= 1.0

    def test_real_mode_roundtrip(self, pmap, rng):
        workload = KeyValueWorkload(WorkloadVariant.INDEXED, ops_per_query=4)
        workload.setup_real(pmap, scale=500, rng=rng)
        total_rows = sum(p.table("kv").row_count for p in pmap)
        assert total_rows == 500
        query = workload.make_real_query(rng, 0.0, pmap)
        for message in query.stages[0].messages:
            assert not message.is_modeled

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            KeyValueWorkload(ops_per_query=0)


class TestTatp:
    def test_mix_probabilities_sum_to_one(self):
        from repro.workloads.tatp import TRANSACTION_MIX

        assert sum(p for _, p, _, _, _ in TRANSACTION_MIX) == pytest.approx(1.0)

    def test_average_cost_positive(self):
        workload = TatpWorkload(WorkloadVariant.INDEXED)
        cost = workload.average_transaction_cost()
        assert cost.instructions > 100

    def test_non_indexed_cost_much_higher(self):
        indexed = TatpWorkload(WorkloadVariant.INDEXED).average_transaction_cost()
        scans = TatpWorkload(WorkloadVariant.NON_INDEXED).average_transaction_cost()
        assert scans.instructions > 10 * indexed.instructions

    def test_modeled_query_has_secondary_hop(self, pmap, rng):
        query = TatpWorkload(WorkloadVariant.INDEXED).make_modeled_query(
            rng, 0.0, pmap
        )
        assert len(query.stages) == 2

    def test_real_mode_loads_all_tables(self, pmap, rng):
        workload = TatpWorkload(WorkloadVariant.INDEXED)
        workload.setup_real(pmap, scale=60, rng=rng)
        subscribers = sum(p.table("subscriber").row_count for p in pmap)
        assert subscribers == 60
        access = sum(p.table("access_info").row_count for p in pmap)
        assert access >= 0  # 0..3 rows per subscriber
        for p in pmap:
            assert "s_id" in p.table("subscriber").indexed_columns

    def test_real_transactions_execute(self, pmap, rng):
        workload = TatpWorkload(WorkloadVariant.INDEXED)
        workload.setup_real(pmap, scale=60, rng=rng)
        for _ in range(30):
            query = workload.make_real_query(rng, 0.0, pmap)
            for message in query.stages[0].messages:
                partition = pmap.partition(message.target_partition)
                result, cost = message.operation(partition)
                assert cost.instructions > 0


class TestSsb:
    def test_thirteen_query_classes(self):
        from repro.workloads.ssb import SSB_QUERY_CLASSES

        assert len(SSB_QUERY_CLASSES) == 13
        assert {q.flight for q in SSB_QUERY_CLASSES} == {1, 2, 3, 4}

    def test_modeled_query_fans_to_all_partitions(self, pmap, rng):
        query = SsbWorkload(WorkloadVariant.NON_INDEXED).make_modeled_query(
            rng, 0.0, pmap
        )
        assert len(query.stages[0].messages) == 48
        assert len(query.stages) == 2

    def test_flight_cost_ordering(self):
        """More dimension joins = more work per partition task."""
        from repro.workloads.ssb import SSB_QUERY_CLASSES

        workload = SsbWorkload(WorkloadVariant.NON_INDEXED)
        q11 = next(q for q in SSB_QUERY_CLASSES if q.name == "Q1.1")
        q41 = next(q for q in SSB_QUERY_CLASSES if q.name == "Q4.1")
        assert (
            workload.partition_task_cost(q41).instructions
            > workload.partition_task_cost(q11).instructions
        )

    def test_real_query_aggregates_revenue(self, rng):
        pmap = PartitionMap(4, 2)
        workload = SsbWorkload(WorkloadVariant.NON_INDEXED)
        workload.setup_real(pmap, scale=400, rng=rng)
        query = workload.make_real_query(rng, 0.0, pmap)
        totals = []
        for message in query.stages[0].messages:
            partition = pmap.partition(message.target_partition)
            result, cost = message.operation(partition)
            totals.append(result)
            assert cost.instructions > 0
        assert sum(totals) > 0  # some revenue matched the date filter


class TestPickPartitions:
    def test_distinct(self, pmap, rng):
        picks = pick_partitions(rng, pmap, 10)
        assert len(set(picks)) == 10

    def test_all(self, pmap, rng):
        assert pick_partitions(rng, pmap, 48) == list(range(48))

    def test_too_many_rejected(self, pmap, rng):
        with pytest.raises(WorkloadError):
            pick_partitions(rng, pmap, 49)


class TestTransactionOriented:
    """The §5.3 extension: latched execution with spin-polluted counters."""

    def test_characteristics_carry_the_caveats(self):
        from repro.workloads import TransactionOrientedTatpWorkload

        workload = TransactionOrientedTatpWorkload()
        chars = workload.characteristics
        assert chars.spinlock_retirement
        assert chars.atomic_ops_per_instr > 0

    def test_counters_inflate_under_contention(self):
        from repro.hardware.machine import Machine
        from repro.hardware.perfmodel import ActiveCore, SocketLoad
        from repro.workloads.toa import TRANSACTION_ORIENTED_CHARACTERISTICS

        machine = Machine()
        cores = [ActiveCore(0, i, 2.6, 2) for i in range(12)]
        perf = machine.perf_model.resolve(
            cores, 3.0, SocketLoad(TRANSACTION_ORIENTED_CHARACTERISTICS, None)
        )
        assert perf.contention_limited
        assert perf.retired_ips > 3.0 * perf.executed_ips

    def test_data_oriented_counters_stay_honest(self):
        from repro.hardware.machine import Machine
        from repro.hardware.perfmodel import ActiveCore, SocketLoad
        from repro.workloads.micro import ATOMIC_CONTENTION

        machine = Machine()
        cores = [ActiveCore(0, i, 2.6, 2) for i in range(12)]
        perf = machine.perf_model.resolve(
            cores, 3.0, SocketLoad(ATOMIC_CONTENTION, None)
        )
        # Contended too — but workers park instead of spinning, so the
        # counters match useful work.
        assert perf.retired_ips == perf.executed_ips

    def test_modeled_queries_reuse_tatp_shape(self, pmap, rng):
        from repro.workloads import TransactionOrientedTatpWorkload

        workload = TransactionOrientedTatpWorkload()
        query = workload.make_modeled_query(rng, 0.0, pmap)
        assert len(query.stages) == 2
        assert workload.nominal_peak_qps > 0


class TestRealJoin:
    """The real hash-join pipeline behind SSB Q2.x."""

    def test_join_aggregate_matches_reference(self, rng):
        pmap = PartitionMap(4, 2)
        workload = SsbWorkload(WorkloadVariant.NON_INDEXED)
        workload.setup_real(pmap, scale=600, rng=rng)
        query = workload.make_real_join_query(rng, 0.0, pmap)
        total = 0.0
        matched = 0
        for message in query.stages[0].messages:
            partition = pmap.partition(message.target_partition)
            (subtotal, matches), cost = message.operation(partition)
            total += subtotal
            matched += matches
            assert cost.instructions > 0
            assert cost.bytes_accessed > 0
        # The join is deterministic: rerunning the same operations yields
        # identical results (hash-build order does not affect the sum).
        repeat = 0.0
        for message in query.stages[0].messages:
            partition = pmap.partition(message.target_partition)
            (subtotal, _), _ = message.operation(partition)
            repeat += subtotal
        assert repeat == pytest.approx(total)
        assert matched > 0
        assert total > 0


class TestMixedWorkload:
    """HTAP-style mixes with per-message characteristics tags."""

    def _mix(self):
        from repro.workloads import MixedWorkload

        return MixedWorkload(
            [
                (TatpWorkload(WorkloadVariant.INDEXED), 1.0),
                (SsbWorkload(WorkloadVariant.NON_INDEXED), 0.5),
            ]
        )

    def test_peak_is_weighted_sum(self):
        mix = self._mix()
        tatp = TatpWorkload(WorkloadVariant.INDEXED).nominal_peak_qps
        ssb = SsbWorkload(WorkloadVariant.NON_INDEXED).nominal_peak_qps
        assert mix.nominal_peak_qps == pytest.approx(tatp + 0.5 * ssb)

    def test_messages_are_tagged(self, pmap, rng):
        mix = self._mix()
        seen = set()
        for _ in range(30):
            query = mix.make_modeled_query(rng, 0.0, pmap)
            for stage in query.stages:
                for message in stage.messages:
                    assert message.characteristics is not None
                    seen.add(message.characteristics.name)
        assert seen == {"tatp-indexed", "ssb-non-indexed"}

    def test_blended_characteristics_between_components(self):
        mix = self._mix()
        chars = mix.characteristics
        tatp = TatpWorkload(WorkloadVariant.INDEXED).characteristics
        ssb = SsbWorkload(WorkloadVariant.NON_INDEXED).characteristics
        low = min(tatp.bytes_per_instr, ssb.bytes_per_instr)
        high = max(tatp.bytes_per_instr, ssb.bytes_per_instr)
        assert low < chars.bytes_per_instr < high

    def test_empty_mix_rejected(self):
        from repro.workloads import MixedWorkload

        with pytest.raises(WorkloadError):
            MixedWorkload([])
        with pytest.raises(WorkloadError):
            MixedWorkload([(TatpWorkload(WorkloadVariant.INDEXED), 0.0)])

    def test_engine_blends_pending_tags(self, rng):
        """The hub's tag tally reaches the machine's socket load."""
        from repro.dbms.engine import DatabaseEngine
        from repro.hardware.machine import Machine

        machine = Machine(seed=2)
        engine = DatabaseEngine(machine)
        mix = self._mix()
        engine.set_workload_characteristics(mix.characteristics)
        # Stuff enough work in that both tags are pending simultaneously.
        for _ in range(20):
            engine.submit(mix.make_modeled_query(rng, 0.0, engine.partitions))
        # Park the workers so nothing drains before we inspect the load.
        machine.cstates.set_active_threads(set())
        engine.tick(0.001)
        blended = machine.socket_load(0).characteristics
        assert "+" in blended.name  # a genuine blend of two tags


class TestSkewedKeyValue:
    """Zipf partition skew: the hub's deepest-queue pick balances it."""

    def test_skew_concentrates_targets(self, pmap, rng):
        skewed = KeyValueWorkload(WorkloadVariant.NON_INDEXED, skew=1.5)
        counts = {}
        for _ in range(300):
            query = skewed.make_modeled_query(rng, 0.0, pmap)
            for message in query.stages[0].messages:
                counts[message.target_partition] = (
                    counts.get(message.target_partition, 0) + 1
                )
        ranked = sorted(counts.values(), reverse=True)
        # The hottest partition sees far more traffic than the median.
        assert ranked[0] > 5 * ranked[len(ranked) // 2]

    def test_zero_skew_roughly_uniform(self, pmap, rng):
        uniform = KeyValueWorkload(WorkloadVariant.NON_INDEXED, skew=0.0)
        counts = {}
        for _ in range(300):
            query = uniform.make_modeled_query(rng, 0.0, pmap)
            for message in query.stages[0].messages:
                counts[message.target_partition] = (
                    counts.get(message.target_partition, 0) + 1
                )
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] < 3 * ranked[-1]

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            KeyValueWorkload(skew=-0.5)

    def test_skewed_load_still_served(self):
        """End-to-end: elasticity absorbs the hot-partition pressure."""
        from repro.loadprofiles import constant_profile
        from repro.sim import RunConfiguration, run_experiment

        workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED, skew=1.2)
        result = run_experiment(
            RunConfiguration(
                workload=workload,
                profile=constant_profile(0.3, duration_s=8.0),
            )
        )
        assert result.queries_completed >= 0.95 * result.queries_submitted
        assert result.violation_fraction() < 0.10
