"""Ablation — race-to-idle: on/off and switching-frequency sweep.

Design choice under test (paper §5.1): RTI compensates the first-core
activation cost and emulates unavailable performance levels, at the price
of idle-stint latency.  Disabling it should cost energy at partial load;
longer cycle periods (slower switching) should raise latencies.
"""

from repro.ecl.socket_ecl import EclParameters
from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, WorkloadVariant

from _shared import heading


def run_variants():
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    profile = constant_profile(0.25, duration_s=20.0)
    variants = {}
    variants["rti on (20 ms cycles)"] = run_experiment(
        RunConfiguration(workload=workload, profile=profile)
    )
    variants["rti on (slow, 100 ms cycles)"] = run_experiment(
        RunConfiguration(
            workload=workload,
            profile=profile,
            ecl_params=EclParameters(
                rti_min_period_s=0.1, rti_max_cycles=10
            ),
        )
    )
    variants["rti off"] = run_experiment(
        RunConfiguration(
            workload=workload,
            profile=profile,
            ecl_params=EclParameters(rti_enabled=False),
        )
    )
    return variants


def test_ablation_rti(run_once):
    variants = run_once(run_variants)

    heading("Ablation — RTI on/off and cycle period (25 % load, KV scans)")
    for name, run in variants.items():
        print(
            f"{name:>28}: energy {run.total_energy_j:7.0f} J  "
            f"power {run.average_power_w():6.1f} W  "
            f"mean lat {1000 * run.mean_latency_s():6.1f} ms  "
            f"p99 {1000 * run.percentile_latency_s(99):7.1f} ms"
        )

    fast = variants["rti on (20 ms cycles)"]
    slow = variants["rti on (slow, 100 ms cycles)"]
    off = variants["rti off"]

    # RTI saves energy at partial load...
    assert fast.total_energy_j < off.total_energy_j * 0.97
    # ...at a (bounded) latency price vs never idling.
    assert fast.mean_latency_s() >= off.mean_latency_s()
    assert fast.violation_fraction() < 0.05
    # Slower switching costs latency compared to fast switching.
    assert slow.percentile_latency_s(99) > fast.percentile_latency_s(99)
