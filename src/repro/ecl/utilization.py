"""The utilization controller of the socket-level ECL (§5.1).

Determines the demanded *performance level* (instructions/second) from
the worker utilization the database runtime reports:

* utilization **below 100 %** pins the demand exactly:
  ``level_new = utilization × level_old`` (paper Eq. 3);
* at **full utilization** the true demand is unobservable (utilization is
  measured relative to the *active* workers), so the controller runs a
  discovery strategy that grows the level exponentially per ECL call —
  conservative enough not to over-activate hardware, aggressive enough to
  ride out load spikes.  The system-level ECL's time-to-violation makes
  the discovery more eager as the latency limit approaches.
"""

from __future__ import annotations

from repro.errors import ControlError
from repro.units import clamp


class UtilizationController:
    """Performance-level demand estimation for one socket."""

    def __init__(
        self,
        full_threshold: float = 0.97,
        discovery_factor: float = 1.6,
        urgent_discovery_factor: float = 2.6,
        minimum_level: float = 1e8,
    ):
        if not 0.5 <= full_threshold <= 1.0:
            raise ControlError(
                f"full_threshold must be in [0.5, 1], got {full_threshold}"
            )
        if discovery_factor <= 1.0 or urgent_discovery_factor < discovery_factor:
            raise ControlError(
                "need urgent_discovery_factor >= discovery_factor > 1"
            )
        if minimum_level <= 0:
            raise ControlError(f"minimum_level must be > 0, got {minimum_level}")
        self.full_threshold = full_threshold
        self.discovery_factor = discovery_factor
        self.urgent_discovery_factor = urgent_discovery_factor
        self.minimum_level = minimum_level

    def discovery_multiplier(
        self, time_to_violation_s: float, interval_s: float
    ) -> float:
        """Discovery aggressiveness given the latency headroom.

        With plenty of headroom the base factor applies; as the estimated
        time-to-violation approaches one ECL interval, the factor ramps
        toward the urgent value (already-violated limits use it fully).
        """
        if interval_s <= 0:
            raise ControlError(f"interval must be > 0, got {interval_s}")
        if time_to_violation_s <= 0:
            urgency = 1.0
        else:
            urgency = clamp(4.0 * interval_s / time_to_violation_s, 0.0, 1.0)
        return (
            self.discovery_factor
            + (self.urgent_discovery_factor - self.discovery_factor) * urgency
        )

    def next_level(
        self,
        utilization: float,
        current_level: float,
        time_to_violation_s: float,
        interval_s: float,
    ) -> float:
        """Compute the new demanded performance level.

        Args:
            utilization: worker utilization over the last interval, [0, 1].
            current_level: previously demanded level (instructions/s).
            time_to_violation_s: system-ECL estimate (``inf`` = relaxed).
            interval_s: the socket-ECL period.

        Raises:
            ControlError: on out-of-range utilization.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ControlError(f"utilization must be in [0, 1], got {utilization}")
        if current_level < 0:
            raise ControlError(f"current level must be >= 0, got {current_level}")

        if utilization >= self.full_threshold:
            base = max(current_level, self.minimum_level)
            return base * self.discovery_multiplier(
                time_to_violation_s, interval_s
            )
        # Exact scaling (Eq. 3); drop to zero when the socket went idle.
        return utilization * current_level
