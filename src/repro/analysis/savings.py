"""Savings summaries: the Table 1 arithmetic in one place."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.metrics import RunResult, energy_saving_fraction


@dataclass(frozen=True)
class SavingsSummary:
    """Head-to-head outcome of a controlled run against its baseline.

    Attributes:
        workload_name: workload of both runs.
        profile_name: load profile of both runs.
        saving_fraction: relative energy saved by the controlled run.
        baseline_energy_j / controlled_energy_j: absolute energies.
        controlled_violation_fraction: latency-limit violations under
            the controlled policy.
        latency_penalty_s: controlled minus baseline mean latency (the
            price paid for the savings; may be ~0 or negative).
    """

    workload_name: str
    profile_name: str
    saving_fraction: float
    baseline_energy_j: float
    controlled_energy_j: float
    controlled_violation_fraction: float
    latency_penalty_s: float


def summarize_savings(baseline: RunResult, controlled: RunResult) -> SavingsSummary:
    """Condense a (baseline, controlled) pair into a Table 1 row.

    Raises:
        SimulationError: when the runs do not describe the same experiment.
    """
    if baseline.workload_name != controlled.workload_name:
        raise SimulationError(
            f"workload mismatch: {baseline.workload_name!r} vs "
            f"{controlled.workload_name!r}"
        )
    if baseline.profile_name != controlled.profile_name:
        raise SimulationError(
            f"profile mismatch: {baseline.profile_name!r} vs "
            f"{controlled.profile_name!r}"
        )
    base_latency = baseline.mean_latency_s() or 0.0
    controlled_latency = controlled.mean_latency_s() or 0.0
    return SavingsSummary(
        workload_name=controlled.workload_name,
        profile_name=controlled.profile_name,
        saving_fraction=energy_saving_fraction(baseline, controlled),
        baseline_energy_j=baseline.total_energy_j,
        controlled_energy_j=controlled.total_energy_j,
        controlled_violation_fraction=controlled.violation_fraction(),
        latency_penalty_s=controlled_latency - base_latency,
    )
