"""Tests for the race-to-idle controller."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ControlError
from repro.ecl.rti import RtiController, RtiPlan
from repro.profiles.configuration import Configuration


@pytest.fixture
def optimal():
    return Configuration.build(0, {0, 24}, {0: 1.9}, 1.2)


@pytest.fixture
def controller():
    return RtiController()


class TestPlan:
    def test_under_utilization_duty_cycles(self, controller, optimal):
        plan = controller.plan(5e9, optimal, 1e10, 1.0, float("inf"))
        assert plan.uses_rti
        # Duty covers demand × headroom, rounded up to the slot grid.
        assert 0.55 <= plan.duty < 0.7
        assert plan.active_configuration == optimal

    def test_demand_at_optimum_disables_rti(self, controller, optimal):
        plan = controller.plan(1e10, optimal, 1e10, 1.0, float("inf"))
        assert not plan.uses_rti
        assert plan.duty == 1.0

    def test_critical_headroom_disables_rti(self, controller, optimal):
        plan = controller.plan(2e9, optimal, 1e10, 1.0, 1.0)
        assert not plan.uses_rti

    def test_duty_never_below_demand(self, controller, optimal):
        """Quantization must round the duty UP, never down."""
        for demand_fraction in (0.03, 0.11, 0.27, 0.5, 0.73, 0.9):
            plan = controller.plan(
                demand_fraction * 1e10, optimal, 1e10, 1.0, float("inf")
            )
            assert plan.duty >= min(1.0, demand_fraction * 1.10) - 1e-9

    def test_idle_stint_bounded_under_pressure(self, controller, optimal):
        relaxed = controller.plan(3e9, optimal, 1e10, 1.0, float("inf"))
        pressured = controller.plan(3e9, optimal, 1e10, 1.0, 3.0)
        relaxed_stint = (1 - relaxed.duty) * relaxed.period_s
        pressured_stint = (1 - pressured.duty) * pressured.period_s
        assert pressured_stint <= relaxed_stint + 1e-9

    def test_tiny_duty_keeps_active_quantum(self, controller, optimal):
        plan = controller.plan(1e8, optimal, 1e10, 1.0, float("inf"))
        if plan.uses_rti:
            assert plan.duty * plan.period_s >= controller.min_duty_quantum_s - 1e-9

    def test_validation(self, controller, optimal):
        with pytest.raises(ControlError):
            controller.plan(1e9, optimal, 0.0, 1.0, float("inf"))
        with pytest.raises(ControlError):
            controller.plan(1e9, optimal, 1e10, 1.0, float("inf"), headroom=0.9)


class TestPhases:
    def test_phase_grid_anchored_globally(self, optimal):
        plan = RtiPlan(optimal, duty=0.5, period_s=0.02)
        assert plan.is_active_phase(0.0)
        assert plan.is_active_phase(0.005)
        assert not plan.is_active_phase(0.015)
        assert plan.is_active_phase(0.020)  # next cycle starts active

    def test_float_boundary_is_active(self, optimal):
        plan = RtiPlan(optimal, duty=0.5, period_s=0.02)
        # 5.0 % 0.02 suffers float error; boundaries must stay active.
        assert plan.is_active_phase(5.0)
        assert plan.is_active_phase(1.0)

    def test_full_duty_always_active(self, optimal):
        plan = RtiPlan(optimal, duty=1.0, period_s=0.02)
        assert all(plan.is_active_phase(t * 0.001) for t in range(100))

    def test_duty_fraction_of_time_active(self, optimal):
        plan = RtiPlan(optimal, duty=0.3, period_s=0.02)
        ticks = [plan.is_active_phase(t * 0.001) for t in range(2000)]
        active_fraction = sum(ticks) / len(ticks)
        assert active_fraction == pytest.approx(0.3, abs=0.05)

    def test_sockets_share_idle_windows(self, optimal):
        """Equal-period plans idle simultaneously (uncore-halt sync)."""
        a = RtiPlan(optimal, duty=0.4, period_s=0.02)
        b = RtiPlan(optimal, duty=0.6, period_s=0.02)
        # Wherever the higher-duty plan is idle, the lower-duty one is too.
        for t in range(0, 2000):
            now = t * 0.001
            if not b.is_active_phase(now):
                assert not a.is_active_phase(now)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ControlError):
            RtiController(max_cycles_per_interval=0)
        with pytest.raises(ControlError):
            RtiController(min_period_s=0.0)

    def test_period_validation(self, controller):
        with pytest.raises(ControlError):
            controller.period_for(0.5, 0.0, float("inf"))


@given(
    demand_fraction=st.floats(min_value=0.0, max_value=1.2),
    ttv=st.floats(min_value=0.0, max_value=100.0) | st.just(float("inf")),
)
def test_property_plan_always_valid(demand_fraction, ttv, ):
    controller = RtiController()
    optimal = Configuration.build(0, {0}, {0: 1.9}, 1.2)
    plan = controller.plan(demand_fraction * 1e10, optimal, 1e10, 1.0, ttv)
    assert 0.0 <= plan.duty <= 1.0
    assert plan.period_s > 0
    if plan.uses_rti:
        # Delivered capacity covers the demand.
        assert plan.duty * 1e10 >= min(1e10, demand_fraction * 1e10) - 1e-6
