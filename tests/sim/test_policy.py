"""Tests for the control-policy protocol and name registry."""

import pytest

from repro.errors import SimulationError
from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, SimulationRunner, run_experiment
from repro.sim.metrics import SampleAnnotations
from repro.sim.policy import (
    DEFAULT_POLICY,
    ControlPolicy,
    build_policy,
    get_policy,
    reference_policy,
    register_policy,
    registered_policies,
    unregister_policy,
    validate_policy_name,
)
from repro.workloads import KeyValueWorkload, WorkloadVariant


def kv():
    return KeyValueWorkload(WorkloadVariant.NON_INDEXED)


class TestBuiltInRegistrations:
    def test_expected_policies_registered(self):
        names = registered_policies()
        for name in ("ecl", "baseline", "ondemand", "performance", "epb-only"):
            assert name in names

    def test_default_policy_is_first_registered(self):
        assert DEFAULT_POLICY == registered_policies()[0]

    def test_reference_policy_is_baseline(self):
        assert reference_policy() == "baseline"
        assert get_policy(reference_policy()).reference

    def test_descriptions_present(self):
        for name in registered_policies():
            assert get_policy(name).description

    def test_built_policies_satisfy_protocol(self):
        config = RunConfiguration(
            workload=kv(), profile=constant_profile(0.3, duration_s=1.0)
        )
        runner = SimulationRunner(config)
        for name in registered_policies():
            policy = build_policy(name, runner.engine, config)
            assert isinstance(policy, ControlPolicy)
            annotations = policy.annotate_sample()
            assert isinstance(annotations, SampleAnnotations)


class TestLookup:
    def test_unknown_name_lists_registered(self):
        with pytest.raises(SimulationError) as excinfo:
            get_policy("magic")
        message = str(excinfo.value)
        assert "magic" in message
        for name in registered_policies():
            assert name in message

    def test_validate_returns_name(self):
        for name in registered_policies():
            assert validate_policy_name(name) == name

    def test_validate_unknown_raises(self):
        with pytest.raises(SimulationError):
            validate_policy_name("magic")

    def test_unregister_unknown_raises(self):
        with pytest.raises(SimulationError):
            unregister_policy("magic")


class _NullPolicy:
    """Minimal out-of-tree policy: never touches the machine."""

    ticks = 0

    def __init__(self, engine):
        self.engine = engine

    @classmethod
    def build(cls, engine, config):
        return cls(engine)

    def on_tick(self, now_s, dt_s):
        type(self).ticks += 1

    def annotate_sample(self):
        return SampleAnnotations(applied=("null",))


class TestCustomRegistration:
    def test_register_build_run_unregister(self):
        register_policy(
            "test-null", _NullPolicy.build, description="does nothing"
        )
        try:
            assert "test-null" in registered_policies()
            _NullPolicy.ticks = 0
            result = run_experiment(
                RunConfiguration(
                    workload=kv(),
                    profile=constant_profile(0.2, duration_s=1.0),
                    policy="test-null",
                )
            )
            assert result.policy == "test-null"
            assert _NullPolicy.ticks == 500  # 1 s at 2 ms ticks
            # The uniform annotation plumbing reaches the samples.
            assert all(s.applied == ("null",) for s in result.samples)
        finally:
            unregister_policy("test-null")
        assert "test-null" not in registered_policies()

    def test_duplicate_name_rejected(self):
        register_policy("test-dup", _NullPolicy.build)
        try:
            with pytest.raises(SimulationError):
                register_policy("test-dup", _NullPolicy.build)
        finally:
            unregister_policy("test-dup")

    def test_second_reference_rejected(self):
        with pytest.raises(SimulationError):
            register_policy("test-ref", _NullPolicy.build, reference=True)
        assert "test-ref" not in registered_policies()

    def test_empty_name_rejected(self):
        with pytest.raises(SimulationError):
            register_policy("", _NullPolicy.build)

    def test_configuration_accepts_registered_name_only(self):
        register_policy("test-cfg", _NullPolicy.build)
        try:
            RunConfiguration(
                workload=kv(),
                profile=constant_profile(0.3),
                policy="test-cfg",
            )
        finally:
            unregister_policy("test-cfg")
        with pytest.raises(SimulationError):
            RunConfiguration(
                workload=kv(), profile=constant_profile(0.3), policy="test-cfg"
            )
