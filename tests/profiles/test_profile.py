"""Tests for the energy profile: skyline, zones, RTI lines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProfileError
from repro.profiles.configuration import Configuration, ConfigurationMeasurement
from repro.profiles.evaluate import build_profile, measure_configuration
from repro.profiles.profile import EnergyProfile
from repro.profiles.zones import (
    RulingZone,
    classify_zones,
    over_utilization_span,
    zone_for_level,
)
from repro.workloads.micro import ATOMIC_CONTENTION, COMPUTE_BOUND, MEMORY_BOUND


def config(threads, freq, uncore, socket=0):
    cores = {i: freq for i in range(max(1, threads // 2))}
    ids = set()
    for core in range(max(1, threads // 2)):
        ids.add(core)
        if len(ids) < threads:
            ids.add(core + 24)
    ids = set(list(range(threads)))  # simple distinct ids
    return Configuration.build(socket, ids, {i: freq for i in ids}, uncore)


def simple_profile():
    """A hand-built profile with known measurements."""
    idle = Configuration.idle(0, 1.2)
    small = Configuration.build(0, {0}, {0: 1.2}, 1.2)
    medium = Configuration.build(0, {0, 1}, {0: 1.9, 1: 1.9}, 2.1)
    large = Configuration.build(0, {0, 1, 2}, {0: 3.1, 1: 3.1, 2: 3.1}, 3.0)
    profile = EnergyProfile([idle, small, medium, large])
    profile.record(idle, ConfigurationMeasurement(20.0, 0.0, 0.0))
    profile.record(small, ConfigurationMeasurement(40.0, 4e9, 0.0))   # eff 1e8
    profile.record(medium, ConfigurationMeasurement(60.0, 9e9, 0.0))  # eff 1.5e8
    profile.record(large, ConfigurationMeasurement(120.0, 12e9, 0.0))  # eff 1e8
    return profile, idle, small, medium, large


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ProfileError):
            EnergyProfile([])

    def test_cross_socket_rejected(self):
        with pytest.raises(ProfileError):
            EnergyProfile(
                [Configuration.idle(0, 1.2), Configuration.idle(1, 1.2)]
            )

    def test_unknown_configuration_rejected(self):
        profile, *_ = simple_profile()
        foreign = Configuration.build(0, {9}, {9: 1.2}, 1.2)
        with pytest.raises(ProfileError):
            profile.entry(foreign)


class TestControlQueries:
    def test_most_efficient(self):
        profile, _, _, medium, _ = simple_profile()
        assert profile.most_efficient().configuration == medium

    def test_peak_performance(self):
        profile, *_ = simple_profile()
        assert profile.peak_performance() == pytest.approx(12e9)

    def test_best_for_performance_prefers_efficiency(self):
        profile, _, small, medium, large = simple_profile()
        assert profile.best_for_performance(3e9).configuration == medium
        assert profile.best_for_performance(10e9).configuration == large

    def test_best_for_performance_saturates(self):
        profile, _, _, _, large = simple_profile()
        assert profile.best_for_performance(99e9).configuration == large

    def test_best_rejects_negative(self):
        profile, *_ = simple_profile()
        with pytest.raises(ProfileError):
            profile.best_for_performance(-1)

    def test_unevaluated_profile_raises(self):
        profile = EnergyProfile([Configuration.idle(0, 1.2)])
        with pytest.raises(ProfileError):
            profile.most_efficient()

    def test_skyline_ordering_and_dominance(self):
        profile, _, small, medium, large = simple_profile()
        skyline = profile.skyline()
        perfs = [p.performance_score for p in skyline]
        assert perfs == sorted(perfs)
        # medium dominates small (more perf AND more efficiency).
        assert small not in [p.configuration for p in skyline]
        assert medium in [p.configuration for p in skyline]
        assert large in [p.configuration for p in skyline]

    def test_coverage_and_staleness(self):
        profile, idle, small, *_ = simple_profile()
        assert profile.coverage() == 1.0
        profile.mark_all_stale()
        assert len(profile.stale_entries()) == 4
        profile.record(small, ConfigurationMeasurement(40.0, 4e9, 1.0))
        assert len(profile.stale_entries()) == 3


class TestRtiLines:
    def test_rti_power_interpolates(self):
        profile, *_ = simple_profile()
        # optimal: 60 W @ 9e9; idle: 20 W
        assert profile.rti_power_w(0.0) == pytest.approx(20.0)
        assert profile.rti_power_w(4.5e9) == pytest.approx(40.0)
        assert profile.rti_power_w(9e9) == pytest.approx(60.0)
        assert profile.rti_power_w(11e9) == pytest.approx(60.0)

    def test_rti_efficiency_beats_baseline_at_low_load(self):
        profile, *_ = simple_profile()
        level = 2e9
        assert profile.rti_efficiency(level) > profile.baseline_efficiency(level)

    def test_baseline_uses_os_idle_power(self):
        profile, *_ = simple_profile()
        reference = profile.baseline_efficiency(2e9)
        profile.os_idle_power_w = 45.0  # much worse OS idle
        assert profile.baseline_efficiency(2e9) < reference

    def test_max_rti_saving_positive(self):
        profile, *_ = simple_profile()
        profile.os_idle_power_w = 40.0
        assert 0.0 < profile.max_rti_saving() < 1.0

    def test_idle_power_requires_measurement(self):
        profile = EnergyProfile(
            [Configuration.idle(0, 1.2), Configuration.build(0, {0}, {0: 1.2}, 1.2)]
        )
        with pytest.raises(ProfileError):
            profile.idle_power_w()


class TestZones:
    def test_classification(self):
        profile, _, small, medium, large = simple_profile()
        zones = classify_zones(profile)
        assert zones[medium] is RulingZone.OPTIMAL
        assert zones[small] is RulingZone.UNDER_UTILIZATION
        assert zones[large] is RulingZone.OVER_UTILIZATION

    def test_zone_for_level(self):
        profile, *_ = simple_profile()
        assert zone_for_level(profile, 1e9) is RulingZone.UNDER_UTILIZATION
        assert zone_for_level(profile, 9e9) is RulingZone.OPTIMAL
        assert zone_for_level(profile, 11e9) is RulingZone.OVER_UTILIZATION

    def test_zone_for_negative_level(self):
        profile, *_ = simple_profile()
        with pytest.raises(ProfileError):
            zone_for_level(profile, -1.0)

    def test_over_span(self):
        profile, *_ = simple_profile()
        assert over_utilization_span(profile) == pytest.approx(0.25)

    def test_contended_workload_has_no_over_zone(self, machine):
        profile = build_profile(machine, 0, ATOMIC_CONTENTION)
        assert over_utilization_span(profile) == pytest.approx(0.0, abs=0.02)


class TestModelEvaluation:
    def test_idle_configuration_cheapest(self, machine):
        profile = build_profile(machine, 0, COMPUTE_BOUND)
        idle_power = profile.idle_power_w()
        for entry in profile.evaluated_entries():
            assert entry.measurement.power_w >= idle_power - 1e-9

    def test_os_idle_above_deep_idle(self, machine):
        profile = build_profile(machine, 0, COMPUTE_BOUND)
        assert profile.os_idle_power_w > profile.idle_power_w()

    def test_memory_bound_prefers_high_uncore(self, machine):
        profile = build_profile(machine, 0, MEMORY_BOUND)
        assert profile.most_efficient().configuration.uncore_ghz == pytest.approx(
            3.0
        )

    def test_compute_bound_prefers_low_uncore(self, machine):
        profile = build_profile(machine, 0, COMPUTE_BOUND)
        assert profile.most_efficient().configuration.uncore_ghz == pytest.approx(
            1.2
        )

    def test_atomic_prefers_one_core_turbo(self, machine):
        """Fig. 10(b): two HT of one core at turbo, lowest uncore."""
        profile = build_profile(machine, 0, ATOMIC_CONTENTION)
        best = profile.most_efficient().configuration
        assert best.thread_count == 2
        assert best.core_count == 1
        assert best.average_core_ghz == pytest.approx(3.1)
        assert best.uncore_ghz == pytest.approx(1.2)

    def test_invalid_configuration_rejected(self, machine):
        bad = Configuration.build(0, {13}, {1: 1.2}, 1.2)
        with pytest.raises(ProfileError):
            measure_configuration(machine, bad, COMPUTE_BOUND)


@settings(max_examples=30, deadline=None)
@given(
    measurements=st.lists(
        st.tuples(
            st.floats(min_value=10.0, max_value=300.0),  # power
            st.floats(min_value=1e8, max_value=1e11),  # perf
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_skyline_is_pareto_front(measurements):
    """No skyline point is dominated; every non-skyline point is."""
    configs = [Configuration.idle(0, 1.2)]
    for i in range(len(measurements)):
        configs.append(Configuration.build(0, {i % 24}, {i % 24: 1.2}, 1.2 + 0.1 * (i % 19)))
    # Deduplicate (hypothesis may generate identical coordinates).
    configs = list(dict.fromkeys(configs))
    profile = EnergyProfile(configs)
    scored = []
    for cfg, (power, perf) in zip(configs[1:], measurements):
        m = ConfigurationMeasurement(power, perf, 0.0)
        profile.record(cfg, m)
        scored.append((cfg, m))
    skyline = profile.skyline()
    skyline_set = {p.configuration for p in skyline}

    def dominated(m):
        return any(
            other.performance_score >= m.performance_score
            and other.energy_efficiency > m.energy_efficiency
            for _, other in scored
        )

    def has_skyline_twin(m):
        return any(
            p.performance_score == m.performance_score
            and p.energy_efficiency == m.energy_efficiency
            for p in skyline
        )

    for cfg, m in scored:
        if cfg in skyline_set:
            assert not dominated(m)
        else:
            # Excluded points are strictly dominated, except exact ties
            # where one representative stays on the skyline.
            assert dominated(m) or has_skyline_twin(m)
