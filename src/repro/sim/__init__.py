"""End-to-end simulation: load generation, policies, runner, metrics.

This package stitches everything together for the paper's §6 experiments:
a :class:`~repro.sim.loadgen.LoadGenerator` turns a (workload, load
profile) pair into query arrivals; a **control policy** — resolved by
name through the registry in :mod:`repro.sim.policy` (the full ECL, the
uncontrolled baseline, governor-style comparisons, or anything
registered out of tree) — drives the hardware knobs; the
:class:`~repro.sim.runner.SimulationRunner` advances everything through
a phased tick pipeline (arrivals → control → engine step → completions
→ sampling) with :mod:`~repro.sim.observers` hooks, and produces a
:class:`~repro.sim.metrics.RunResult` with time series and totals.
"""

from repro.sim.clock import OneShotDeadline, PeriodicDeadline, TickClock
from repro.sim.loadgen import LoadGenerator
from repro.sim.baseline import BaselinePolicy
from repro.sim.consolidate import EclConsolidatePolicy
from repro.sim.governor import OndemandGovernorPolicy
from repro.sim.performance import StaticPerformancePolicy
from repro.sim.epb import EpbOnlyPolicy
from repro.sim.metrics import RunResult, SampleAnnotations, SamplePoint
from repro.sim.observers import (
    ObserverList,
    RunObserver,
    SamplingObserver,
    WorkloadSwitchObserver,
)
from repro.sim.policy import (
    DEFAULT_POLICY,
    ControlPolicy,
    PolicyInfo,
    build_policy,
    get_policy,
    reference_policy,
    register_policy,
    registered_policies,
    unregister_policy,
    validate_policy_name,
)
from repro.sim.runner import RunConfiguration, SimulationRunner, run_experiment
from repro.sim.suite import (
    ExperimentSuite,
    RunProgress,
    config_signature,
    default_cache_dir,
    derive_seed,
    policy_grid,
    scenario_grid,
    suite_worker_count,
)

__all__ = [
    "TickClock",
    "PeriodicDeadline",
    "OneShotDeadline",
    "LoadGenerator",
    "BaselinePolicy",
    "EclConsolidatePolicy",
    "OndemandGovernorPolicy",
    "StaticPerformancePolicy",
    "EpbOnlyPolicy",
    "RunResult",
    "SampleAnnotations",
    "SamplePoint",
    "RunObserver",
    "ObserverList",
    "SamplingObserver",
    "WorkloadSwitchObserver",
    "ControlPolicy",
    "PolicyInfo",
    "DEFAULT_POLICY",
    "register_policy",
    "unregister_policy",
    "registered_policies",
    "get_policy",
    "build_policy",
    "reference_policy",
    "validate_policy_name",
    "RunConfiguration",
    "SimulationRunner",
    "run_experiment",
    "ExperimentSuite",
    "RunProgress",
    "config_signature",
    "default_cache_dir",
    "derive_seed",
    "policy_grid",
    "scenario_grid",
    "suite_worker_count",
]
