"""Tests for unit helpers."""

import pytest

from repro import units


class TestConversions:
    def test_ghz_roundtrip(self):
        assert units.hz_to_ghz(units.ghz_to_hz(2.6)) == pytest.approx(2.6)

    def test_joules(self):
        assert units.joules(100.0, 2.5) == pytest.approx(250.0)

    def test_watt_hours(self):
        assert units.watt_hours(3600.0) == pytest.approx(1.0)


class TestValidation:
    def test_clamp(self):
        assert units.clamp(5.0, 0.0, 1.0) == 1.0
        assert units.clamp(-5.0, 0.0, 1.0) == 0.0
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            units.clamp(0.5, 1.0, 0.0)

    def test_require_positive(self):
        assert units.require_positive(1.0, "x") == 1.0
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                units.require_positive(bad, "x")

    def test_require_non_negative(self):
        assert units.require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            units.require_non_negative(-0.1, "x")

    def test_require_fraction(self):
        assert units.require_fraction(0.5, "x") == 0.5
        for bad in (-0.1, 1.1, float("nan")):
            with pytest.raises(ValueError):
                units.require_fraction(bad, "x")

    def test_approx_equal(self):
        assert units.approx_equal(1.0, 1.0 + 1e-12)
        assert not units.approx_equal(1.0, 1.1)


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        import inspect

        from repro import errors

        for name, obj in inspect.getmembers(errors, inspect.isclass):
            if name.endswith("Error") and name != "ReproError":
                assert issubclass(obj, errors.ReproError), name
