"""In-memory columnar storage substrate for the data-oriented DBMS.

The paper's (anonymized) DBMS partitions all data objects implicitly and
grants exclusive partition access to whichever worker currently owns the
partition.  This package provides the storage layer underneath:

* typed columnar storage (:mod:`repro.storage.column`),
* schemas and tables (:mod:`repro.storage.schema`,
  :mod:`repro.storage.table`),
* an open-addressing hash index (:mod:`repro.storage.hashindex`),
* partitions bundling table fragments and their indexes
  (:mod:`repro.storage.partition`) plus hash partitioning of keys.

Everything executes for real — inserts insert, scans scan — while the
simulation clock charges time through the cost model in
:mod:`repro.dbms.execution`.
"""

from repro.storage.schema import ColumnSpec, DataType, Schema
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.hashindex import HashIndex
from repro.storage.orderedindex import OrderedIndex
from repro.storage.partition import Partition, PartitionMap, hash_partition

__all__ = [
    "ColumnSpec",
    "DataType",
    "Schema",
    "Column",
    "Table",
    "HashIndex",
    "OrderedIndex",
    "Partition",
    "PartitionMap",
    "hash_partition",
]
