"""The energy profile: configurations with live measurements (paper §4).

An :class:`EnergyProfile` is the per-socket knowledge base the socket-
level ECL consults: every generated configuration, each annotated (once
evaluated) with power, performance score, and energy efficiency under
the *current* workload.  Only the profile's skyline matters to control
decisions — for any demanded performance level, the most energy-efficient
configuration that still satisfies it.

Also computed here:

* the **ECL RTI line**: the efficiency achievable below the optimal zone
  by duty-cycling between the most energy-efficient configuration and the
  idle configuration (paper Fig. 9/10);
* the **baseline line**: the race-to-idle behaviour of an uncontrolled
  DBMS — duty-cycling between "all cores at maximum frequency" and idle;
* staleness bookkeeping driving the online/multiplexed adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ProfileError
from repro.profiles.configuration import Configuration, ConfigurationMeasurement


@dataclass
class ProfileEntry:
    """One configuration and its (possibly missing) measurement."""

    configuration: Configuration
    measurement: ConfigurationMeasurement | None = None
    stale: bool = True

    @property
    def evaluated(self) -> bool:
        """Whether this entry carries a measurement."""
        return self.measurement is not None


@dataclass(frozen=True)
class SkylinePoint:
    """One point of the profile skyline."""

    configuration: Configuration
    performance_score: float
    energy_efficiency: float
    power_w: float


class EnergyProfile:
    """Per-socket set of configurations with runtime measurements."""

    def __init__(self, configurations: list[Configuration]):
        if not configurations:
            raise ProfileError("an energy profile needs >= 1 configuration")
        socket_ids = {c.socket_id for c in configurations}
        if len(socket_ids) != 1:
            raise ProfileError(
                f"profile configurations span sockets {sorted(socket_ids)}"
            )
        self.socket_id = socket_ids.pop()
        self._entries: dict[Configuration, ProfileEntry] = {
            c: ProfileEntry(configuration=c) for c in configurations
        }
        idle = [c for c in configurations if c.is_idle]
        self._idle_config: Configuration | None = idle[0] if idle else None
        #: Power the *uncontrolled* system draws when out of work: the OS
        #: parks cores, but without the ECL's cross-socket synchronization
        #: the uncore never halts and the package never reaches its
        #: deepest sleep.  Set by the profile builder; falls back to the
        #: (deep) idle measurement when unset.
        self.os_idle_power_w: float | None = None

    # -- access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, configuration: Configuration) -> bool:
        return configuration in self._entries

    def configurations(self) -> Iterator[Configuration]:
        """All configurations, idle included."""
        return iter(self._entries)

    def entry(self, configuration: Configuration) -> ProfileEntry:
        """Entry of one configuration.

        Raises:
            ProfileError: for configurations not in the profile.
        """
        try:
            return self._entries[configuration]
        except KeyError:
            raise ProfileError(
                f"configuration {configuration.describe()} not in profile"
            ) from None

    @property
    def idle_configuration(self) -> Configuration:
        """The idle configuration.

        Raises:
            ProfileError: if the profile was built without one.
        """
        if self._idle_config is None:
            raise ProfileError("profile has no idle configuration")
        return self._idle_config

    # -- recording ----------------------------------------------------------

    def record(
        self,
        configuration: Configuration,
        measurement: ConfigurationMeasurement,
        blend_weight: float | None = None,
    ) -> None:
        """Store (or blend in) a measurement for a configuration.

        ``blend_weight`` enables the EWMA update used by online
        adaptation; ``None`` replaces the measurement outright.
        """
        entry = self.entry(configuration)
        if blend_weight is not None and entry.measurement is not None:
            entry.measurement = entry.measurement.blended_with(
                measurement, blend_weight
            )
        else:
            entry.measurement = measurement
        entry.stale = False

    # -- staleness ----------------------------------------------------------

    def mark_all_stale(self) -> None:
        """Flag every entry for re-evaluation (major workload change)."""
        for entry in self._entries.values():
            entry.stale = True

    def stale_entries(self) -> list[ProfileEntry]:
        """Entries needing (re-)evaluation."""
        return [e for e in self._entries.values() if e.stale]

    def evaluated_entries(self) -> list[ProfileEntry]:
        """Entries carrying a measurement."""
        return [e for e in self._entries.values() if e.evaluated]

    def coverage(self) -> float:
        """Fraction of configurations evaluated."""
        return len(self.evaluated_entries()) / len(self._entries)

    # -- control queries ------------------------------------------------------

    def _scored(self) -> list[ProfileEntry]:
        """Evaluated, non-idle entries."""
        return [
            e
            for e in self.evaluated_entries()
            if not e.configuration.is_idle
        ]

    def most_efficient(self) -> ProfileEntry:
        """The globally most energy-efficient evaluated configuration.

        Raises:
            ProfileError: when nothing is evaluated yet.
        """
        scored = self._scored()
        if not scored:
            raise ProfileError("profile has no evaluated configurations")
        return max(scored, key=lambda e: e.measurement.energy_efficiency)

    def peak_performance(self) -> float:
        """Highest measured performance score."""
        scored = self._scored()
        if not scored:
            raise ProfileError("profile has no evaluated configurations")
        return max(e.measurement.performance_score for e in scored)

    def best_for_performance(self, demand_score: float) -> ProfileEntry:
        """Most efficient configuration delivering ``demand_score``.

        Falls back to the highest-performance configuration when the
        demand exceeds everything measured (saturation).

        Raises:
            ProfileError: when nothing is evaluated yet.
        """
        if demand_score < 0:
            raise ProfileError(f"demand must be >= 0, got {demand_score}")
        scored = self._scored()
        if not scored:
            raise ProfileError("profile has no evaluated configurations")
        satisfying = [
            e
            for e in scored
            if e.measurement.performance_score >= demand_score
        ]
        if satisfying:
            return max(
                satisfying, key=lambda e: e.measurement.energy_efficiency
            )
        return max(scored, key=lambda e: e.measurement.performance_score)

    def skyline(self) -> list[SkylinePoint]:
        """The Pareto frontier on (performance, efficiency), ascending.

        A configuration belongs to the skyline iff no other configuration
        offers at least its performance with strictly better efficiency.
        """
        scored = sorted(
            self._scored(),
            key=lambda e: (
                e.measurement.performance_score,
                e.measurement.energy_efficiency,
            ),
            reverse=True,
        )
        points: list[SkylinePoint] = []
        best_eff = float("-inf")
        for entry in scored:
            m = entry.measurement
            if m.energy_efficiency > best_eff:
                best_eff = m.energy_efficiency
                points.append(
                    SkylinePoint(
                        configuration=entry.configuration,
                        performance_score=m.performance_score,
                        energy_efficiency=m.energy_efficiency,
                        power_w=m.power_w,
                    )
                )
        points.reverse()
        return points

    # -- RTI / baseline lines --------------------------------------------------

    def idle_power_w(self) -> float:
        """Measured power of the idle configuration.

        Raises:
            ProfileError: if the idle configuration is unevaluated.
        """
        entry = self.entry(self.idle_configuration)
        if entry.measurement is None:
            raise ProfileError("idle configuration not evaluated yet")
        return entry.measurement.power_w

    def rti_power_w(self, performance_score: float) -> float:
        """Average power of ECL race-to-idle at a performance level.

        Duty-cycles between the most energy-efficient configuration and
        idle.  Levels above the optimal configuration's performance are
        served by the optimal configuration's power (the RTI controller
        stops idling).
        """
        optimal = self.most_efficient().measurement
        idle_w = self.idle_power_w()
        if performance_score <= 0:
            return idle_w
        if performance_score >= optimal.performance_score:
            return optimal.power_w
        duty = performance_score / optimal.performance_score
        return duty * optimal.power_w + (1.0 - duty) * idle_w

    def rti_efficiency(self, performance_score: float) -> float:
        """Efficiency of ECL race-to-idle at a performance level."""
        if performance_score <= 0:
            return 0.0
        return performance_score / self.rti_power_w(performance_score)

    def baseline_entry(self) -> ProfileEntry:
        """The race-to-idle baseline configuration: most threads, max clocks.

        Raises:
            ProfileError: when nothing is evaluated yet.
        """
        scored = self._scored()
        if not scored:
            raise ProfileError("profile has no evaluated configurations")
        return max(
            scored,
            key=lambda e: (
                e.configuration.thread_count,
                e.configuration.average_core_ghz,
                e.configuration.uncore_ghz,
            ),
        )

    def baseline_efficiency(self, performance_score: float) -> float:
        """Efficiency of the uncontrolled baseline at a performance level.

        The baseline runs all cores at maximum clocks whenever work is
        available (race-to-idle), so at partial load it duty-cycles the
        peak configuration against the *OS idle* state — which, unlike the
        ECL's synchronized deep sleep, keeps the uncore awake.
        """
        if performance_score <= 0:
            return 0.0
        base = self.baseline_entry().measurement
        idle_w = (
            self.os_idle_power_w
            if self.os_idle_power_w is not None
            else self.idle_power_w()
        )
        level = min(performance_score, base.performance_score)
        duty = level / base.performance_score
        power = duty * base.power_w + (1.0 - duty) * idle_w
        return level / power

    def max_rti_saving(self) -> float:
        """Largest relative saving of ECL RTI over the baseline line.

        Sampled across performance levels up to the optimal zone; this is
        the "maximum possible energy savings" number quoted per profile in
        the paper (e.g. ~40 % for the memory-bound workload).
        """
        optimal = self.most_efficient().measurement
        best = 0.0
        for i in range(1, 100):
            level = optimal.performance_score * i / 100.0
            base_eff = self.baseline_efficiency(level)
            rti_eff = self.rti_efficiency(level)
            if base_eff <= 0 or rti_eff <= base_eff:
                continue
            best = max(best, 1.0 - base_eff / rti_eff)
        return best
