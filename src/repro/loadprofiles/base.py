"""Load-profile abstraction.

A load profile is a function ``fraction(t) -> load ∈ [0, ...]`` over a
finite duration.  1.0 means 100 % of the workload's nominal peak rate;
values above 1.0 model deliberate overload (more queries arrive than the
system can process, Fig. 13's 80–100 s phase).

Profiles are signal-backed: :class:`SegmentProfile` delegates both of
its evaluation paths to a
:class:`~repro.environment.signal.PiecewiseLinearSignal`, the shared
piecewise-signal substrate the environment layer (carbon/price curves)
is built on.  The signal carries the historical dual-path numerics —
exact-formula scalar interpolation, ``np.interp`` vectors, 0.0 outside
the control-point range — so run goldens stay bit-identical.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.environment.signal import PiecewiseLinearSignal
from repro.errors import SimulationError


class LoadProfile(abc.ABC):
    """A queries-per-second curve, normalized to the workload peak."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Profile name as used in reports ("spike", "twitter", ...)."""

    @property
    @abc.abstractmethod
    def duration_s(self) -> float:
        """Length of the profile."""

    @abc.abstractmethod
    def fraction(self, t_s: float) -> float:
        """Load fraction at time ``t_s`` (0.0 outside the duration)."""

    def fraction_array(self, times_s: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`fraction` over an array of times.

        The default evaluates the scalar method point by point; profiles
        with a cheap closed form (see :class:`SegmentProfile`) override it.
        The load generator's block pre-draw is the only caller on the hot
        path, so overrides only need to agree with :meth:`fraction` up to
        float rounding — both simulation modes share the same pre-drawn
        arrival stream either way.
        """
        return np.array([self.fraction(float(t)) for t in times_s], dtype=np.float64)

    def _grid(self, resolution_s: float) -> np.ndarray:
        """Mid-sample grid matching the historical scalar loops."""
        steps = max(1, int(self.duration_s / resolution_s))
        return (
            (np.arange(steps, dtype=np.float64) + 0.5)
            * self.duration_s
            / steps
        )

    def average_fraction(self, resolution_s: float = 0.5) -> float:
        """Time-average of the profile (for report normalization)."""
        if resolution_s <= 0:
            raise SimulationError(f"resolution must be > 0, got {resolution_s}")
        mids = self._grid(resolution_s)
        return float(self.fraction_array(mids).sum()) / len(mids)

    def peak_fraction(self, resolution_s: float = 0.1) -> float:
        """Maximum of the profile (sampled)."""
        return float(self.fraction_array(self._grid(resolution_s)).max())


class SegmentProfile(LoadProfile):
    """Piecewise-linear profile through (time, fraction) control points."""

    def __init__(self, name: str, points: list[tuple[float, float]]):
        if len(points) < 2:
            raise SimulationError("segment profile needs >= 2 control points")
        times = [t for t, _ in points]
        if times != sorted(times):
            raise SimulationError("control points must be time-ordered")
        if any(f < 0 for _, f in points):
            raise SimulationError("load fractions must be >= 0")
        self._signal = PiecewiseLinearSignal(points, name=name, outside=0.0)

    @property
    def name(self) -> str:
        return self._signal.name

    @property
    def duration_s(self) -> float:
        return self._signal.end_s

    @property
    def signal(self) -> PiecewiseLinearSignal:
        """The backing piecewise-linear signal (shared substrate with
        the environment layer's carbon/price curves)."""
        return self._signal

    def fraction(self, t_s: float) -> float:
        return self._signal.value(t_s)

    def fraction_array(self, times_s: np.ndarray) -> np.ndarray:
        return self._signal.values(times_s)
