#!/usr/bin/env python3
"""Run *real* TATP transactions through the full stack.

Everything else in the examples uses modeled query costs for speed; this
one exercises the real execution path: TATP tables loaded into the
partitioned columnar store, hash indexes built, and transactions that
actually read and update rows while the worker/ownership protocol and
the ECL run around them.

Run:  python examples/real_execution.py
"""

import numpy as np

from repro.dbms.engine import DatabaseEngine
from repro.ecl.controller import EnergyControlLoop
from repro.hardware.machine import Machine
from repro.workloads import TatpWorkload, WorkloadVariant

SUBSCRIBERS = 2_000
DURATION_S = 5.0
TRANSACTIONS_PER_SECOND = 400.0
TICK_S = 0.002


def main() -> None:
    rng = np.random.default_rng(0)
    machine = Machine(seed=0)
    engine = DatabaseEngine(machine)
    workload = TatpWorkload(WorkloadVariant.INDEXED)
    engine.set_workload_characteristics(workload.characteristics)

    print(f"loading TATP with {SUBSCRIBERS} subscribers ...")
    workload.setup_real(engine.partitions, scale=SUBSCRIBERS, rng=rng)
    rows = sum(p.row_count for p in engine.partitions)
    print(f"loaded {rows} rows across {len(engine.partitions)} partitions")

    ecl = EnergyControlLoop(engine)
    ecl.warm_start_from_model(chars=workload.characteristics)

    print(f"running {TRANSACTIONS_PER_SECOND:.0f} real transactions/s "
          f"for {DURATION_S:.0f} s ...")
    accumulated = 0.0
    completed = 0
    while machine.time_s < DURATION_S:
        now = machine.time_s
        accumulated += TRANSACTIONS_PER_SECOND * TICK_S
        while accumulated >= 1.0:
            accumulated -= 1.0
            engine.submit(workload.make_real_query(rng, now, engine.partitions))
        ecl.on_tick(now, TICK_S)
        completed += len(engine.tick(TICK_S).completions)

    stats = engine.pool.total_stats()
    print(f"\ncompleted transactions : {completed}")
    print(f"messages processed     : {stats['messages_processed']:.0f}")
    print(f"instructions charged   : {stats['instructions_consumed']:.3e}")
    print(f"partition acquisitions : {stats['acquisitions']:.0f}")
    print(
        "mean transaction latency: "
        f"{1000 * (engine.latency.average_latency_s(machine.time_s) or 0):.2f} ms"
    )
    print(f"energy consumed        : {machine.true_total_energy_j():.1f} J")
    print(
        "applied configurations : "
        + ", ".join(
            (c.describe() if (c := ecl.sockets[s].applied_configuration) else "-")
            for s in sorted(ecl.sockets)
        )
    )

    # Prove the data really changed: UPDATE_LOCATION transactions wrote
    # fresh vlr_location values.
    sample = engine.partitions.partition(0).table("subscriber")
    if sample.row_count:
        print(f"sample subscriber row  : {sample.get_row(0)}")


if __name__ == "__main__":
    main()
