"""Tests for run-result metrics."""

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import RunResult, SamplePoint, energy_saving_fraction


def make_result(latencies=(), energy=100.0, samples=(), limit=0.1):
    result = RunResult(
        policy="ecl",
        workload_name="kv",
        profile_name="test",
        duration_s=10.0,
        latency_limit_s=limit,
    )
    result.latencies_s = list(latencies)
    result.total_energy_j = energy
    result.samples = list(samples)
    return result


def sample(t, pending=0):
    return SamplePoint(
        time_s=t,
        load_qps=0.0,
        rapl_power_w=100.0,
        psu_power_w=120.0,
        avg_latency_s=None,
        pending_messages=pending,
        in_flight_queries=0,
    )


class TestLatencyStats:
    def test_mean(self):
        result = make_result([0.01, 0.03])
        assert result.mean_latency_s() == pytest.approx(0.02)

    def test_empty_mean_none(self):
        assert make_result().mean_latency_s() is None

    def test_percentile(self):
        result = make_result([0.001 * i for i in range(1, 101)])
        assert result.percentile_latency_s(50) == pytest.approx(0.05)
        assert result.percentile_latency_s(99) == pytest.approx(0.099)

    def test_percentile_nearest_rank_at_small_counts(self):
        """Regression: ``round()`` banker's-rounded rank 2.5 down to the
        2nd sample; nearest-rank (ceil) selects the 3rd."""
        result = make_result([0.01, 0.02, 0.03, 0.04, 0.05])
        assert result.percentile_latency_s(50) == pytest.approx(0.03)
        assert result.percentile_latency_s(100) == pytest.approx(0.05)
        assert result.percentile_latency_s(1) == pytest.approx(0.01)

    def test_percentile_boundary_is_float_exact(self):
        """p=99 over 100 samples must pick rank 99, though 0.99*100 > 99
        in floats."""
        result = make_result([0.001 * i for i in range(1, 101)])
        assert result.percentile_latency_s(99) == pytest.approx(0.099)
        assert result.percentile_latency_s(99.0001) == pytest.approx(0.1)

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 7, 10, 33])
    def test_percentile_monotone_in_p(self, count):
        result = make_result([0.001 * i for i in range(1, count + 1)])
        grid = [p / 4 for p in range(1, 401)]  # 0.25 .. 100 step 0.25
        values = [result.percentile_latency_s(p) for p in grid]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] == max(result.latencies_s)

    def test_percentile_validation(self):
        result = make_result([0.01])
        with pytest.raises(SimulationError):
            result.percentile_latency_s(0)
        with pytest.raises(SimulationError):
            result.percentile_latency_s(101)

    def test_violation_fraction(self):
        result = make_result([0.05, 0.15, 0.25, 0.01], limit=0.1)
        assert result.violation_fraction() == pytest.approx(0.5)

    def test_violation_without_limit(self):
        result = make_result([0.5], limit=None)
        assert result.violation_fraction() == 0.0


class TestEnergy:
    def test_average_power(self):
        result = make_result(energy=500.0)
        assert result.average_power_w() == pytest.approx(50.0)

    def test_saving_fraction(self):
        baseline = make_result(energy=200.0)
        controlled = make_result(energy=150.0)
        assert energy_saving_fraction(baseline, controlled) == pytest.approx(0.25)

    def test_saving_requires_baseline_energy(self):
        with pytest.raises(SimulationError):
            energy_saving_fraction(make_result(energy=0.0), make_result())


class TestOverloadExit:
    def test_detects_backlog_clearance(self):
        samples = [
            sample(0.0, 0),
            sample(1.0, 500),
            sample(2.0, 900),
            sample(3.0, 400),
            sample(4.0, 5),
            sample(5.0, 0),
        ]
        result = make_result(samples=samples)
        assert result.overload_exit_time_s(1000) == pytest.approx(4.0)

    def test_none_without_backlog(self):
        result = make_result(samples=[sample(0.0), sample(1.0)])
        assert result.overload_exit_time_s(1000) is None

    def test_none_without_samples(self):
        assert make_result().overload_exit_time_s(1000) is None

    def test_double_spike_reports_final_clearance(self):
        """The backlog dips between two spikes: the dip must not count —
        the promise is the time after which pending work *stays* low."""
        samples = [
            sample(0.0, 0),
            sample(1.0, 900),
            sample(2.0, 3),    # lull between the spikes
            sample(3.0, 700),  # second excursion
            sample(4.0, 2),
            sample(5.0, 0),
        ]
        result = make_result(samples=samples)
        assert result.overload_exit_time_s(1000) == pytest.approx(4.0)

    def test_never_clearing_backlog_returns_none(self):
        samples = [sample(0.0, 0), sample(1.0, 900), sample(2.0, 500)]
        result = make_result(samples=samples)
        assert result.overload_exit_time_s(1000) is None


class TestExport:
    def test_to_dict_round_trips_through_json(self):
        import json

        result = make_result([0.01, 0.02], energy=250.0)
        row = result.to_dict()
        assert row["policy"] == "ecl"
        assert row["total_energy_j"] == 250.0
        assert row["average_power_w"] == pytest.approx(25.0)
        assert row["p99_latency_s"] == pytest.approx(0.02)
        assert json.loads(json.dumps(row)) == row

    def test_to_dict_empty_run(self):
        row = make_result().to_dict()
        assert row["mean_latency_s"] is None
        assert row["queries_completed"] == 0

    def test_to_csv_sample_series(self):
        import csv
        import io

        result = make_result(samples=[sample(0.0, 5), sample(1.0, 0)])
        rows = list(csv.DictReader(io.StringIO(result.to_csv())))
        assert len(rows) == 2
        assert rows[0]["time_s"] == "0.0"
        assert rows[0]["pending_messages"] == "5"
        assert rows[0]["avg_latency_s"] == ""  # None flattens to empty
