"""Tests for message construction and cost accounting."""

import pytest

from repro.errors import MessagingError
from repro.dbms.messages import Message, MessageKind, WorkCost


class TestWorkCost:
    def test_addition(self):
        total = WorkCost(100, 10) + WorkCost(50, 5)
        assert total.instructions == 150
        assert total.bytes_accessed == 15

    def test_negative_rejected(self):
        with pytest.raises(MessagingError):
            WorkCost(-1)
        with pytest.raises(MessagingError):
            WorkCost(1, -2)


class TestMessage:
    def test_modeled_message(self):
        msg = Message(query_id=1, target_partition=0, cost=WorkCost(100))
        assert msg.is_modeled
        assert msg.charged_cost().instructions == 100

    def test_real_message(self):
        msg = Message(
            query_id=1, target_partition=0, operation=lambda p: (None, WorkCost(1))
        )
        assert not msg.is_modeled
        with pytest.raises(MessagingError):
            msg.charged_cost()

    def test_work_needs_exactly_one_source(self):
        with pytest.raises(MessagingError):
            Message(query_id=1, target_partition=0)
        with pytest.raises(MessagingError):
            Message(
                query_id=1,
                target_partition=0,
                cost=WorkCost(1),
                operation=lambda p: (None, WorkCost(1)),
            )

    def test_result_messages_get_default_cost(self):
        msg = Message(query_id=1, target_partition=0, kind=MessageKind.RESULT)
        assert msg.cost is not None
        assert msg.cost.instructions > 0

    def test_unique_ids(self):
        a = Message(query_id=1, target_partition=0, cost=WorkCost(1))
        b = Message(query_id=1, target_partition=0, cost=WorkCost(1))
        assert a.message_id != b.message_id
