"""Simulated NUMA scale-up server hardware.

This package substitutes for the paper's 2-socket Intel Xeon E5-2690 v3
(Haswell-EP) testbed.  It models exactly the surface the Energy-Control
Loop interacts with:

* the socket/core/hardware-thread topology (:mod:`repro.hardware.topology`),
* per-core and uncore clock domains with P-states, EPB and the
  energy-efficient turbo (:mod:`repro.hardware.frequency`),
* C-states including the cross-socket uncore-halt dependency
  (:mod:`repro.hardware.cstates`),
* a calibrated analytical power model (:mod:`repro.hardware.power`),
* a performance model translating workload characteristics into
  instructions retired and memory bandwidth (:mod:`repro.hardware.perfmodel`),
* RAPL-style energy counters with measurement lag and short-interval noise
  (:mod:`repro.hardware.rapl`) and instructions-retired counters
  (:mod:`repro.hardware.counters`),
* a :class:`~repro.hardware.machine.Machine` facade tying it all together.

Numbers are calibrated against the measurements reported in Section 2 of
the paper (see DESIGN.md §5 for the calibration targets).
"""

from repro.hardware.topology import HardwareThread, PhysicalCore, Socket, Topology
from repro.hardware.frequency import EnergyPerformanceBias, FrequencyDomains, PState
from repro.hardware.cstates import CState, CStateModel
from repro.hardware.power import PowerModel, PowerBreakdown
from repro.hardware.perfmodel import PerformanceModel, SocketLoad, SocketPerformance
from repro.hardware.rapl import RaplCounter, RaplDomain, RaplReading
from repro.hardware.counters import InstructionCounter
from repro.hardware.machine import Machine, MachineState
from repro.hardware.presets import haswell_ep_two_socket, HaswellEPParameters

__all__ = [
    "HardwareThread",
    "PhysicalCore",
    "Socket",
    "Topology",
    "EnergyPerformanceBias",
    "FrequencyDomains",
    "PState",
    "CState",
    "CStateModel",
    "PowerModel",
    "PowerBreakdown",
    "PerformanceModel",
    "SocketLoad",
    "SocketPerformance",
    "RaplCounter",
    "RaplDomain",
    "RaplReading",
    "InstructionCounter",
    "Machine",
    "MachineState",
    "haswell_ep_two_socket",
    "HaswellEPParameters",
]
