"""C-states: core sleep states and the package/uncore halt dependency.

Single cores or the entire processor can be power-gated when unused
(paper §2.2).  The essential behaviours reproduced here:

* a physical core with no active hardware thread drops into a deep core
  C-state (C6, power gated — near-zero draw); a core whose threads are
  merely pausing sits in C1 (clock gated, residual draw);
* the *uncore* clock of a socket may halt — power-gating the LLC and
  saving up to ~30 W — only if **every** socket of the same node has
  halted its uncore too, because remote sockets of that node may access
  this socket's memory (Fig. 5).  On a cluster machine the dependency is
  node-local: other nodes reach this data over the network, never
  through the uncore;
* waking a core from a deep C-state costs on the order of tens of
  microseconds (the paper cites works measuring "some µs" for C/P-state
  transitions, Fig. 12 context).
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.errors import ConfigurationError
from repro.hardware.presets import HaswellEPParameters
from repro.hardware.topology import Topology


class CState(enum.Enum):
    """Sleep depth of a physical core."""

    C0 = "C0"  #: active, executing instructions
    C1 = "C1"  #: halted but clock supplied (residual power)
    C6 = "C6"  #: power gated (near-zero power)


class CStateModel:
    """Tracks which hardware threads are active and derives sleep states.

    The DBMS runtime (or the ECL) *parks* and *unparks* hardware threads;
    everything else — core C-state, package idleness, the machine-wide
    uncore-halt condition — is derived from the active-thread set.
    """

    def __init__(
        self,
        topology: Topology,
        params: HaswellEPParameters,
        socket_node: "tuple[int, ...] | None" = None,
    ):
        self._topology = topology
        self._params = params
        #: Node index per socket id.  The Fig. 5 uncore-halt dependency
        #: is *node*-local: remote sockets of the same server reach this
        #: socket's memory through its uncore, but sockets on other
        #: cluster nodes go over the network and do not pin the uncore.
        #: Single-node machines map every socket to node 0, which makes
        #: node-idle identical to the historical machine-idle bit.
        if socket_node is None:
            socket_node = (0,) * len(topology.sockets)
        self._socket_node = tuple(socket_node)
        node_count = max(self._socket_node) + 1
        node_sockets: list[list[int]] = [[] for _ in range(node_count)]
        for sid, node in enumerate(self._socket_node):
            node_sockets[node].append(sid)
        self._node_sockets = tuple(tuple(s) for s in node_sockets)
        #: Threads currently allowed to execute (C0 when they have work).
        self._active_threads: set[int] = set(
            t.global_id for t in topology.iter_threads()
        )
        #: Active-thread count per node (O(1) node-idle checks).
        self._node_threads: list[int] = [0] * node_count
        for thread in topology.iter_threads():
            self._node_threads[self._socket_node[thread.socket_id]] += 1
        #: Threads in a shallow halt (C1) rather than parked deep (C6).
        self._shallow_threads: set[int] = set()
        #: Sockets whose memory holds no partition data (drained by the
        #: placement layer), lifting the cross-socket uncore dependency.
        self._memory_vacated: set[int] = set()
        #: Monotonic counter bumped on every park/unpark mutation; lets
        #: callers detect that the active-thread set is unchanged.
        self._version = 0
        #: Content-fingerprint cache: per-socket interned ids of the
        #: thread-set values.  Invalidation is per socket — parking on
        #: one socket leaves the other's cached fingerprint valid —
        #: except when the node's idle bit flips, which is part of every
        #: node-peer socket's content (the Fig. 5 uncore-halt
        #: dependency) and invalidates all of them.
        self._fingerprint_socket_versions: dict[int, int] = {
            s.socket_id: 0 for s in topology.sockets
        }
        self._fingerprints: dict[int, tuple[int, int]] = {}
        self._fingerprint_ids: dict[tuple, int] = {}

    @property
    def version(self) -> int:
        """Control-state version (bumps on any thread-set mutation)."""
        return self._version

    def state_fingerprint(self, socket_id: int) -> int:
        """Interned content fingerprint of one socket's C-state inputs.

        Captures everything a socket's derived sleep states depend on:
        its active and shallow thread sets, its memory-vacated flag, and
        the machine-wide idle bit (the Fig. 5 cross-socket uncore-halt
        dependency makes a *remote* socket's activity part of this
        socket's resolution).  Unlike :attr:`version`, the fingerprint
        repeats whenever the same state recurs, letting the machine's
        step-resolution cache hit across park/unpark cycles.
        """
        version = self._fingerprint_socket_versions[socket_id]
        cached = self._fingerprints.get(socket_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        on_socket = self._topology.threads_on_socket(socket_id)
        content = (
            tuple(t for t in on_socket if t in self._active_threads),
            tuple(t for t in on_socket if t in self._shallow_threads),
            socket_id in self._memory_vacated,
            self.node_is_idle(self._socket_node[socket_id]),
        )
        fingerprint = self._fingerprint_ids.setdefault(
            content, len(self._fingerprint_ids)
        )
        self._fingerprints[socket_id] = (version, fingerprint)
        return fingerprint

    def _touch_fingerprint(self, socket_id: int, was_idle: bool) -> None:
        """Invalidate fingerprints after a thread-set mutation: the
        mutated socket always; every node-peer socket when the node's
        idle bit flipped (it is part of each peer's content)."""
        node = self._socket_node[socket_id]
        if self.node_is_idle(node) != was_idle:
            for sid in self._node_sockets[node]:
                self._fingerprint_socket_versions[sid] += 1
        else:
            self._fingerprint_socket_versions[socket_id] += 1

    # -- mutation -------------------------------------------------------------

    def set_active_threads(self, thread_ids: Iterable[int]) -> None:
        """Declare exactly this set of hardware threads active.

        All other threads are parked into the deep state.  Unknown thread
        ids raise :class:`ConfigurationError`.
        """
        ids = set(thread_ids)
        known = {t.global_id for t in self._topology.iter_threads()}
        unknown = ids - known
        if unknown:
            raise ConfigurationError(f"unknown hardware thread ids {sorted(unknown)}")
        self._active_threads = ids
        self._shallow_threads -= ids
        self._node_threads = [0] * len(self._node_threads)
        for tid in ids:
            socket_id = self._topology.thread(tid).socket_id
            self._node_threads[self._socket_node[socket_id]] += 1
        self._version += 1
        for sid in self._fingerprint_socket_versions:
            self._fingerprint_socket_versions[sid] += 1

    def set_socket_threads(
        self, socket_id: int, thread_ids: Iterable[int]
    ) -> None:
        """Declare exactly this set of threads active on one socket.

        Threads of other sockets are untouched.  Equivalent to
        :meth:`set_active_threads` with the other sockets' active set
        carried over, but socket-local: only this socket's fingerprint
        is invalidated (plus everyone's when the machine-idle bit
        flips), keeping the step-resolution cache warm for the others.
        """
        own = self._topology.threads_on_socket(socket_id)
        ids = set(thread_ids)
        unknown = ids - set(own)
        if unknown:
            raise ConfigurationError(
                f"threads {sorted(unknown)} not on socket {socket_id}"
            )
        node = self._socket_node[socket_id]
        was_idle = self.node_is_idle(node)
        before = sum(1 for tid in own if tid in self._active_threads)
        self._active_threads.difference_update(own)
        self._active_threads.update(ids)
        self._node_threads[node] += len(ids) - before
        self._shallow_threads.difference_update(ids)
        self._version += 1
        self._touch_fingerprint(socket_id, was_idle)

    def park_thread(self, thread_id: int, shallow: bool = False) -> None:
        """Park one thread; ``shallow=True`` leaves it in C1 instead of C6."""
        self._require_known(thread_id)
        socket_id = self._topology.thread(thread_id).socket_id
        node = self._socket_node[socket_id]
        was_idle = self.node_is_idle(node)
        if thread_id in self._active_threads:
            self._active_threads.discard(thread_id)
            self._node_threads[node] -= 1
        if shallow:
            self._shallow_threads.add(thread_id)
        else:
            self._shallow_threads.discard(thread_id)
        self._version += 1
        self._touch_fingerprint(socket_id, was_idle)

    def unpark_thread(self, thread_id: int) -> None:
        """Wake one thread into the active set."""
        self._require_known(thread_id)
        socket_id = self._topology.thread(thread_id).socket_id
        node = self._socket_node[socket_id]
        was_idle = self.node_is_idle(node)
        if thread_id not in self._active_threads:
            self._active_threads.add(thread_id)
            self._node_threads[node] += 1
        self._shallow_threads.discard(thread_id)
        self._version += 1
        self._touch_fingerprint(socket_id, was_idle)

    def set_memory_vacated(self, socket_id: int, vacated: bool) -> None:
        """Declare a socket's memory (un)referenced by remote sockets.

        The placement layer marks a socket *vacated* once every partition
        has migrated off it: no remote access can target its memory, so
        the Fig. 5 uncore dependency no longer applies and the socket may
        halt its uncore alone (package sleep).  Re-populating the socket
        clears the flag.  Bumps the control-state version, because the
        halt condition feeds cached hardware resolutions.
        """
        self._topology.socket(socket_id)  # raises TopologyError if unknown
        if vacated == (socket_id in self._memory_vacated):
            return
        if vacated:
            self._memory_vacated.add(socket_id)
        else:
            self._memory_vacated.discard(socket_id)
        self._version += 1
        self._fingerprint_socket_versions[socket_id] += 1

    def _require_known(self, thread_id: int) -> None:
        self._topology.thread(thread_id)  # raises TopologyError if unknown

    # -- queries -------------------------------------------------------------

    @property
    def active_threads(self) -> frozenset[int]:
        """The set of currently active hardware-thread ids."""
        return frozenset(self._active_threads)

    def socket_mutation_version(self, socket_id: int) -> int:
        """Per-socket change counter for this socket's thread state.

        Bumps whenever the socket's own thread set mutates (and on
        machine-idle flips, which are part of its derived state); equal
        values guarantee the socket's active-thread set is unchanged, so
        per-socket consumers (the worker pool sync) can skip resyncing
        sockets untouched by a reconfiguration elsewhere.
        """
        return self._fingerprint_socket_versions[socket_id]

    def thread_is_active(self, thread_id: int) -> bool:
        """Whether a hardware thread is unparked."""
        self._require_known(thread_id)
        return thread_id in self._active_threads

    def active_threads_on_socket(self, socket_id: int) -> tuple[int, ...]:
        """Active thread ids on one socket, ascending."""
        on_socket = self._topology.threads_on_socket(socket_id)
        return tuple(tid for tid in on_socket if tid in self._active_threads)

    def core_state(self, socket_id: int, core_id: int) -> CState:
        """Sleep state of a physical core, derived from its threads."""
        core = self._topology.socket(socket_id).cores[core_id]
        ids = set(core.thread_ids())
        if ids & self._active_threads:
            return CState.C0
        if ids & self._shallow_threads:
            return CState.C1
        return CState.C6

    def active_core_count(self, socket_id: int) -> int:
        """Number of physical cores in C0 on a socket."""
        socket = self._topology.socket(socket_id)
        return sum(
            1
            for core in socket.cores
            if set(core.thread_ids()) & self._active_threads
        )

    def socket_is_idle(self, socket_id: int) -> bool:
        """True if no core of the socket is active."""
        return self.active_core_count(socket_id) == 0

    def machine_is_idle(self) -> bool:
        """True if every socket of the machine is idle.

        Equivalent to every socket's active-core count being zero: a
        core is active iff one of its threads is, and every thread
        belongs to a socket — so the machine is idle exactly when the
        active-thread set is empty (O(1), on the step hot path).
        """
        return not self._active_threads

    def node_is_idle(self, node: int) -> bool:
        """True if every socket of one cluster node is idle.

        On single-node machines there is exactly one node holding every
        socket, so this equals :meth:`machine_is_idle`.  O(1): the model
        maintains an active-thread count per node.
        """
        return self._node_threads[node] == 0

    def node_of_socket(self, socket_id: int) -> int:
        """The cluster-node index owning a socket."""
        return self._socket_node[socket_id]

    def memory_is_vacated(self, socket_id: int) -> bool:
        """Whether the placement layer declared this socket's memory empty."""
        self._topology.socket(socket_id)  # validate id
        return socket_id in self._memory_vacated

    def uncore_may_halt(self, socket_id: int) -> bool:
        """Whether this socket's uncore clock may halt right now.

        The inter-socket dependency of Fig. 5: remote sockets reach this
        socket's memory through its uncore, so halting normally requires
        every socket *of the same node* to be idle — sockets on other
        cluster nodes access this node's data over the network, not the
        uncore, so they never pin it.  A socket whose memory was vacated
        by the placement layer escapes the dependency — nothing remote
        can target it — and may halt as soon as it is idle itself.
        """
        self._topology.socket(socket_id)  # validate id
        if socket_id in self._memory_vacated and self.socket_is_idle(socket_id):
            return True
        return self.node_is_idle(self._socket_node[socket_id])

    def wake_latency_s(self) -> float:
        """Cost of waking a core from the deep state."""
        return self._params.cstate_wake_s
